"""Tests for the campaign observatory (``repro.obs``).

The load-bearing guarantee is determinism: flow and metric exports must
be byte-identical for any ``--jobs`` value, identical with telemetry
recording on or off, and observing a run must never change what lands
in the result cache.  One test asserts all three at once.
"""

import io
import json

import pytest

from repro.cli import main
from repro.experiments import Scale, fig2
from repro.obs import (
    FLOW_FIELDS,
    METRIC_FIELDS,
    CampaignCollector,
    ProgressReporter,
    flow_records,
    metric_samples,
    prometheus_lines,
    write_csv,
    write_jsonl,
)
from repro.runner import (
    NULL_OBSERVER,
    CompositeRunObserver,
    NullRunObserver,
    current_options,
    engine_options,
    run_sessions,
)
from repro.runner.fingerprint import plan_fingerprint
from repro.simnet import RESEARCH
from repro.streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    run_session,
)
from repro.telemetry import recording
from repro.workloads import MBPS, Video

#: Same tiny scale as test_runner/test_telemetry, for suite latency.
TINY = Scale(name="tiny", sessions_per_cell=3, capture_duration=90.0,
             catalog_scale=0.02, mc_horizon=4000.0)


def _video():
    return Video(video_id="v-obs", duration=300.0, encoding_rate_bps=MBPS,
                 resolution="360p", container="flv")


def _config(**kw):
    return SessionConfig(profile=RESEARCH, service=Service.YOUTUBE,
                         application=Application.FIREFOX,
                         container=Container.FLASH,
                         capture_duration=60.0, seed=3, **kw)


def _collect(jobs=1, record=False, cache=None):
    """Run fig2 at TINY scale under a collector; return its exports."""
    collector = CampaignCollector()
    with engine_options(jobs=jobs, cache=cache, observer=collector):
        if record:
            with recording():
                fig2.run(TINY, seed=0)
        else:
            fig2.run(TINY, seed=0)
    return collector


def _export_bytes(collector, tmp_path, tag):
    flows = tmp_path / f"flows-{tag}.jsonl"
    metrics = tmp_path / f"metrics-{tag}.csv"
    collector.write_flows(flows)
    collector.write_metrics(metrics)
    return flows.read_bytes(), metrics.read_bytes()


class TestFlowRecords:
    def _result(self):
        return run_session(_video(), _config())

    def test_fields_and_values(self):
        result = self._result()
        records = flow_records(result, "s0000")
        assert records, "a streamed session must produce at least one flow"
        for record in records:
            assert tuple(record) == FLOW_FIELDS
        first = records[0]
        assert first["session"] == "s0000"
        assert first["protocol"] == "tcp"
        assert first["src_ip"] == result.server_ip
        assert first["dst_ip"] == result.client_ip
        assert first["bytes"] > 0
        assert first["packets"] > 0
        assert 0.0 <= first["retransmission_rate"] <= 1.0
        assert first["onoff_blocks"] >= 0
        assert first["strategy"]
        assert first["failed"] is False

    def test_flows_ordered_by_first_activity(self):
        records = flow_records(self._result(), "s")
        starts = [r["first_ts"] for r in records if r["first_ts"] is not None]
        assert starts == sorted(starts)

    def test_records_never_read_telemetry(self):
        plain = flow_records(self._result(), "s")
        with recording():
            recorded = flow_records(run_session(_video(), _config()), "s")
        assert plain == recorded


class TestMetricSamples:
    def test_emits_expected_metrics(self):
        result = run_session(_video(), _config())
        samples = metric_samples(result, "s0000")
        names = {s["metric"] for s in samples}
        assert {"download_bytes", "throughput_bps", "link_utilization",
                "recv_window_bytes"} <= names
        for sample in samples:
            assert sample["session"] == "s0000"
            assert isinstance(sample["t"], float)

    def test_cwnd_traces_when_enabled(self):
        result = run_session(_video(), _config(trace_cwnd=True))
        assert result.cwnd_traces
        samples = metric_samples(result, "s")
        cwnd = [s for s in samples if s["metric"] == "cwnd_bytes"]
        assert cwnd
        assert {s["conn"] for s in cwnd} == \
            set(range(len(result.cwnd_traces)))

    def test_utilization_bounded_by_capacity(self):
        result = run_session(_video(), _config())
        samples = metric_samples(result, "s")
        util = [s["value"] for s in samples
                if s["metric"] == "link_utilization"]
        assert util
        assert all(0.0 <= u <= 1.5 for u in util)  # small burst tolerance


class TestSerializers:
    RECORDS = [
        {"metric": "up", "session": "s0", "t": 1.5, "value": 2.0},
        {"metric": "up", "session": "s1", "t": 2.0, "value": 3.5},
        {"metric": "down", "session": "s0", "t": None, "value": 1},
    ]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "r.jsonl"
        assert write_jsonl(self.RECORDS, path) == 3
        back = [json.loads(line) for line in path.read_text().splitlines()]
        assert back == self.RECORDS

    def test_csv_fixed_columns_and_none(self, tmp_path):
        path = tmp_path / "r.csv"
        n = write_csv(self.RECORDS, path,
                      fields=("metric", "session", "t", "value"))
        assert n == 3
        lines = path.read_text().splitlines()
        assert lines[0] == "metric,session,t,value"
        assert lines[3] == "down,s0,,1"  # None renders as empty cell

    def test_prometheus_exposition_format(self):
        lines = prometheus_lines(self.RECORDS)
        assert lines[0] == "# TYPE repro_up gauge"
        assert lines[1] == 'repro_up{session="s0"} 2.0 1500'
        # one TYPE header per metric, at first occurrence only
        assert sum(1 for l in lines if l.startswith("# TYPE")) == 2
        # records without a timestamp omit it
        assert lines[-1] == 'repro_down{session="s0"} 1'

    def test_prometheus_sanitizes_names(self):
        lines = prometheus_lines(
            [{"metric": "a.b-c", "session": "s0", "t": None, "value": 1}])
        assert lines[1].startswith("repro_a_b_c{")

    def test_prometheus_escapes_hostile_label_values(self):
        """Quotes, backslashes and newlines in a label value must be
        escaped per the text exposition format, not passed through."""
        hostile = 'ca"t\\dog\nfish'
        lines = prometheus_lines(
            [{"metric": "up", "session": hostile, "t": None, "value": 1}])
        assert lines[1] == 'repro_up{session="ca\\"t\\\\dog\\nfish"} 1'
        # the sample stays one physical line with balanced quoting
        assert "\n" not in lines[1]
        assert lines[1].count('"') - lines[1].count('\\"') == 2

    def test_prometheus_escaping_round_trips(self):
        import re

        hostile = 'a\\b"c\nd'
        lines = prometheus_lines(
            [{"metric": "up", "session": hostile, "t": None, "value": 1}])
        quoted = re.search(r'session="((?:[^"\\]|\\.)*)"', lines[1]).group(1)
        unescaped = (quoted.replace("\\n", "\n").replace('\\"', '"')
                     .replace("\\\\", "\x00").replace("\x00", "\\"))
        # NB: inverse order of the writer's; \\ placeholder avoids
        # re-interpreting the backslash that \n/\" unescaping produced
        assert unescaped == 'a\\b"c\nd'.replace("\\\\", "\\")


class TestDeterminism:
    def test_exports_identical_across_jobs_telemetry_and_cache(self, tmp_path):
        """The acceptance gate: one test, three guarantees.

        1. jobs=4 exports are byte-identical to jobs=1 exports;
        2. telemetry recording on/off does not change a byte;
        3. observing/exporting never enters the cache fingerprints —
           a run with the observer installed and files written hits the
           same cache entries as a run without it.
        """
        base_flows, base_metrics = _export_bytes(
            _collect(jobs=1), tmp_path, "base")

        # 1: worker-count independence
        par_flows, par_metrics = _export_bytes(
            _collect(jobs=4), tmp_path, "jobs4")
        assert par_flows == base_flows
        assert par_metrics == base_metrics

        # 2: telemetry independence
        rec_flows, rec_metrics = _export_bytes(
            _collect(record=True), tmp_path, "rec")
        assert rec_flows == base_flows
        assert rec_metrics == base_metrics

        # 3: cache-fingerprint independence — first run (no observer,
        # no exports) populates the cache; an observed, exporting run
        # must hit every entry and add none
        cache_dir = tmp_path / "cache"
        with engine_options(cache=cache_dir):
            fig2.run(TINY, seed=0)
        keys_before = sorted(p.name for p in cache_dir.glob("*/*.pkl"))
        assert keys_before
        observed = _collect(cache=cache_dir)
        obs_flows, obs_metrics = _export_bytes(observed, tmp_path, "cached")
        keys_after = sorted(p.name for p in cache_dir.glob("*/*.pkl"))
        assert keys_after == keys_before
        assert obs_flows == base_flows
        assert obs_metrics == base_metrics

    def test_exports_identical_with_health_monitoring(self, tmp_path):
        """Health plane on vs off, same supervision: byte-identical.

        The monitor observes a supervised run (heartbeats, lanes,
        suspicion) but must never change what the engine computes or
        exports — the kill-a-worker acceptance check in
        ``tests/test_health.py`` asserts attribution; this one asserts
        the zero-perturbation half of the invariant.
        """
        from repro.obs import HealthMonitor, HealthPolicy
        from repro.runner import SupervisionPolicy

        def run(health, tag):
            collector = CampaignCollector()
            with engine_options(jobs=2, observer=collector,
                                supervision=SupervisionPolicy(),
                                health=health):
                fig2.run(TINY, seed=0)
            return _export_bytes(collector, tmp_path, tag)

        off = run(None, "health-off")
        monitor = HealthMonitor(HealthPolicy(interval=0.05))
        on = run(monitor, "health-on")
        assert on == off
        # and the monitor really was live, not silently bypassed
        lanes = monitor.lanes()
        assert lanes
        assert sum(lane.units_done for lane in lanes) == monitor.units_done
        assert monitor.units_done > 0
        assert sum(lane.beats for lane in lanes) >= len(lanes)  # birth beats

    def test_plan_fingerprint_ignores_observer_state(self):
        video, config = _video(), _config()
        base = plan_fingerprint(video, config)
        with engine_options(observer=CampaignCollector()):
            assert plan_fingerprint(video, config) == base


class TestObserverHook:
    def test_default_observer_is_disabled_null(self):
        options = current_options()
        assert options.observer is NULL_OBSERVER
        assert options.observer.enabled is False

    def test_engine_options_inherit_observer(self):
        collector = CampaignCollector()
        with engine_options(observer=collector):
            with engine_options(jobs=2):  # None observer -> inherit
                assert current_options().observer is collector
        assert current_options().observer is NULL_OBSERVER

    def test_composite_fans_out_and_ors_enabled(self):
        assert CompositeRunObserver(NullRunObserver()).enabled is False
        a, b = CampaignCollector(), CampaignCollector()
        composite = CompositeRunObserver(a, b)
        assert composite.enabled is True
        result = run_session(_video(), _config())
        composite.batch_finished([result])
        assert len(a.sessions) == len(b.sessions) == 1

    def test_collector_skips_non_session_values(self):
        collector = CampaignCollector()
        collector.batch_finished([1, "x", None])
        assert collector.sessions == []

    def test_collector_ids_are_sequential(self):
        collector = CampaignCollector()
        result = run_session(_video(), _config())
        collector.batch_finished([result])
        collector.batch_finished([result])
        assert [sid for sid, _ in collector.sessions] == ["s0000", "s0001"]

    def test_observer_sees_batches_through_run_sessions(self):
        seen = []

        class Spy(NullRunObserver):
            enabled = True

            def batch_started(self, units, cache_hits):
                seen.append(("started", units, cache_hits))

            def unit_finished(self, value):
                seen.append(("unit",))

            def batch_finished(self, values):
                seen.append(("finished", len(values)))

        with engine_options(observer=Spy()):
            results = run_sessions([(_video(), _config())])
        assert len(results) == 1
        assert seen[0] == ("started", 1, 0)
        assert ("unit",) in seen
        assert seen[-1] == ("finished", 1)


class _FakeTty(io.StringIO):
    """A StringIO that claims to be a terminal, for \\r-rewrite tests."""

    def isatty(self):
        return True


class _FakeTime:
    """Stand-in for the ``time`` module inside ``repro.obs.progress``."""

    def __init__(self, now=100.0):
        self.now = now

    def monotonic(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestProgressReporter:
    def test_renders_single_line_with_rate_and_cache(self):
        stream = _FakeTty()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        reporter.batch_started(4, 1)
        reporter.unit_finished(object())
        reporter.close()
        out = stream.getvalue()
        assert "\r" in out
        last = out.rstrip("\n").rsplit("\r", 1)[-1].strip()
        assert last.startswith("sessions 2/4")
        assert "cache 1/2" in last
        assert out.endswith("\n")

    def test_counts_retries_and_faults(self):
        class FakeResult:
            retry_count = 2
            fault_log = [1, 2, 3]

        stream = _FakeTty()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        reporter.batch_started(1, 0)
        reporter.batch_finished([FakeResult()])
        reporter.close()
        line = stream.getvalue()
        assert "retries 2" in line
        assert "faults 3" in line

    def test_close_is_idempotent(self):
        stream = _FakeTty()
        reporter = ProgressReporter(stream=stream)
        reporter.close()
        once = stream.getvalue()
        reporter.close()
        assert stream.getvalue() == once
        assert once.count("\n") == 1

    def test_non_tty_emits_plain_lines_not_rewrites(self):
        stream = io.StringIO()  # isatty() is False
        reporter = ProgressReporter(stream=stream, min_interval=0.0,
                                    plain_interval=0.0)
        reporter.batch_started(2, 0)
        reporter.unit_finished(object())
        reporter.unit_finished(object())
        reporter.close()
        out = stream.getvalue()
        assert "\r" not in out
        lines = [l for l in out.splitlines() if l]
        assert lines, "plain mode must still report progress"
        assert lines[-1].startswith("sessions 2/2")

    def test_non_tty_throttles_to_plain_interval(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0,
                                    plain_interval=3600.0)
        reporter.batch_started(10, 0)
        for _ in range(10):
            reporter.unit_finished(object())
        reporter.close()
        out = stream.getvalue()
        # one initial line, plus the final flush of pending progress
        assert 1 <= out.count("\n") <= 2
        assert out.splitlines()[-1].startswith("sessions 10/10")

    def test_zero_unit_non_tty_close_still_summarizes(self):
        """A campaign that schedules nothing never dirties the line;
        close() must still emit the one-line summary (regression:
        zero-unit non-TTY runs used to end completely silent)."""
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, plain_interval=3600.0)
        reporter.close()
        out = stream.getvalue()
        assert out.count("\n") == 1
        assert out.splitlines()[0].startswith("sessions 0/0")
        reporter.close()  # still idempotent
        assert stream.getvalue() == out

    def test_eta_uses_smoothed_rate_not_whole_run_average(self, monkeypatch):
        fake = _FakeTime()
        monkeypatch.setattr("repro.obs.progress.time", fake)
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0,
                                    plain_interval=0.0)
        reporter.batch_started(20, 0)
        # a burst at 10/s, then the pace collapses to 0.5/s
        for _ in range(5):
            fake.advance(0.1)
            reporter.unit_finished(object())
        for _ in range(5):
            fake.advance(2.0)
            reporter.unit_finished(object())
        # the first completion only anchors the clock: 4 fast samples
        expected = 0.0
        for sample in [10.0] * 4 + [0.5] * 5:
            expected = (sample if expected == 0.0
                        else 0.3 * sample + 0.7 * expected)
        assert reporter._rate == pytest.approx(expected)
        last = stream.getvalue().splitlines()[-1]
        assert f"{expected:.1f}/s" in last       # ~2.1/s: the current pace
        whole_run = reporter.done / (fake.monotonic() - 100.0)
        assert f"{whole_run:.1f}/s" not in last  # ~1.0/s: the stale average

    def test_unit_failed_counts_retry_then_quarantine(self):
        class Attempt:
            def __init__(self, final):
                self.final = final

        stream = _FakeTty()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        reporter.batch_started(2, 0)
        reporter.unit_failed(Attempt(final=False))
        reporter.unit_failed(Attempt(final=True))
        reporter.unit_finished(object())
        reporter.close()
        line = stream.getvalue().rstrip("\n").rsplit("\r", 1)[-1]
        assert "retries 1" in line
        assert "failed 1" in line
        # the quarantined unit counts as settled: 1 finished + 1 failed
        assert line.strip().startswith("sessions 2/2")

    def test_context_manager_releases_line_on_interrupt(self):
        stream = _FakeTty()
        with pytest.raises(KeyboardInterrupt):
            with ProgressReporter(stream=stream, min_interval=0.0) as rep:
                rep.batch_started(5, 0)
                rep.unit_finished(object())
                raise KeyboardInterrupt
        assert stream.getvalue().endswith("\n")


class TestCli:
    def test_experiment_flow_and_metric_export(self, tmp_path, capsys):
        flows = tmp_path / "flows.jsonl"
        metrics = tmp_path / "metrics.prom"
        code = main(["experiment", "model_validation", "--scale", "small",
                     "--flows", str(flows), "--metrics", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert "flows written" in out
        assert "metrics written" in out
        # model_validation runs tasks, not sessions: flows legitimately
        # empty, but both files must exist and be well-formed
        assert flows.exists()
        assert metrics.exists()

    def test_experiment_rejects_unknown_export_suffix(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignCollector().write_flows(tmp_path / "flows.xml")

    def test_progress_flag_writes_stderr_only(self, tmp_path, capsys):
        code = main(["experiment", "model_validation", "--scale", "small",
                     "--progress"])
        assert code == 0
        captured = capsys.readouterr()
        # captured stderr is not a TTY: plain lines, never \r rewrites
        assert "\r" not in captured.err
        assert "sessions" in captured.err
        assert "sessions" not in captured.out
