"""Tests for the campaign journal: the write-ahead ledger behind --resume."""

import json

from repro.runner import CampaignJournal, campaign_fingerprint, list_journals


KEY_A = "aa" + "0" * 38
KEY_B = "bb" + "0" * 38


class TestCampaignFingerprint:
    def test_stable_and_distinct(self):
        fp = campaign_fingerprint("fig2", "small", 1)
        assert fp == campaign_fingerprint("fig2", "small", 1)
        assert fp != campaign_fingerprint("fig2", "small", 2)
        assert fp != campaign_fingerprint("fig2", "full", 1)
        assert fp != campaign_fingerprint("fig3", "small", 1)
        assert len(fp) == 16
        int(fp, 16)


class TestCampaignJournal:
    def test_round_trip_with_meta_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, meta={"experiment": "fig2"}) as journal:
            journal.done(KEY_A)
            journal.quarantined(KEY_B, "boom", 3)
        with CampaignJournal(path) as loaded:
            assert loaded.meta == {"experiment": "fig2"}
            assert loaded.status(KEY_A) == "done"
            assert loaded.status(KEY_B) == "quarantined"
            assert loaded.entries[KEY_B].error == "boom"
            assert loaded.entries[KEY_B].attempts == 3
            assert loaded.counts() == {"done": 1, "failed": 0,
                                       "quarantined": 1}
            assert len(loaded) == 2

    def test_last_status_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.failed(KEY_A, "transient", 1)
            journal.done(KEY_A, attempts=2)
        with CampaignJournal(path) as loaded:
            assert loaded.status(KEY_A) == "done"
            assert loaded.counts()["failed"] == 0

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.done(KEY_A)
        # simulate a writer killed mid-append: a partial trailing line
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"key": "' + KEY_B + '", "sta')
        with CampaignJournal(path) as loaded:
            assert loaded.status(KEY_A) == "done"
            assert loaded.status(KEY_B) is None
        # and the journal stays appendable afterwards
        with CampaignJournal(path) as journal:
            journal.done(KEY_B)
        with CampaignJournal(path) as loaded:
            assert loaded.status(KEY_B) == "done"

    def test_done_is_idempotent_on_disk(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            for _ in range(5):
                journal.done(KEY_A)
        lines = [l for l in path.read_text().splitlines() if l]
        assert len(lines) == 1  # no meta (none given), one outcome line

    def test_status_of_unknown_key_is_none(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            assert journal.status(KEY_A) is None

    def test_for_campaign_names_by_fingerprint(self, tmp_path):
        journal = CampaignJournal.for_campaign(tmp_path, "fig2", "small", 1)
        try:
            fp = campaign_fingerprint("fig2", "small", 1)
            assert journal.path.name == f"fig2-{fp}.jsonl"
            assert journal.path.parent == tmp_path / "journal"
            assert journal.meta == {"experiment": "fig2", "scale": "small",
                                    "seed": 1}
        finally:
            journal.close()

    def test_for_campaign_resumes_then_fresh_discards(self, tmp_path):
        with CampaignJournal.for_campaign(tmp_path, "fig2", "small", 1) as j:
            j.done(KEY_A)
        with CampaignJournal.for_campaign(tmp_path, "fig2", "small", 1) as j:
            assert j.status(KEY_A) == "done"  # resumed
        with CampaignJournal.for_campaign(tmp_path, "fig2", "small", 1,
                                          fresh=True) as j:
            assert j.status(KEY_A) is None    # discarded
            assert j.meta["experiment"] == "fig2"  # header rewritten

    def test_meta_header_is_first_line(self, tmp_path):
        with CampaignJournal.for_campaign(tmp_path, "fig2", "small", 1) as j:
            j.done(KEY_A)
        first = json.loads(j.path.read_text().splitlines()[0])
        assert first == {"meta": {"experiment": "fig2", "scale": "small",
                                  "seed": 1}}


class TestListJournals:
    def test_empty_root_lists_nothing(self, tmp_path):
        assert list_journals(tmp_path) == []
        assert list_journals(tmp_path / "missing") == []

    def test_summaries_are_sorted_and_counted(self, tmp_path):
        with CampaignJournal.for_campaign(tmp_path, "fig3", "small", 0) as j:
            j.done(KEY_A)
            j.done(KEY_B)
        with CampaignJournal.for_campaign(tmp_path, "fig2", "small", 1) as j:
            j.done(KEY_A)
            j.quarantined(KEY_B, "boom", 3)
        summaries = list_journals(tmp_path)
        assert [s["experiment"] for s in summaries] == ["fig2", "fig3"]
        fig2, fig3 = summaries
        assert fig2["done"] == 1
        assert fig2["quarantined"] == 1
        assert fig2["seed"] == 1
        assert fig3["done"] == 2
        assert fig3["units"] == 2
