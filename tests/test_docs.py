"""Documentation guarantees, enforced as tests.

Mirrors the CI docs job (``tools/docs_ci.py``): markdown doctests run,
relative links resolve, every public export has a docstring, and the
generated API reference is fresh.  Running it from pytest keeps doc rot
visible locally, not just on CI.
"""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import docs_ci  # noqa: E402
import gen_api_docs  # noqa: E402


class TestDocsCi:
    def test_markdown_files_are_discovered(self):
        names = {p.name for p in docs_ci.markdown_files()}
        assert {"README.md", "DESIGN.md", "EXPERIMENTS.md",
                "ARCHITECTURE.md", "API.md"} <= names

    def test_markdown_doctests_pass(self):
        assert docs_ci.check_markdown_doctests() == []

    def test_architecture_doc_carries_executable_examples(self):
        # the determinism contract must stay executable, not prose-only
        arch = ROOT / "docs" / "ARCHITECTURE.md"
        assert list(docs_ci.iter_doctest_blocks(arch))

    def test_relative_links_resolve(self):
        assert docs_ci.check_links() == []

    def test_broken_links_are_detected(self, tmp_path, monkeypatch):
        bad = tmp_path / "bad.md"
        bad.write_text("see [x](no-such-file.md) and [y](README.md#nope)\n")
        (tmp_path / "README.md").write_text("# Title\n")
        monkeypatch.setattr(docs_ci, "markdown_files", lambda: [bad])
        monkeypatch.setattr(docs_ci, "ROOT", tmp_path)
        failures = docs_ci.check_links()
        assert len(failures) == 2
        assert any("broken link" in f for f in failures)
        assert any("missing anchor" in f for f in failures)

    def test_slugify_matches_github_anchors(self):
        assert docs_ci._slugify("4. Telemetry (`repro.telemetry`)") \
            == "4-telemetry-reprotelemetry"

    def test_public_exports_have_docstrings(self):
        assert docs_ci.check_docstrings() == []

    def test_api_reference_is_fresh(self):
        assert docs_ci.check_api_freshness() == []

    def test_generated_api_covers_every_public_module(self):
        text = (ROOT / "docs" / "API.md").read_text()
        for dotted in gen_api_docs.PUBLIC_MODULES:
            assert f"## `{dotted}`" in text

    def test_generation_is_deterministic(self):
        assert gen_api_docs.generate() == gen_api_docs.generate()
