"""Tests for the engine's fault boundary: supervision, retry, quarantine.

Workers that crash, hang, or raise are module-level functions (picklable
by reference, as the pool requires); cross-process "fail once, then
succeed" state rides on marker files under ``tmp_path`` because retries
run in a *fresh* worker process by design.
"""

import os
import time

import pytest

from repro.runner import (
    CampaignAborted,
    FailedUnit,
    FailureReport,
    RetryBudget,
    SupervisionPolicy,
    UnitFailure,
    run_supervised,
)

#: Retry without waiting: the backoff schedule is tested separately.
FAST = RetryBudget(max_attempts=3, backoff_base=0.0)


def _square(x):
    return x * x


def _flaky(item):
    """Fail (raise) the first time each marker is seen, succeed after."""
    root, x = item
    marker = os.path.join(root, f"flaky-{x}.seen")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise ValueError(f"transient failure on {x}")
    return x * x


def _crashy(item):
    """Hard-kill the worker process the first time each marker is seen."""
    root, x = item
    marker = os.path.join(root, f"crash-{x}.seen")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(99)
    return x * x


def _poison(x):
    raise ValueError(f"always bad: {x}")


def _slow_then_fast(item):
    """Sleep past any reasonable deadline on the first attempt only."""
    root, x = item
    marker = os.path.join(root, f"slow-{x}.seen")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(60.0)
    return x * x


class TestRetryBudget:
    def test_backoff_is_exponential_and_capped(self):
        budget = RetryBudget(backoff_base=0.5, backoff_cap=3.0)
        assert budget.delay(1) == 0.5
        assert budget.delay(2) == 1.0
        assert budget.delay(3) == 2.0
        assert budget.delay(4) == 3.0   # capped
        assert budget.delay(10) == 3.0

    def test_zero_base_disables_waiting(self):
        assert RetryBudget(backoff_base=0.0).delay(5) == 0.0


class TestRunSupervised:
    def test_clean_run_preserves_input_order(self):
        policy = SupervisionPolicy(retry=FAST)
        results, quarantined, retries = run_supervised(
            _square, [5, 3, 8, 1], jobs=2, policy=policy)
        assert results == [25, 9, 64, 1]
        assert quarantined == []
        assert retries == 0

    def test_transient_exception_is_retried(self, tmp_path):
        items = [(str(tmp_path), x) for x in range(4)]
        policy = SupervisionPolicy(retry=FAST)
        results, quarantined, retries = run_supervised(
            _flaky, items, jobs=2, policy=policy)
        assert results == [0, 1, 4, 9]
        assert quarantined == []
        assert retries == 4  # every unit failed exactly once

    def test_worker_crash_is_contained_and_retried(self, tmp_path):
        items = [(str(tmp_path), x) for x in range(3)]
        policy = SupervisionPolicy(retry=FAST)
        results, quarantined, retries = run_supervised(
            _crashy, items, jobs=2, policy=policy)
        assert results == [0, 1, 4]
        assert quarantined == []
        assert retries == 3

    def test_poison_unit_is_quarantined_with_attribution(self):
        policy = SupervisionPolicy(
            retry=RetryBudget(max_attempts=2, backoff_base=0.0))
        results, quarantined, retries = run_supervised(
            _poison, [7], jobs=1, policy=policy,
            describe=lambda i: f"unit-{i}", keys=["k" * 40])
        assert len(quarantined) == 1
        failure = quarantined[0]
        assert isinstance(results[0], FailedUnit)
        assert results[0].failure is failure
        assert failure.final
        assert failure.kind == "exception"
        assert failure.attempts == 2
        assert failure.label == "unit-0"
        assert failure.key == "k" * 40
        assert "always bad" in failure.error
        assert "ValueError" in failure.traceback
        assert retries == 1

    def test_deadline_kills_hung_worker_and_retries(self, tmp_path):
        items = [(str(tmp_path), x) for x in range(2)]
        policy = SupervisionPolicy(
            unit_timeout=0.5,
            retry=RetryBudget(max_attempts=2, backoff_base=0.0),
            poll_interval=0.02)
        started = time.monotonic()
        results, quarantined, retries = run_supervised(
            _slow_then_fast, items, jobs=2, policy=policy)
        elapsed = time.monotonic() - started
        assert results == [0, 1]
        assert quarantined == []
        assert retries == 2
        assert elapsed < 30.0  # killed, not waited out

    def test_campaign_retry_budget_bounds_total_retries(self):
        # total=1: the first poison unit consumes the campaign budget;
        # the second quarantines on its first failure
        policy = SupervisionPolicy(
            retry=RetryBudget(max_attempts=5, total=1, backoff_base=0.0))
        results, quarantined, retries = run_supervised(
            _poison, [1, 2], jobs=1, policy=policy)
        assert len(quarantined) == 2
        assert retries == 1
        assert all(isinstance(r, FailedUnit) for r in results)

    def test_on_done_fires_per_completion(self):
        seen = []
        policy = SupervisionPolicy(retry=FAST)
        results, _, _ = run_supervised(
            _square, [2, 3], jobs=1, policy=policy,
            on_done=lambda i, v: seen.append((i, v)))
        assert sorted(seen) == [(0, 4), (1, 9)]
        assert results == [4, 9]

    def test_on_failure_sees_transient_then_final(self):
        attempts = []
        policy = SupervisionPolicy(
            retry=RetryBudget(max_attempts=2, backoff_base=0.0))
        run_supervised(_poison, [1], jobs=1, policy=policy,
                       on_failure=lambda f: attempts.append(f.final))
        assert attempts == [False, True]

    def test_empty_batch_is_a_noop(self):
        results, quarantined, retries = run_supervised(
            _square, [], jobs=4, policy=SupervisionPolicy(retry=FAST))
        assert results == []
        assert quarantined == []
        assert retries == 0


class TestFailureReport:
    def _failure(self, **overrides):
        base = dict(index=3, label="fig2-flash seed=1", key="ab" * 20,
                    kind="exception", error="ValueError: nope",
                    attempts=2, final=True)
        base.update(overrides)
        return UnitFailure(**base)

    def test_ok_until_a_failure_is_added(self):
        report = FailureReport()
        assert report.ok
        assert report.format() == "no failures"
        report.add(self._failure())
        assert not report.ok

    def test_format_attributes_every_failure(self):
        report = FailureReport()
        report.add(self._failure())
        report.retries = 4
        text = report.format()
        assert "1 unit(s) quarantined (4 retries spent)" in text
        assert "fig2-flash seed=1" in text
        assert "after 2 attempt(s)" in text
        assert "ValueError: nope" in text
        assert ("ab" * 20)[:12] in text

    def test_records_are_flat_and_export_ready(self):
        record = self._failure().record()
        assert record["unit"] == 3
        assert record["kind"] == "exception"
        assert record["final"] is True

    def test_campaign_aborted_carries_the_report(self):
        report = FailureReport()
        report.add(self._failure())
        exc = CampaignAborted(report)
        assert exc.report is report
        assert "quarantined" in str(exc)
