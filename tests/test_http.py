"""Tests for the HTTP layer: messages, ranges, container headers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.http import (
    CONTAINER_HEADER_LEN,
    CodecError,
    Headers,
    HttpError,
    HttpRequest,
    HttpResponse,
    RangeError,
    build_flv_header,
    build_webm_header,
    format_content_range,
    format_range,
    parse_container_header,
    parse_content_range,
    parse_range,
    parse_request,
    parse_response_head,
    sniff_container,
)


class TestHeaders:
    def test_case_insensitive_get(self):
        h = Headers([("Content-Length", "42")])
        assert h.get("content-length") == "42"
        assert "CONTENT-LENGTH" in h

    def test_set_replaces_existing(self):
        h = Headers([("Range", "bytes=0-1")])
        h.set("range", "bytes=2-3")
        assert len(h) == 1
        assert h.get("Range") == "bytes=2-3"

    def test_missing_returns_default(self):
        assert Headers().get("X-Nope", "dflt") == "dflt"

    def test_serialize_preserves_order(self):
        h = Headers([("A", "1"), ("B", "2")])
        assert h.serialize() == b"A: 1\r\nB: 2\r\n"


class TestRequest:
    def test_serialize_parse_round_trip(self):
        req = HttpRequest("GET", "/videoplayback?id=42")
        req.headers.set("Host", "youtube.example")
        req.headers.set("Range", "bytes=0-65535")
        parsed, consumed = parse_request(req.serialize())
        assert parsed.method == "GET"
        assert parsed.path == "/videoplayback?id=42"
        assert parsed.range_header == "bytes=0-65535"
        assert consumed == len(req.serialize())

    def test_incomplete_head_returns_none(self):
        assert parse_request(b"GET / HTTP/1.1\r\nHost: x\r\n") is None

    def test_trailing_bytes_not_consumed(self):
        data = HttpRequest("GET", "/a").serialize() + b"EXTRA"
        _req, consumed = parse_request(data)
        assert data[consumed:] == b"EXTRA"

    def test_bad_request_line(self):
        with pytest.raises(HttpError):
            parse_request(b"BROKEN\r\n\r\n")

    def test_bad_header_line(self):
        with pytest.raises(HttpError):
            parse_request(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")


class TestResponse:
    def test_serialize_parse_round_trip(self):
        resp = HttpResponse(200)
        resp.headers.set("Content-Length", "123456")
        parsed, _ = parse_response_head(resp.serialize_head())
        assert parsed.status == 200
        assert parsed.reason == "OK"
        assert parsed.content_length == 123456

    def test_default_reasons(self):
        assert HttpResponse(206).reason == "Partial Content"
        assert HttpResponse(416).reason == "Range Not Satisfiable"

    def test_content_length_absent(self):
        assert HttpResponse(200).content_length is None

    def test_bad_status_line(self):
        with pytest.raises(HttpError):
            parse_response_head(b"HTTP/1.1 abc\r\n\r\n")

    def test_incomplete_returns_none(self):
        assert parse_response_head(b"HTTP/1.1 200 OK\r\n") is None


class TestRange:
    def test_simple_range(self):
        assert parse_range("bytes=0-99", 1000) == (0, 99)

    def test_open_ended_range(self):
        assert parse_range("bytes=500-", 1000) == (500, 999)

    def test_suffix_range(self):
        assert parse_range("bytes=-100", 1000) == (900, 999)

    def test_suffix_larger_than_resource(self):
        assert parse_range("bytes=-5000", 1000) == (0, 999)

    def test_end_clamped_to_resource(self):
        assert parse_range("bytes=0-99999", 1000) == (0, 999)

    def test_start_beyond_resource_rejected(self):
        with pytest.raises(RangeError):
            parse_range("bytes=1000-1100", 1000)

    def test_inverted_rejected(self):
        with pytest.raises(RangeError):
            parse_range("bytes=50-10", 1000)

    def test_multi_range_rejected(self):
        with pytest.raises(RangeError):
            parse_range("bytes=0-1,5-9", 1000)

    def test_bad_unit_rejected(self):
        with pytest.raises(RangeError):
            parse_range("items=0-1", 1000)

    def test_format_range(self):
        assert format_range(0, 65535) == "bytes=0-65535"
        with pytest.raises(RangeError):
            format_range(10, 5)

    def test_content_range_round_trip(self):
        value = format_content_range(100, 199, 1000)
        assert value == "bytes 100-199/1000"
        assert parse_content_range(value) == (100, 199, 1000)

    def test_content_range_unknown_total(self):
        assert parse_content_range("bytes 0-1/*") == (0, 1, None)

    def test_content_range_validation(self):
        with pytest.raises(RangeError):
            format_content_range(0, 1000, 1000)
        with pytest.raises(RangeError):
            parse_content_range("bytes 5-2/10")

    @given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(1, 10_000))
    def test_parse_format_consistency(self, start, end, total):
        """Any formatted range that parses must stay within the resource."""
        if start > end:
            start, end = end, start
        try:
            got = parse_range(format_range(start, end), total)
        except RangeError:
            assert start >= total
            return
        assert 0 <= got[0] <= got[1] < total
        assert got[0] == start


class TestContainerHeaders:
    def test_flv_round_trip(self):
        blob = build_flv_header(1_000_000, 212.0, frame_rate=30.0)
        assert len(blob) == CONTAINER_HEADER_LEN
        meta = parse_container_header(blob)
        assert meta.container == "flv"
        assert meta.encoding_rate_bps == 1_000_000
        assert meta.duration == 212.0
        assert meta.frame_rate == 30.0
        assert meta.has_valid_rate

    def test_webm_header_hides_rate(self):
        """The 2011 webM defect: no encoding rate recoverable from the header."""
        meta = parse_container_header(build_webm_header(180.0))
        assert meta.container == "webm"
        assert meta.encoding_rate_bps is None
        assert meta.frame_rate is None       # the invalid entry
        assert meta.duration == 180.0
        assert not meta.has_valid_rate

    def test_header_parses_with_trailing_body(self):
        blob = build_flv_header(500_000, 60.0) + b"\x00" * 100
        assert parse_container_header(blob).encoding_rate_bps == 500_000

    def test_short_header_rejected(self):
        with pytest.raises(CodecError):
            parse_container_header(b"FLV\x01tooshort")

    def test_unknown_magic_rejected(self):
        with pytest.raises(CodecError):
            parse_container_header(b"\x00" * CONTAINER_HEADER_LEN)

    def test_invalid_build_params(self):
        with pytest.raises(CodecError):
            build_flv_header(0, 60.0)
        with pytest.raises(CodecError):
            build_webm_header(-1.0)

    def test_sniff(self):
        assert sniff_container(build_flv_header(1, 1)) == "flv"
        assert sniff_container(build_webm_header(1)) == "webm"
        assert sniff_container(b"nope") is None
