"""Tests for fault injection: link outage state, schedules, resets."""

import random

import pytest

from repro.simnet import (
    BandwidthDegradation,
    ConfigurationError,
    ConnectionReset,
    DeterministicLoss,
    EventScheduler,
    FaultSchedule,
    GilbertElliottLoss,
    LinkOutage,
    Network,
    Path,
    PredicateLoss,
    RandomFlaps,
    ServerOutage,
)
from repro.simnet.link import Link


class FakePacket:
    def __init__(self, wire_size=100):
        self.wire_size = wire_size


def make_link(sched=None):
    sched = sched or EventScheduler()
    return Link(sched, rate_bps=8e6, prop_delay=0.01)


def make_path(sched):
    return Path(sched, rate_ab_bps=8e6, rate_ba_bps=1e6, prop_delay=0.01)


class TestLinkFaultState:
    def test_down_link_blackholes(self):
        link = make_link()
        delivered = []
        link.connect(delivered.append)
        link.set_up(False)
        assert link.transmit(FakePacket()) is True  # swallowed, not queue-dropped
        link.scheduler.run()
        assert delivered == []
        assert link.stats.packets_blackholed == 1
        assert link.stats.packets_dropped_queue == 0

    def test_up_link_delivers(self):
        link = make_link()
        delivered = []
        link.connect(delivered.append)
        link.set_up(False)
        link.set_up(True)
        link.transmit(FakePacket())
        link.scheduler.run()
        assert len(delivered) == 1
        assert link.stats.packets_blackholed == 0

    def test_set_rate_changes_serialization(self):
        link = make_link()
        base = link.serialization_delay(1000)
        link.set_rate(link.base_rate_bps / 4)
        assert link.serialization_delay(1000) == pytest.approx(4 * base)

    def test_set_rate_rejects_nonpositive(self):
        link = make_link()
        with pytest.raises(ConfigurationError):
            link.set_rate(0.0)

    def test_reset_restores_rate_up_and_loss(self):
        link = Link(EventScheduler(), rate_bps=8e6, prop_delay=0.01,
                    loss_model=DeterministicLoss({0}))
        link.connect(lambda p: None)
        link.set_up(False)
        link.set_rate(1e6)
        link.loss_model.should_drop()  # advance the loss index
        link.reset()
        assert link.up
        assert link.rate_bps == link.base_rate_bps
        # the loss model starts over: index 0 drops again
        assert link.loss_model.should_drop() is True


class TestPathAndNetworkReset:
    def test_path_reset_covers_both_directions(self):
        sched = EventScheduler()
        path = Path(sched, rate_ab_bps=8e6, rate_ba_bps=1e6, prop_delay=0.01,
                    loss_ab=DeterministicLoss({0}), loss_ba=DeterministicLoss({0}))
        path.forward.set_up(False)
        path.reverse.set_rate(1.0)
        path.forward.loss_model.should_drop()
        path.reverse.loss_model.should_drop()
        path.reset()
        assert path.forward.up
        assert path.reverse.rate_bps == path.reverse.base_rate_bps
        assert path.forward.loss_model.should_drop() is True
        assert path.reverse.loss_model.should_drop() is True

    def test_add_path_resets_leftover_fault_state(self):
        # a Path object reused across Network instances must not leak
        # outage/degradation/loss-position state into the next run
        sched = EventScheduler()
        path = make_path(sched)
        path.forward.set_up(False)
        path.forward.set_rate(1.0)
        net = Network(scheduler=sched)
        a = net.add_host("10.0.0.1")
        b = net.add_host("10.0.0.2")
        net.add_path(a, b, path)
        assert path.forward.up
        assert path.forward.rate_bps == path.forward.base_rate_bps


class TestFaultScheduleValidation:
    def test_bad_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().outage(1.0, 2.0, direction="sideways")

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().outage(1.0, 0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().outage(-1.0, 2.0)

    def test_degradation_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().degrade(1.0, 2.0, factor=0.0)
        with pytest.raises(ConfigurationError):
            FaultSchedule().degrade(1.0, 2.0, factor=1.5)

    def test_flap_interval_positive(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().flaps(0.0, (1.0, 2.0))

    def test_constructor_validates_events(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule([LinkOutage(0.0, 1.0, direction="nope")])


class TestFaultScheduleArming:
    def test_outage_window_downs_then_restores(self):
        sched = EventScheduler()
        path = make_path(sched)
        log = FaultSchedule().outage(1.0, 2.0, direction="down").apply(sched, path)
        sched.run_until(0.5)
        assert path.forward.up and path.reverse.up
        sched.run_until(1.5)
        assert not path.forward.up
        assert path.reverse.up  # direction="down" leaves the uplink alone
        sched.run_until(4.0)
        assert path.forward.up
        assert log.times("outage-start") == [1.0]
        assert log.times("outage-end") == [3.0]

    def test_degradation_window_scales_rate(self):
        sched = EventScheduler()
        path = make_path(sched)
        FaultSchedule().degrade(1.0, 2.0, factor=0.25).apply(sched, path)
        sched.run_until(1.5)
        assert path.forward.rate_bps == pytest.approx(0.25 * path.forward.base_rate_bps)
        sched.run_until(4.0)
        assert path.forward.rate_bps == path.forward.base_rate_bps

    def test_server_faults_dispatch_to_server_object(self):
        class FakeServer:
            def __init__(self):
                self.until = None
                self.aborts = 0

            def set_unavailable(self, until):
                self.until = until

            def abort_connections(self):
                self.aborts += 1
                return 3

        sched = EventScheduler()
        path = make_path(sched)
        server = FakeServer()
        log = (FaultSchedule()
               .server_outage(1.0, 5.0)
               .connection_reset(2.0)
               .apply(sched, path, server=server))
        sched.run_until(10.0)
        assert server.until == 6.0
        assert server.aborts == 1
        assert log.times("server-outage-start") == [1.0]
        assert log.times("connection-reset") == [2.0]

    def test_server_faults_require_server(self):
        sched = EventScheduler()
        with pytest.raises(ConfigurationError):
            FaultSchedule().server_outage(1.0, 5.0).apply(sched, make_path(sched))

    def test_flaps_require_rng(self):
        sched = EventScheduler()
        with pytest.raises(ConfigurationError):
            FaultSchedule().flaps(5.0, (0.5, 1.0)).apply(sched, make_path(sched))

    def test_flaps_deterministic_under_seed(self):
        def flap_times(seed):
            sched = EventScheduler()
            path = make_path(sched)
            log = (FaultSchedule()
                   .flaps(5.0, (0.5, 1.0), until=60.0)
                   .apply(sched, path, rng=random.Random(seed)))
            sched.run_until(100.0)
            return log.times("outage-start"), log.times("outage-end")

        starts_a, ends_a = flap_times(7)
        starts_b, ends_b = flap_times(7)
        assert starts_a == starts_b and ends_a == ends_b
        assert starts_a  # at least one flap in 60 s at mean interval 5 s
        assert len(starts_a) == len(ends_a)
        assert flap_times(8)[0] != starts_a

    def test_schedule_reusable_across_topologies(self):
        schedule = FaultSchedule().outage(1.0, 1.0)
        for _ in range(2):
            sched = EventScheduler()
            path = make_path(sched)
            schedule.apply(sched, path)
            sched.run_until(1.5)
            assert not path.forward.up


class TestGilbertElliottStatistics:
    """Satellite coverage: burst structure of the bursty loss model."""

    P_GB, P_BG = 0.02, 0.25

    def make_model(self, seed=42):
        return GilbertElliottLoss(self.P_GB, self.P_BG, random.Random(seed),
                                  loss_good=0.0, loss_bad=1.0)

    def test_empirical_rate_matches_steady_state(self):
        model = self.make_model()
        n = 50_000
        drops = sum(model.should_drop() for _ in range(n))
        assert drops / n == pytest.approx(model.steady_state_loss, rel=0.15)

    def test_mean_burst_length_is_geometric(self):
        # with loss_bad=1 a drop burst is one dwell in the bad state:
        # lengths are Geometric(p_bg) with mean 1/p_bg
        model = self.make_model()
        bursts, current = [], 0
        for _ in range(50_000):
            if model.should_drop():
                current += 1
            elif current:
                bursts.append(current)
                current = 0
        assert len(bursts) > 100
        mean_burst = sum(bursts) / len(bursts)
        assert mean_burst == pytest.approx(1.0 / self.P_BG, rel=0.15)

    def test_reset_clears_burst_state(self):
        model = GilbertElliottLoss(1.0, 0.0, random.Random(1),
                                   loss_good=0.0, loss_bad=1.0)
        assert model.should_drop()  # enters (and never leaves) the bad state
        model.reset()
        assert model._bad is False


class TestDeterministicModelReset:
    """Satellite coverage: reset semantics of the scripted loss models."""

    def test_deterministic_loss_replays_after_reset(self):
        model = DeterministicLoss({1, 3})
        first = [model.should_drop() for _ in range(5)]
        assert first == [False, True, False, True, False]
        model.reset()
        assert [model.should_drop() for _ in range(5)] == first

    def test_predicate_loss_replays_after_reset(self):
        model = PredicateLoss(lambda i: i % 3 == 0)
        first = [model.should_drop() for _ in range(6)]
        assert first == [True, False, False, True, False, False]
        model.reset()
        assert [model.should_drop() for _ in range(6)] == first
