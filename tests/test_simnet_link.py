"""Tests for links, paths and the network fabric."""

import pytest

from repro.simnet import (
    AddressError,
    ConfigurationError,
    DeterministicLoss,
    EventScheduler,
    Link,
    Network,
    Path,
)


class FakePacket:
    def __init__(self, wire_size=1000, dst_ip="10.0.0.1"):
        self.wire_size = wire_size
        self.dst_ip = dst_ip
        # fields needed by Host.deliver_segment
        self.dst_port = 80
        self.src_ip = "192.0.2.1"
        self.src_port = 5000


class TestLink:
    def make_link(self, rate=8e6, delay=0.01, **kw):
        sched = EventScheduler()
        link = Link(sched, rate, delay, **kw)
        delivered = []
        link.connect(lambda p: delivered.append((sched.clock.now(), p)))
        return sched, link, delivered

    def test_parameter_validation(self):
        sched = EventScheduler()
        with pytest.raises(ConfigurationError):
            Link(sched, 0, 0.01)
        with pytest.raises(ConfigurationError):
            Link(sched, 1e6, -1.0)
        with pytest.raises(ConfigurationError):
            Link(sched, 1e6, 0.0, buffer_bytes=0)

    def test_requires_delivery_callback(self):
        sched = EventScheduler()
        link = Link(sched, 1e6, 0.0)
        with pytest.raises(ConfigurationError):
            link.transmit(FakePacket())

    def test_delivery_time_serialization_plus_propagation(self):
        # 1000 bytes at 8 Mbps = 1 ms serialization; +10 ms propagation
        sched, link, delivered = self.make_link()
        link.transmit(FakePacket(1000))
        sched.run()
        assert delivered[0][0] == pytest.approx(0.011)

    def test_back_to_back_packets_queue(self):
        sched, link, delivered = self.make_link()
        link.transmit(FakePacket(1000))
        link.transmit(FakePacket(1000))
        sched.run()
        times = [t for t, _ in delivered]
        assert times[0] == pytest.approx(0.011)
        assert times[1] == pytest.approx(0.012)  # waits for serialization

    def test_backlog_tracks_queued_bytes(self):
        sched, link, _ = self.make_link()
        link.transmit(FakePacket(1000))
        link.transmit(FakePacket(1000))
        # at t=0 both packets are still unserialized
        assert link.backlog_bytes(0.0) == pytest.approx(2000)

    def test_backlog_priced_at_enqueue_rate_after_set_rate(self):
        """Regression: a mid-flight set_rate degradation must not reprice
        already-queued bytes with the new conversion factor.

        Historically the backlog was derived as ``(busy_until - t) * rate
        / 8`` using the *current* rate, so degrading 8 Mbps -> 0.8 Mbps
        with 2000 queued bytes made the backlog report 200 bytes."""
        sched, link, _ = self.make_link(delay=0.0)
        link.transmit(FakePacket(1000))
        link.transmit(FakePacket(1000))
        assert link.backlog_bytes(0.0) == pytest.approx(2000)
        link.set_rate(8e5)  # 10x degradation while both packets queue
        assert link.backlog_bytes(0.0) == pytest.approx(2000)
        # the head keeps serializing at its own enqueue-time rate
        assert link.backlog_bytes(0.0005) == pytest.approx(1500)
        # after the head's finish time only the second packet remains
        assert link.backlog_bytes(0.0015) == pytest.approx(500)

    def test_backlog_rate_change_affects_later_packets_only(self):
        sched, link, _ = self.make_link(delay=0.0)
        link.transmit(FakePacket(1000))            # 8 Mbps: finishes at 1 ms
        link.set_rate(4e6)
        link.transmit(FakePacket(1000))            # 4 Mbps: 1 ms .. 3 ms
        # t = 2 ms: first packet gone, second half-serialized at 4 Mbps
        assert link.backlog_bytes(0.002) == pytest.approx(500)
        # the drop-tail admission check uses the same pricing
        sched.run_until(0.002)
        assert link.transmit(FakePacket(1000)) is True

    def test_drop_tail_when_buffer_full(self):
        sched, link, delivered = self.make_link(buffer_bytes=2500)
        accepted = [link.transmit(FakePacket(1000)) for _ in range(4)]
        assert accepted == [True, True, False, False]
        assert link.stats.packets_dropped_queue == 2
        sched.run()
        assert len(delivered) == 2

    def test_queue_drains_over_time(self):
        sched, link, delivered = self.make_link(buffer_bytes=2500)
        link.transmit(FakePacket(1000))
        link.transmit(FakePacket(1000))
        sched.run_until(0.0015)  # first packet half served
        assert link.transmit(FakePacket(1000)) is True
        sched.run()
        assert len(delivered) == 3

    def test_loss_model_drops_after_consuming_capacity(self):
        sched, link, delivered = self.make_link()
        link.loss_model = DeterministicLoss({0})
        link.transmit(FakePacket(1000))
        link.transmit(FakePacket(1000))
        sched.run()
        assert len(delivered) == 1
        assert link.stats.packets_lost == 1
        # the survivor was still delayed behind the lost packet
        assert delivered[0][0] == pytest.approx(0.012)

    def test_tap_sees_all_transmitted_packets(self):
        sched, link, _ = self.make_link()
        link.loss_model = DeterministicLoss({1})
        tapped = []
        link.add_tap(lambda t, p: tapped.append(p))
        link.transmit(FakePacket(1000))
        link.transmit(FakePacket(1000))
        sched.run()
        assert len(tapped) == 2  # a sender-side capture sees lost packets too

    def test_stats_bytes_delivered(self):
        sched, link, _ = self.make_link()
        link.transmit(FakePacket(700))
        sched.run()
        assert link.stats.bytes_delivered == 700
        assert link.stats.packets_delivered == 1


class TestPath:
    def test_directions_are_independent(self):
        sched = EventScheduler()
        path = Path(sched, rate_ab_bps=8e6, rate_ba_bps=1e6, prop_delay=0.005)
        assert path.forward.rate_bps == 8e6
        assert path.reverse.rate_bps == 1e6

    def test_rtt_floor(self):
        sched = EventScheduler()
        path = Path(sched, rate_ab_bps=1e6, rate_ba_bps=1e6, prop_delay=0.01)
        assert path.rtt_floor == pytest.approx(0.02)

    def test_link_from_validates_endpoint(self):
        sched = EventScheduler()
        path = Path(sched, rate_ab_bps=1e6, rate_ba_bps=1e6, prop_delay=0.01)
        assert path.link_from("a") is path.forward
        assert path.link_from("b") is path.reverse
        with pytest.raises(ValueError):
            path.link_from("c")


class TestNetwork:
    def test_duplicate_host_rejected(self):
        net = Network()
        net.add_host("10.0.0.1")
        with pytest.raises(ConfigurationError):
            net.add_host("10.0.0.1")

    def test_unknown_host_lookup(self):
        with pytest.raises(AddressError):
            Network().host("1.2.3.4")

    def test_route_between_hosts(self):
        net = Network()
        a = net.add_host("10.0.0.1")
        b = net.add_host("192.0.2.1")
        path = Path(net.scheduler, rate_ab_bps=8e6, rate_ba_bps=8e6, prop_delay=0.001)
        net.add_path(a, b, path)
        received = []
        b.listen(80, lambda seg: received.append(seg))
        pkt = FakePacket(dst_ip="192.0.2.1")
        a.send_segment(pkt)
        net.run()
        assert received == [pkt]

    def test_route_without_path_raises(self):
        net = Network()
        a = net.add_host("10.0.0.1")
        net.add_host("192.0.2.1")
        with pytest.raises(AddressError):
            net.route(a, FakePacket(dst_ip="192.0.2.1"))

    def test_stray_segment_silently_dropped(self):
        net = Network()
        a = net.add_host("10.0.0.1")
        b = net.add_host("192.0.2.1")
        net.add_path(a, b, Path(net.scheduler, rate_ab_bps=1e6, rate_ba_bps=1e6, prop_delay=0.0))
        a.send_segment(FakePacket(dst_ip="192.0.2.1"))  # nobody listening
        net.run()  # must not raise

    def test_ephemeral_ports_are_unique(self):
        net = Network()
        a = net.add_host("10.0.0.1")
        ports = {a.allocate_port() for _ in range(100)}
        assert len(ports) == 100
        assert min(ports) >= 49152
