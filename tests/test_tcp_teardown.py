"""Additional TCP state-machine coverage: teardown variants, listeners."""

import pytest

from repro.simnet import NetworkProfile, build_client_server
from repro.tcp import (
    CLOSE_WAIT,
    CLOSED,
    ESTABLISHED,
    FIN_WAIT_2,
    TIME_WAIT,
    TcpConfig,
    TcpConnection,
    TcpListener,
)

CLEAN = NetworkProfile(
    name="Clean", down_bps=10e6, up_bps=10e6, rtt=0.02, loss_down=0.0,
    buffer_bytes=512 * 1024,
)


def make_pair(seed=1):
    net, client_host, server_host, path = build_client_server(CLEAN, seed=seed)
    state = {}

    def on_accept(conn):
        state["server"] = conn

    listener = TcpListener(server_host, net.scheduler, 80, on_accept)
    client = TcpConnection(client_host, net.scheduler,
                           client_host.allocate_port(), server_host.ip, 80)
    return net, client, state, listener, client_host, server_host


class TestTeardownVariants:
    def test_client_initiated_close(self):
        net, client, state, _, _, _ = make_pair()
        client.on_connected = lambda c: c.close()
        client.connect()
        net.run_until(5.0)
        server = state["server"]
        assert server.state == CLOSE_WAIT
        assert client.state == FIN_WAIT_2
        server.close()
        net.run_until(10.0)
        assert client.state == CLOSED
        assert server.state == CLOSED

    def test_simultaneous_close(self):
        net, client, state, _, _, _ = make_pair()
        client.connect()
        net.run_until(1.0)
        server = state["server"]
        assert client.state == ESTABLISHED
        # both sides close in the same instant: FINs cross in flight
        client.close()
        server.close()
        net.run_until(10.0)
        assert client.state == CLOSED
        assert server.state == CLOSED

    def test_time_wait_expires(self):
        net, client, state, _, _, _ = make_pair()
        client.connect()
        net.run_until(1.0)
        server = state["server"]
        client.close()
        net.run_until(1.5)
        server.close()
        # client entered TIME_WAIT; after config.time_wait it fully closes
        net.run_until(1.6)
        assert client.state in (TIME_WAIT, CLOSED)
        net.run_until(10.0)
        assert client.state == CLOSED

    def test_close_is_idempotent(self):
        net, client, state, _, _, _ = make_pair()
        client.connect()
        net.run_until(1.0)
        client.close()
        client.close()
        net.run_until(5.0)
        assert client.state in (FIN_WAIT_2, CLOSED)

    def test_ports_released_after_teardown(self):
        net, client, state, _, client_host, server_host = make_pair()
        client.on_connected = lambda c: c.close()
        client.connect()
        net.run_until(2.0)
        state["server"].close()
        net.run_until(10.0)
        # the 4-tuple can be reused once both sides are CLOSED
        fresh = TcpConnection(client_host, net.scheduler, client.local_port,
                              server_host.ip, 80)
        fresh.connect()
        net.run_until(12.0)
        assert fresh.state == ESTABLISHED


class TestListener:
    def test_accepts_multiple_connections(self):
        net, client, state, listener, client_host, server_host = make_pair()
        accepted = []
        listener.on_accept = lambda conn: accepted.append(conn)
        clients = []
        for _ in range(5):
            c = TcpConnection(client_host, net.scheduler,
                              client_host.allocate_port(), server_host.ip, 80)
            c.connect()
            clients.append(c)
        net.run_until(2.0)
        assert len(accepted) == 5
        assert all(c.state == ESTABLISHED for c in clients)
        assert listener.accepted == 5

    def test_closed_listener_ignores_syns(self):
        net, client, state, listener, client_host, server_host = make_pair()
        listener.close()
        client.connect()
        net.run_until(3.0)
        assert client.state != ESTABLISHED

    def test_custom_iss(self):
        net, _client, state, _, client_host, server_host = make_pair()
        client = TcpConnection(client_host, net.scheduler,
                               client_host.allocate_port(), server_host.ip,
                               80, config=TcpConfig(iss=1_000_000))
        client.connect()
        net.run_until(1.0)
        assert client.state == ESTABLISHED
        assert client.iss == 1_000_000
