"""Integration tests for the TCP connection state machine on the simulator."""

import pytest

from repro.simnet import (
    DeterministicLoss,
    Network,
    NetworkProfile,
    build_client_server,
)
from repro.tcp import (
    CLOSE_WAIT,
    CLOSED,
    ESTABLISHED,
    FIN_WAIT_2,
    TcpConfig,
    TcpConnection,
    TcpListener,
)
from tests.conftest import run_bulk_transfer

CLEAN = NetworkProfile(
    name="Clean", down_bps=10e6, up_bps=10e6, rtt=0.02, loss_down=0.0,
    buffer_bytes=512 * 1024,
)
LOSSY = NetworkProfile(
    name="Lossy", down_bps=10e6, up_bps=10e6, rtt=0.02, loss_down=0.01,
    buffer_bytes=512 * 1024,
)


def make_pair(profile=CLEAN, seed=1, client_config=None, server_config=None,
              server_bytes=0, server_header=b"", auto_respond=True):
    """Wire a client and an accepting server; return the moving parts."""
    net, client_host, server_host, path = build_client_server(profile, seed=seed)
    state = {}

    def on_accept(conn):
        state["server"] = conn
        if auto_respond:
            def on_data(c):
                if c.recv(4096):
                    if server_header:
                        c.send(server_header)
                    if server_bytes:
                        c.send_virtual(server_bytes - len(server_header))
                    c.close()
            conn.on_data = on_data

    listener = TcpListener(server_host, net.scheduler, 80, on_accept,
                           config=server_config)
    client = TcpConnection(
        client_host, net.scheduler, client_host.allocate_port(),
        server_host.ip, 80, config=client_config,
    )
    return net, client, state, path, listener


class TestHandshake:
    def test_three_way_handshake_establishes_both_ends(self):
        net, client, state, _, _ = make_pair()
        connected = []
        client.on_connected = lambda c: connected.append("client")
        client.connect()
        net.run_until(1.0)
        assert client.state == ESTABLISHED
        assert state["server"].state == ESTABLISHED
        assert connected == ["client"]

    def test_handshake_takes_about_one_rtt(self):
        net, client, state, _, _ = make_pair()
        when = {}
        client.on_connected = lambda c: when.setdefault("t", net.now())
        client.connect()
        net.run_until(1.0)
        assert when["t"] == pytest.approx(CLEAN.rtt, rel=0.3)

    def test_syn_loss_is_retransmitted(self):
        net, client, state, path, _ = make_pair()
        path.reverse.loss_model = DeterministicLoss({0})  # client->server SYN
        client.connect()
        net.run_until(5.0)
        assert client.state == ESTABLISHED

    def test_synack_loss_is_recovered(self):
        net, client, state, path, _ = make_pair()
        path.forward.loss_model = DeterministicLoss({0})  # server->client SYN-ACK
        client.connect()
        net.run_until(5.0)
        assert client.state == ESTABLISHED

    def test_handshake_samples_rtt(self):
        net, client, state, _, _ = make_pair()
        client.connect()
        net.run_until(1.0)
        assert client.rtt.has_sample
        assert client.rtt.srtt == pytest.approx(CLEAN.rtt, rel=0.5)


class TestDataTransfer:
    def test_small_real_payload_integrity(self):
        payload = bytes(range(256)) * 40  # 10240 bytes
        result = run_bulk_transfer(CLEAN, len(payload), header=payload,
                                   keep_bytes=True)
        assert result.received == len(payload)
        assert b"".join(result.chunks) == payload

    def test_large_virtual_transfer_completes(self):
        result = run_bulk_transfer(CLEAN, 2_000_000)
        assert result.received == 2_000_000

    def test_payload_integrity_under_loss(self):
        payload = bytes(range(256)) * 400  # 102400 bytes, real content
        result = run_bulk_transfer(LOSSY, len(payload), header=payload,
                                   keep_bytes=True, seed=3)
        assert b"".join(result.chunks) == payload

    def test_transfer_completes_across_seeds_under_loss(self):
        for seed in range(5):
            result = run_bulk_transfer(LOSSY, 1_000_000, seed=seed)
            assert result.received == 1_000_000, f"seed {seed}"

    def test_throughput_bounded_by_link_rate(self):
        result = run_bulk_transfer(CLEAN, 2_000_000)
        rate = result.received * 8 / result.finished_at
        assert rate <= CLEAN.down_bps * 1.01

    def test_retransmission_rate_tracks_loss_rate(self):
        result = run_bulk_transfer(LOSSY, 2_000_000, seed=2)
        server = result.server
        assert server is not None
        # 1% loss should produce roughly 1% retransmitted bytes, not 5x that
        assert 0.0 < server.stats.retransmission_rate < 0.05

    def test_no_retransmissions_on_clean_path(self):
        result = run_bulk_transfer(CLEAN, 2_000_000)
        assert result.server.stats.retransmitted_segments == 0

    def test_mss_respected(self):
        net, client, state, path, _ = make_pair(server_bytes=100_000)
        sizes = []
        path.forward.add_tap(lambda t, seg: sizes.append(seg.payload_len))
        client.on_connected = lambda c: c.send(b"GET\r\n")
        client.on_data = lambda c: c.recv_discard(1 << 20)
        client.connect()
        net.run_until(10.0)
        assert max(sizes) <= client.config.mss


class TestFlowControl:
    def test_unread_data_stalls_sender(self):
        """A client that never reads must stall the server at ~rcv_buffer."""
        config = TcpConfig(recv_buffer=64 * 1024)
        net, client, state, _, _ = make_pair(
            client_config=config, server_bytes=1_000_000)
        client.on_connected = lambda c: c.send(b"GET\r\n")
        client.on_data = None  # never reads
        client.connect()
        net.run_until(10.0)
        server = state["server"]
        # sender stopped near the receive buffer size, not the full megabyte
        assert server.snd_nxt_off <= 64 * 1024 + server.config.mss
        # window effectively closed (below one MSS: sender SWS-avoids runts)
        assert client.recvbuf.window < client.config.mss

    def test_reading_reopens_window(self):
        config = TcpConfig(recv_buffer=64 * 1024)
        net, client, state, _, _ = make_pair(
            client_config=config, server_bytes=500_000)
        got = {"n": 0}
        client.on_connected = lambda c: c.send(b"GET\r\n")
        client.connect()
        net.run_until(10.0)  # buffer full, window effectively closed
        assert client.recvbuf.window < client.config.mss

        def drain():
            got["n"] += client.recv_discard(1 << 20)
            if got["n"] + client.recvbuf.unread < 500_000 or client.available:
                net.scheduler.after(0.05, drain)

        net.scheduler.after(0.0, drain)
        net.run_until(60.0)
        assert got["n"] == 500_000

    def test_window_probe_fires_while_closed(self):
        config = TcpConfig(recv_buffer=32 * 1024)
        net, client, state, _, _ = make_pair(
            client_config=config, server_bytes=1_000_000)
        client.on_connected = lambda c: c.send(b"GET\r\n")
        client.connect()
        net.run_until(30.0)  # long zero-window period
        assert state["server"].stats.window_probes > 0

    def test_stall_and_resume_delivers_everything(self):
        """Pull-based reading (the HTML5/IE pattern) must not deadlock."""
        config = TcpConfig(recv_buffer=128 * 1024)
        net, client, state, _, _ = make_pair(
            client_config=config, server_bytes=600_000)
        got = {"n": 0}
        client.on_connected = lambda c: c.send(b"GET\r\n")
        client.connect()

        def pull():
            got["n"] += client.recv_discard(96 * 1024)
            if got["n"] < 600_000:
                net.scheduler.after(1.0, pull)

        net.scheduler.after(1.0, pull)
        net.run_until(60.0)
        assert got["n"] == 600_000


class TestTeardown:
    def test_server_close_reaches_client(self):
        net, client, state, _, _ = make_pair(server_bytes=10_000)
        fin_seen = []
        client.on_connected = lambda c: c.send(b"GET\r\n")
        client.on_data = lambda c: c.recv_discard(1 << 20)
        client.on_peer_fin = lambda c: fin_seen.append(net.now())
        client.connect()
        net.run_until(10.0)
        assert fin_seen
        assert client.state == CLOSE_WAIT
        assert state["server"].state == FIN_WAIT_2

    def test_full_close_both_ways(self):
        net, client, state, _, _ = make_pair(server_bytes=10_000)
        client.on_connected = lambda c: c.send(b"GET\r\n")
        client.on_data = lambda c: c.recv_discard(1 << 20)
        client.on_peer_fin = lambda c: c.close()
        client.connect()
        net.run_until(20.0)
        assert client.state == CLOSED
        assert state["server"].state == CLOSED

    def test_fin_not_sent_before_data_drains(self):
        """close() queues the FIN behind all pending data."""
        result = run_bulk_transfer(CLEAN, 500_000)
        # server closed right after send_virtual; everything must arrive
        assert result.received == 500_000

    def test_abort_sends_rst(self):
        net, client, state, _, _ = make_pair(server_bytes=1_000_000)
        closed = []
        client.on_connected = lambda c: c.send(b"GET\r\n")
        client.on_data = lambda c: c.recv_discard(1 << 20)
        client.connect()
        net.run_until(0.5)
        server = state["server"]
        server.on_closed = lambda c, reason: closed.append(reason)
        client.abort()
        net.run_until(2.0)
        assert client.state == CLOSED
        assert server.state == CLOSED
        assert closed == ["reset-by-peer"]


class TestIdleRestart:
    def _burst_after_idle(self, reset: bool) -> int:
        """Send, go idle 10 s, send again; return the post-idle cwnd."""
        config = TcpConfig(reset_cwnd_after_idle=reset)
        net, client, state, path, _ = make_pair(
            server_config=config, auto_respond=False)
        client.on_connected = lambda c: c.send(b"GET\r\n")
        client.on_data = lambda c: c.recv_discard(1 << 20)
        client.connect()
        net.run_until(0.5)
        server = state["server"]
        server.send_virtual(200_000)  # grow cwnd
        net.run_until(10.0)           # ... then idle
        server.send_virtual(10_000)
        net.run_until(10.001)
        return server.cc.cwnd

    def test_no_reset_keeps_cwnd_after_idle(self):
        cwnd = self._burst_after_idle(reset=False)
        assert cwnd > 10 * 1460  # still inflated: the paper's observation

    def test_rfc5681_reset_shrinks_cwnd_after_idle(self):
        cwnd = self._burst_after_idle(reset=True)
        assert cwnd == 3 * 1460


class TestStats:
    def test_byte_accounting_consistent(self):
        result = run_bulk_transfer(CLEAN, 300_000)
        server = result.server
        assert server.stats.bytes_sent == 300_000
        assert result.client.bytes_delivered == 300_000

    def test_segments_counted(self):
        result = run_bulk_transfer(CLEAN, 100_000)
        assert result.server.stats.segments_sent >= 100_000 // 1460
