"""Unit tests for the analysis pipeline pieces (synthetic inputs)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    Cdf,
    classify_onoff,
    correlation,
    detect_onoff,
    dominant_value,
    fraction_within,
    mean,
    median,
    split_phases,
    split_phases_rate_knee,
    variance,
)
from repro.streaming import StreamingStrategy

KB = 1024
MB = 1024 * 1024


def burst(t0, nbytes, rate_bps=40e6, mtu=1460):
    """Synthesize arrival events for one back-to-back block."""
    events = []
    t = t0
    remaining = nbytes
    while remaining > 0:
        take = min(mtu, remaining)
        events.append((t, take))
        t += take * 8 / rate_bps
        remaining -= take
    return events


def onoff_trace(block, period, count, t0=0.0, buffering=5 * MB, rate_bps=40e6):
    """Buffering burst followed by `count` paced blocks."""
    events = burst(t0, buffering, rate_bps)
    buffering_time = buffering * 8 / rate_bps
    t = t0 + buffering_time + period
    for _ in range(count):
        events.extend(burst(t, block, rate_bps))
        t += period
    return events


class TestDetectOnOff:
    def test_empty_events(self):
        profile = detect_onoff([])
        assert profile.on_periods == []
        assert not profile.has_off_periods

    def test_single_burst_no_off(self):
        profile = detect_onoff(burst(0.0, 1 * MB))
        assert len(profile.on_periods) == 1
        assert not profile.has_off_periods

    def test_short_cycles_detected(self):
        events = onoff_trace(64 * KB, 0.5, count=10)
        profile = detect_onoff(events)
        assert len(profile.on_periods) == 11  # buffering + 10 blocks
        assert len(profile.off_periods) == 10
        blocks = profile.block_sizes()
        assert all(b == 64 * KB for b in blocks)

    def test_gap_below_threshold_merges(self):
        events = burst(0.0, 64 * KB) + burst(0.1, 64 * KB)
        profile = detect_onoff(events, gap_threshold=0.15)
        assert len(profile.on_periods) == 1
        assert profile.on_periods[0].bytes == 128 * KB

    def test_noise_bursts_absorbed_into_off(self):
        """1-byte window probes must not split an OFF period."""
        events = burst(0.0, 5 * MB)
        events.append((3.0, 1))    # probe
        events.append((4.5, 1))    # probe
        events.extend(burst(6.0, 5 * MB))
        profile = detect_onoff(events)
        assert len(profile.on_periods) == 2
        assert len(profile.off_periods) == 1
        # 5 MB at 40 Mbps ends at ~1.05 s; the OFF spans from there to 6 s
        assert profile.off_periods[0].duration == pytest.approx(4.95, abs=0.1)

    def test_retransmission_bridges_gap(self):
        """Activity with zero new bytes still merges two cycles."""
        events = burst(0.0, 64 * KB)
        events.append((0.3, 0))  # retransmission in the gap
        events.extend(burst(0.6, 64 * KB))
        profile = detect_onoff(events, gap_threshold=0.4)
        assert len(profile.on_periods) == 1
        assert profile.on_periods[0].bytes == 128 * KB

    def test_block_sizes_skip_first_by_default(self):
        events = onoff_trace(64 * KB, 0.5, count=3, buffering=5 * MB)
        profile = detect_onoff(events)
        assert len(profile.block_sizes()) == 3
        assert len(profile.block_sizes(skip_first=False)) == 4

    def test_off_durations(self):
        events = onoff_trace(64 * KB, 0.5, count=4)
        profile = detect_onoff(events)
        for duration in profile.off_durations():
            assert 0.3 < duration <= 0.51

    def test_trailing_idle_within_stream(self):
        events = burst(0.0, 1 * MB)
        profile = detect_onoff(events, stream_end=10.0)
        assert profile.has_off_periods
        assert profile.off_periods[-1].end == 10.0

    def test_mean_cycle_duration(self):
        events = onoff_trace(64 * KB, 0.5, count=10)
        profile = detect_onoff(events)
        assert profile.mean_cycle_duration() == pytest.approx(0.5, rel=0.1)


class TestSplitPhases:
    def test_no_off_means_no_steady_state(self):
        profile = detect_onoff(burst(0.0, 10 * MB))
        phases = split_phases(profile)
        assert not phases.has_steady_state
        assert phases.buffering_bytes == 10 * MB
        assert phases.steady_rate_bps == 0.0

    def test_buffering_ends_at_first_off(self):
        events = onoff_trace(64 * KB, 0.5, count=20, buffering=5 * MB)
        profile = detect_onoff(events)
        phases = split_phases(profile, stream_end=events[-1][0])
        assert phases.has_steady_state
        assert phases.buffering_bytes == 5 * MB
        assert phases.steady_bytes == 20 * 64 * KB

    def test_steady_rate_and_accumulation(self):
        # 64 kB every 0.5 s = 1.048 Mbps steady rate
        events = onoff_trace(64 * KB, 0.5, count=40, buffering=5 * MB)
        profile = detect_onoff(events)
        phases = split_phases(profile, stream_end=events[-1][0])
        assert phases.steady_rate_bps == pytest.approx(64 * KB * 8 / 0.5, rel=0.1)
        k = phases.accumulation_ratio(64 * KB * 8 / 0.5 / 1.25)
        assert k == pytest.approx(1.25, rel=0.1)

    def test_accumulation_none_without_steady_state(self):
        profile = detect_onoff(burst(0.0, 1 * MB))
        phases = split_phases(profile)
        assert phases.accumulation_ratio(1e6) is None

    def test_buffering_playback_seconds(self):
        events = onoff_trace(64 * KB, 0.5, count=5, buffering=5 * MB)
        profile = detect_onoff(events)
        phases = split_phases(profile, stream_end=events[-1][0])
        assert phases.buffering_playback_seconds(1e6) == pytest.approx(
            5 * MB * 8 / 1e6)

    def test_rate_knee_detector_finds_slowdown(self):
        events = onoff_trace(64 * KB, 1.0, count=30, buffering=20 * MB)
        knee = split_phases_rate_knee(events)
        assert knee is not None
        # buffering at 40 Mbps takes ~4.2 s; the knee should be close
        assert 2.0 < knee < 10.0

    def test_rate_knee_none_for_constant_rate(self):
        events = burst(0.0, 40 * MB)  # constant full-rate transfer
        assert split_phases_rate_knee(events) is None


class TestClassify:
    def test_bulk_is_no_onoff(self):
        profile = detect_onoff(burst(0.0, 30 * MB))
        assert classify_onoff(profile).strategy is StreamingStrategy.NO_ONOFF

    def test_small_blocks_are_short(self):
        events = onoff_trace(64 * KB, 0.5, count=10)
        got = classify_onoff(detect_onoff(events))
        assert got.strategy is StreamingStrategy.SHORT_ONOFF
        assert got.long_byte_share == 0.0

    def test_large_blocks_are_long(self):
        events = onoff_trace(5 * MB, 20.0, count=5)
        got = classify_onoff(detect_onoff(events))
        assert got.strategy is StreamingStrategy.LONG_ONOFF
        assert got.long_byte_share == 1.0

    def test_boundary_at_2_5_mb(self):
        just_below = onoff_trace(int(2.4 * MB), 10.0, count=5)
        just_above = onoff_trace(int(2.6 * MB), 10.0, count=5)
        assert (classify_onoff(detect_onoff(just_below)).strategy
                is StreamingStrategy.SHORT_ONOFF)
        assert (classify_onoff(detect_onoff(just_above)).strategy
                is StreamingStrategy.LONG_ONOFF)

    def test_mixed_blocks_are_multiple(self):
        # steady state: 3 long blocks (12 MB) + 5 short (10 MB): both
        # regimes carry a substantial byte share
        events = burst(0.0, 5 * MB)
        t = 10.0
        for i in range(8):
            size = 4 * MB if i < 3 else 2 * MB
            events.extend(burst(t, size))
            t += 10.0
        got = classify_onoff(detect_onoff(events))
        assert 0.2 < got.long_byte_share < 0.8
        assert got.strategy is StreamingStrategy.MIXED


class TestStats:
    def test_cdf_basics(self):
        cdf = Cdf.from_samples([1, 2, 3, 4])
        assert cdf.at(0) == 0.0
        assert cdf.at(2) == 0.5
        assert cdf.at(10) == 1.0
        assert cdf.median == 2
        assert cdf.quantile(1.0) == 4

    def test_cdf_rejects_empty(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([])

    def test_cdf_quantile_validation(self):
        cdf = Cdf.from_samples([1])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)

    def test_mean_median_variance(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert mean(samples) == 2.5
        assert median(samples) == 2.5
        assert median([1.0, 2.0, 9.0]) == 2.0
        assert variance(samples) == pytest.approx(1.25)

    def test_correlation_perfect(self):
        xs = [1.0, 2.0, 3.0]
        assert correlation(xs, [2.0, 4.0, 6.0]) == pytest.approx(1.0)
        assert correlation(xs, [6.0, 4.0, 2.0]) == pytest.approx(-1.0)

    def test_correlation_zero_variance(self):
        assert correlation([1.0, 2.0], [5.0, 5.0]) == 0.0

    def test_correlation_validation(self):
        with pytest.raises(ValueError):
            correlation([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            correlation([1.0], [2.0])

    def test_dominant_value_finds_mode(self):
        samples = [63.9, 64.0, 64.1, 64.2, 128.0, 10.0]
        assert dominant_value(samples, bin_width=8.0) == pytest.approx(68.0)

    def test_fraction_within(self):
        assert fraction_within([1, 2, 3, 4], 2, 3) == 0.5

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=100))
    def test_cdf_is_monotone_and_complete(self, samples):
        cdf = Cdf.from_samples(samples)
        assert cdf.fractions[-1] == pytest.approx(1.0)
        assert all(a <= b for a, b in zip(cdf.values, cdf.values[1:]))
        assert all(a <= b for a, b in zip(cdf.fractions, cdf.fractions[1:]))

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2,
                    max_size=50), st.floats(min_value=0.01, max_value=1.0))
    def test_quantile_consistent_with_at(self, samples, q):
        cdf = Cdf.from_samples(samples)
        value = cdf.quantile(q)
        assert cdf.at(value) >= q
