"""Cross-player invariants: accounting laws every player must obey."""

import pytest

from repro.analysis import analyze_session
from repro.simnet import NetworkProfile
from repro.streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    run_session,
)
from repro.workloads import MBPS, NETFLIX_LADDER_BPS, Video

FAST = NetworkProfile(
    name="Fast", down_bps=40e6, up_bps=40e6, rtt=0.02, loss_down=0.0,
    buffer_bytes=1024 * 1024,
)

CASES = [
    ("flash", Service.YOUTUBE, Application.FIREFOX, Container.FLASH, "flv"),
    ("ie", Service.YOUTUBE, Application.INTERNET_EXPLORER, Container.HTML5,
     "webm"),
    ("chrome", Service.YOUTUBE, Application.CHROME, Container.HTML5, "webm"),
    ("android", Service.YOUTUBE, Application.ANDROID, Container.HTML5,
     "webm"),
    ("ipad", Service.YOUTUBE, Application.IOS, Container.HTML5, "webm"),
    ("netflix", Service.NETFLIX, Application.FIREFOX, None, "silverlight"),
]


def build_video(container):
    if container == "silverlight":
        ladder = tuple(zip(("a", "b", "c", "d", "e"), NETFLIX_LADDER_BPS))
        return Video(video_id="inv", duration=2400.0,
                     encoding_rate_bps=NETFLIX_LADDER_BPS[-1],
                     resolution="1080p", container="silverlight",
                     variants=ladder)
    return Video(video_id="inv", duration=300.0,
                 encoding_rate_bps=1.8 * MBPS, resolution="360p",
                 container=container)


@pytest.fixture(scope="module")
def session_results():
    out = {}
    for name, service, application, container, codec in CASES:
        config = SessionConfig(
            profile=FAST, service=service, application=application,
            container=container, capture_duration=75.0, seed=9,
            probe_period=1.0,
        )
        out[name] = run_session(build_video(codec), config)
    return out


@pytest.mark.parametrize("name", [c[0] for c in CASES])
class TestInvariants:
    def test_progress_made(self, session_results, name):
        result = session_results[name]
        assert result.downloaded > 0
        assert result.records

    def test_buffer_never_negative(self, session_results, name):
        series = session_results[name].buffer_series
        assert series is not None
        assert min(series.values) >= 0.0

    def test_playback_within_video(self, session_results, name):
        result = session_results[name]
        assert 0.0 <= result.playback_position_s <= result.video.duration

    def test_unique_bytes_bounded_by_downloads(self, session_results, name):
        """The trace's unique downstream bytes account for at least what
        the player consumed (body) and at most the payload on the wire."""
        result = session_results[name]
        analysis = analyze_session(result, use_true_rate=True)
        trace = analysis.trace
        assert trace.total_bytes >= result.downloaded * 0.99
        assert trace.total_payload_bytes >= trace.total_bytes

    def test_capture_time_bounds(self, session_results, name):
        result = session_results[name]
        times = [r.timestamp for r in result.records]
        assert times == sorted(times)
        assert times[-1] <= result.config.capture_duration + 1e-6
