"""Tests for the receive buffer: reassembly, windows, right-edge rule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp import ReceiveBuffer


class TestInOrderDelivery:
    def test_sequential_segments(self):
        buf = ReceiveBuffer(1000)
        assert buf.offer(0, 100, b"a" * 100) == 100
        assert buf.offer(100, 100, b"b" * 100) == 100
        assert buf.rcv_nxt == 200
        assert buf.unread == 200

    def test_read_returns_bytes_in_order(self):
        buf = ReceiveBuffer(1000)
        buf.offer(0, 3, b"abc")
        buf.offer(3, 3, b"def")
        assert buf.read(4) == b"abcd"
        assert buf.read(10) == b"ef"

    def test_virtual_payload_reads_as_zeros(self):
        buf = ReceiveBuffer(1000)
        buf.offer(0, 5, None)
        assert buf.read(5) == b"\x00" * 5

    def test_read_discard_counts_without_materializing(self):
        buf = ReceiveBuffer(1000)
        buf.offer(0, 500, None)
        assert buf.read_discard(200) == 200
        assert buf.unread == 300

    def test_zero_length_offer(self):
        buf = ReceiveBuffer(1000)
        assert buf.offer(0, 0, b"") == 0

    def test_duplicate_segment_ignored(self):
        buf = ReceiveBuffer(1000)
        buf.offer(0, 100, None)
        assert buf.offer(0, 100, None) == 0
        assert buf.rcv_nxt == 100

    def test_partial_overlap_trims_stale_prefix(self):
        buf = ReceiveBuffer(1000)
        buf.offer(0, 100, b"x" * 100)
        delivered = buf.offer(50, 100, b"y" * 100)
        assert delivered == 50
        assert buf.rcv_nxt == 150
        assert buf.read(150) == b"x" * 100 + b"y" * 50


class TestOutOfOrder:
    def test_gap_holds_data(self):
        buf = ReceiveBuffer(1000)
        assert buf.offer(100, 100, None) == 0
        assert buf.has_gap
        assert buf.ooo_bytes == 100
        assert buf.rcv_nxt == 0

    def test_gap_fill_drains_held_data(self):
        buf = ReceiveBuffer(1000)
        buf.offer(100, 100, b"B" * 100)
        delivered = buf.offer(0, 100, b"A" * 100)
        assert delivered == 200
        assert not buf.has_gap
        assert buf.read(200) == b"A" * 100 + b"B" * 100

    def test_multiple_holes_drain_progressively(self):
        buf = ReceiveBuffer(10000)
        buf.offer(200, 100, None)
        buf.offer(400, 100, None)
        assert buf.offer(0, 200, None) == 300  # drains first held block
        assert buf.rcv_nxt == 300
        assert buf.offer(300, 100, None) == 200
        assert buf.rcv_nxt == 500

    def test_duplicate_ooo_not_double_counted(self):
        buf = ReceiveBuffer(1000)
        buf.offer(100, 100, None)
        buf.offer(100, 100, None)
        assert buf.ooo_bytes == 100

    def test_ooo_overlapping_delivery_point_trimmed_on_drain(self):
        buf = ReceiveBuffer(1000)
        buf.offer(50, 100, b"B" * 100)   # held
        buf.offer(0, 100, b"A" * 100)    # fills through 100; held chunk
        # overlaps [50,150): only [100,150) is new
        assert buf.rcv_nxt == 150
        assert buf.read(150) == b"A" * 100 + b"B" * 50


class TestWindow:
    def test_initial_window_is_capacity(self):
        assert ReceiveBuffer(4096).window == 4096

    def test_unread_data_shrinks_window(self):
        buf = ReceiveBuffer(1000)
        buf.offer(0, 400, None)
        assert buf.window == 600

    def test_reading_restores_window(self):
        buf = ReceiveBuffer(1000)
        buf.offer(0, 400, None)
        buf.read_discard(400)
        assert buf.window == 1000

    def test_window_zero_when_full(self):
        buf = ReceiveBuffer(1000)
        buf.offer(0, 1000, None)
        assert buf.window == 0

    def test_right_edge_never_retreats(self):
        """RFC 793: out-of-order data must not revoke promised space."""
        buf = ReceiveBuffer(1000)
        # gap at [0, 100); peer was promised the full 1000 bytes
        for seq in range(100, 1000, 100):
            assert buf.offer(seq, 100, None) == 0
        # all promised bytes were held, none rejected
        assert buf.ooo_bytes == 900
        # the hole itself must still be acceptable
        assert buf.offer(0, 100, None) == 1000

    def test_offer_beyond_right_edge_rejected(self):
        buf = ReceiveBuffer(1000)
        assert buf.offer(1000, 100, None) == 0
        assert buf.ooo_bytes == 0

    def test_offer_straddling_right_edge_trimmed(self):
        buf = ReceiveBuffer(1000)
        delivered = buf.offer(0, 1200, None)
        assert delivered == 1000
        assert buf.rcv_nxt == 1000

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReceiveBuffer(0)


class TestTotals:
    def test_total_delivered_accumulates(self):
        buf = ReceiveBuffer(1000)
        buf.offer(0, 100, None)
        buf.read_discard(100)
        buf.offer(100, 200, None)
        assert buf.total_delivered == 300


# -- property-based reassembly test -------------------------------------------


@st.composite
def segment_plan(draw):
    """A shuffled segmentation of a contiguous byte stream."""
    total = draw(st.integers(min_value=1, max_value=400))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=max(1, total - 1)),
                max_size=8,
                unique=True,
            )
        )
    )
    cuts = [0] + [c for c in cuts if c < total] + [total]
    segments = [(cuts[i], cuts[i + 1] - cuts[i]) for i in range(len(cuts) - 1)]
    order = draw(st.permutations(segments))
    return total, list(order)


class TestReassemblyProperties:
    @settings(max_examples=200)
    @given(segment_plan())
    def test_any_arrival_order_reassembles_exactly(self, plan):
        total, segments = plan
        payload = bytes(range(256)) * (total // 256 + 1)
        buf = ReceiveBuffer(4096)
        for seq, length in segments:
            buf.offer(seq, length, payload[seq : seq + length])
            # re-offer duplicates to exercise dedup paths
            buf.offer(seq, length, payload[seq : seq + length])
        assert buf.rcv_nxt == total
        assert not buf.has_gap
        assert buf.read(total) == payload[:total]

    @settings(max_examples=100)
    @given(segment_plan())
    def test_conservation_no_bytes_invented(self, plan):
        total, segments = plan
        buf = ReceiveBuffer(4096)
        delivered = 0
        for seq, length in segments:
            delivered += buf.offer(seq, length, None)
        assert delivered == total
        assert buf.unread == total
