"""End-to-end durability tests: chaos injection, kill + resume, degradation.

The property under test is the acceptance criterion for the durability
layer: a campaign killed at a random point and resumed with
``--resume`` produces byte-identical exports to an uninterrupted
``jobs=1`` run, re-simulating only the units the kill lost.  Kills are
real (``os._exit`` via the ``$REPRO_CHAOS`` hooks), so those runs
execute in a subprocess; the engine-level degradation tests run
in-process.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import CampaignCollector
from repro.runner import (
    CampaignAborted,
    CampaignJournal,
    FailedUnit,
    FailureReport,
    ResultCache,
    RetryBudget,
    RunStats,
    SupervisionPolicy,
    engine_options,
    list_journals,
    run_sessions,
)
from repro.simnet import RESEARCH
from repro.streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
)
from repro.workloads import MBPS, Video

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _video(n=0):
    return Video(video_id=f"v-dur-{n}", duration=300.0,
                 encoding_rate_bps=MBPS, resolution="360p", container="flv")


def _config(seed=3):
    return SessionConfig(profile=RESEARCH, service=Service.YOUTUBE,
                         application=Application.FIREFOX,
                         container=Container.FLASH,
                         capture_duration=45.0, seed=seed)


def _plans(n=3):
    return [(_video(i), _config(seed=i)) for i in range(n)]


def _mixed_plans(n_clean=2, n_poisoned=1, rate=0.5):
    """Plans with a known chaos fate: ``n_clean`` unselected at ``rate``
    followed by ``n_poisoned`` selected ones.

    Chaos selects units by hashing their cache key, which embeds the
    code version — so *which* seed is selected shifts with every source
    edit.  Evaluating the predicate here keeps the tests deterministic
    at any code version.
    """
    from repro.runner.fingerprint import plan_fingerprint
    from repro.runner.supervise import _chaos_selected

    clean, poisoned = [], []
    for i in range(256):
        plan = (_video(i), _config(seed=i))
        if _chaos_selected(plan_fingerprint(*plan), rate):
            poisoned.append(plan)
        else:
            clean.append(plan)
        if len(clean) >= n_clean and len(poisoned) >= n_poisoned:
            break
    return clean[:n_clean] + poisoned[:n_poisoned]


def _cli(args, tmp_path, chaos=None, chaos_dir=None):
    """Run the repro CLI in a subprocess with optional chaos injection."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.pop("REPRO_CACHE_DIR", None)
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_CHAOS_DIR", None)
    if chaos is not None:
        env["REPRO_CHAOS"] = chaos
        env["REPRO_CHAOS_DIR"] = str(chaos_dir or tmp_path / "chaos")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, cwd=str(tmp_path), capture_output=True, text=True,
        timeout=600)


EXPERIMENT = ["experiment", "fig2", "--scale", "small", "--seed", "1",
              "--jobs", "1"]


class TestKillAndResume:
    def test_killed_campaign_resumes_byte_identical(self, tmp_path):
        # reference: one uninterrupted jobs=1 run, no cache
        clean = _cli([*EXPERIMENT, "--flows", "clean.jsonl",
                      "--metrics", "clean-metrics.jsonl"], tmp_path)
        assert clean.returncode == 0, clean.stderr

        # the same campaign, killed after 1 completed unit
        killed = _cli([*EXPERIMENT, "--cache-dir", "cache"], tmp_path,
                      chaos="kill-after:1")
        assert killed.returncode == 130, killed.stderr

        # the journal recorded what the kill did not lose
        journals = list_journals(tmp_path / "cache")
        assert len(journals) == 1
        done_before_resume = journals[0]["done"]
        assert done_before_resume >= 1

        # resume: finishes, re-simulates only the lost units
        resumed = _cli([*EXPERIMENT, "--cache-dir", "cache", "--resume",
                        "--flows", "resumed.jsonl",
                        "--metrics", "resumed-metrics.jsonl"], tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        assert f"journal has {done_before_resume} done" in resumed.stderr
        engine_line = [l for l in resumed.stdout.splitlines()
                       if l.startswith("engine fig2")][0]
        assert f"hits {done_before_resume}" in engine_line

        # the property: byte-identical exports, as if never killed
        for name in ("clean.jsonl", "resumed.jsonl"):
            assert (tmp_path / name).exists()
        assert ((tmp_path / "clean.jsonl").read_bytes()
                == (tmp_path / "resumed.jsonl").read_bytes())
        assert ((tmp_path / "clean-metrics.jsonl").read_bytes()
                == (tmp_path / "resumed-metrics.jsonl").read_bytes())

    def test_resume_without_cache_is_a_usage_error(self, tmp_path):
        result = _cli([*EXPERIMENT, "--resume"], tmp_path)
        assert result.returncode == 2
        assert "--resume" in result.stderr

    def test_crash_chaos_retries_transparently(self, tmp_path):
        clean = _cli([*EXPERIMENT, "--flows", "clean.jsonl"], tmp_path)
        assert clean.returncode == 0, clean.stderr
        # every unit's worker crashes once; supervision retries it
        crashed = _cli([*EXPERIMENT, "--max-attempts", "2",
                        "--flows", "crashed.jsonl"], tmp_path,
                       chaos="crash:1.0")
        assert crashed.returncode == 0, crashed.stderr
        assert ((tmp_path / "clean.jsonl").read_bytes()
                == (tmp_path / "crashed.jsonl").read_bytes())

    def test_poison_chaos_degrades_with_exit_code_3(self, tmp_path):
        result = _cli([*EXPERIMENT, "--max-attempts", "2", "--degrade",
                       "--failures", "failures.jsonl"], tmp_path,
                      chaos="poison:1.0")
        assert result.returncode == 3, result.stderr
        assert "quarantined" in result.stdout
        failures = (tmp_path / "failures.jsonl").read_text().splitlines()
        assert len(failures) == 2  # fig2 runs two units
        assert all('"kind": "exception"' in line for line in failures)

    def test_poison_chaos_aborts_by_default(self, tmp_path):
        result = _cli([*EXPERIMENT, "--max-attempts", "2"], tmp_path,
                      chaos="poison:1.0")
        assert result.returncode == 1
        assert "campaign aborted" in result.stdout


class TestEngineDurability:
    """In-process: supervision/journal/failures through run_sessions."""

    def _run(self, tmp_path, *, chaos=None, monkeypatch=None, plans=None,
             **opts):
        if chaos is not None:
            monkeypatch.setenv("REPRO_CHAOS", chaos)
            monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path / "chaos"))
        stats = RunStats()
        with engine_options(stats=stats, **opts):
            results = run_sessions(plans if plans is not None else _plans())
        return results, stats

    def test_supervised_run_matches_plain_run(self, tmp_path):
        plain, _ = self._run(tmp_path)
        policy = SupervisionPolicy(retry=RetryBudget(backoff_base=0.0))
        supervised, _ = self._run(tmp_path, supervision=policy, jobs=2)
        assert [r.records for r in supervised] == [r.records for r in plain]

    def test_journal_records_done_units(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        try:
            self._run(tmp_path, journal=journal)
            assert journal.counts() == {"done": 3, "failed": 0,
                                        "quarantined": 0}
        finally:
            journal.close()

    def test_cache_hits_are_journaled_too(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._run(tmp_path, cache=cache)
        journal = CampaignJournal(tmp_path / "j.jsonl")
        try:
            _, stats = self._run(tmp_path, cache=cache, journal=journal)
            assert stats.cache_hits == 3
            assert journal.counts()["done"] == 3
        finally:
            journal.close()

    def test_poison_aborts_after_persisting_completed_units(
            self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        journal = CampaignJournal(tmp_path / "j.jsonl")
        policy = SupervisionPolicy(
            retry=RetryBudget(max_attempts=2, backoff_base=0.0))
        failures = FailureReport()
        plans = _mixed_plans(n_clean=2, n_poisoned=1)
        try:
            with pytest.raises(CampaignAborted) as excinfo:
                self._run(tmp_path, chaos="poison:0.5",
                          monkeypatch=monkeypatch, plans=plans, cache=cache,
                          journal=journal, supervision=policy,
                          failures=failures)
            counts = journal.counts()
            # abort happens *after* the batch: completed units are in the
            # cache and journal, quarantined ones attributed
            assert counts["quarantined"] == 1
            assert counts["done"] == 2
            assert len(cache) == 2
            assert excinfo.value.report is failures
            assert not failures.ok
            assert len(failures.failures) == 1
        finally:
            journal.close()

    def test_degrade_returns_placeholders_in_plan_order(
            self, tmp_path, monkeypatch):
        policy = SupervisionPolicy(
            retry=RetryBudget(max_attempts=2, backoff_base=0.0),
            degrade=True)
        failures = FailureReport()
        results, stats = self._run(tmp_path, chaos="poison:0.5",
                                   monkeypatch=monkeypatch,
                                   plans=_mixed_plans(n_clean=2,
                                                      n_poisoned=1),
                                   supervision=policy, failures=failures)
        assert len(results) == 3
        placeholders = [i for i, r in enumerate(results)
                        if isinstance(r, FailedUnit)]
        assert placeholders == [2]  # the poisoned plan, in its slot
        assert stats.failed == 1
        assert [f.index for f in failures.failures] == placeholders

    def test_collector_exports_failures(self, tmp_path, monkeypatch):
        collector = CampaignCollector()
        policy = SupervisionPolicy(
            retry=RetryBudget(max_attempts=2, backoff_base=0.0),
            degrade=True)
        self._run(tmp_path, chaos="poison:0.5", monkeypatch=monkeypatch,
                  plans=_mixed_plans(n_clean=2, n_poisoned=1),
                  supervision=policy, observer=collector)
        assert len(collector.failures) == 1  # the quarantine reached the hook
        path = tmp_path / "failures.jsonl"
        n = collector.write_failures(path)
        assert n == 1
        assert path.exists()
        # only final quarantines are exported, and sessions exclude them
        assert all(f.final for f in collector.failures)
        assert len(collector.sessions) == 2
