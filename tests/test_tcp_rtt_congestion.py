"""Tests for the RTT estimator and NewReno congestion control."""

import pytest

from repro.tcp import NewRenoCongestion, RttEstimator


class TestRttEstimator:
    def test_first_sample_initializes(self):
        est = RttEstimator(min_rto=0.2)
        est.sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)
        assert est.rto == pytest.approx(max(0.2, 0.1 + 4 * 0.05))

    def test_initial_rto_before_samples(self):
        est = RttEstimator(min_rto=0.2, initial_rto=1.0)
        assert est.rto == 1.0

    def test_ewma_converges_to_constant_rtt(self):
        est = RttEstimator(min_rto=0.01)
        for _ in range(200):
            est.sample(0.05)
        assert est.srtt == pytest.approx(0.05, rel=1e-3)
        assert est.rttvar == pytest.approx(0.0, abs=1e-3)

    def test_min_rto_clamps(self):
        est = RttEstimator(min_rto=1.0)
        for _ in range(50):
            est.sample(0.01)
        assert est.rto == 1.0

    def test_max_rto_clamps(self):
        est = RttEstimator(min_rto=0.2, max_rto=2.0)
        est.sample(10.0)
        assert est.rto == 2.0

    def test_backoff_doubles(self):
        est = RttEstimator(min_rto=0.2, max_rto=60.0)
        est.sample(0.5)
        base = est.rto
        est.backoff()
        assert est.rto == pytest.approx(2 * base)
        est.backoff()
        assert est.rto == pytest.approx(4 * base)

    def test_new_sample_clears_backoff(self):
        est = RttEstimator(min_rto=0.2)
        est.sample(0.5)
        base = est.rto
        est.backoff()
        est.sample(0.5)
        assert est.rto == pytest.approx(base, rel=0.2)

    def test_reset_backoff(self):
        est = RttEstimator(min_rto=0.2)
        est.sample(0.5)
        base = est.rto
        est.backoff()
        est.reset_backoff()
        assert est.rto == pytest.approx(base)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().sample(-0.1)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator(min_rto=0.0)
        with pytest.raises(ValueError):
            RttEstimator(min_rto=2.0, max_rto=1.0)


MSS = 1000


class TestNewRenoSlowStart:
    def test_initial_window(self):
        cc = NewRenoCongestion(MSS, init_cwnd_segments=3)
        assert cc.cwnd == 3 * MSS
        assert cc.in_slow_start

    def test_slow_start_grows_per_acked_mss(self):
        cc = NewRenoCongestion(MSS)
        before = cc.cwnd
        cc.on_ack(MSS, snd_una=MSS)
        assert cc.cwnd == before + MSS

    def test_slow_start_caps_growth_per_ack(self):
        """Appropriate byte counting: one MSS per ACK at most."""
        cc = NewRenoCongestion(MSS)
        before = cc.cwnd
        cc.on_ack(5 * MSS, snd_una=5 * MSS)
        assert cc.cwnd == before + MSS

    def test_doubles_roughly_per_round(self):
        cc = NewRenoCongestion(MSS)
        start = cc.cwnd
        # one round: every cwnd byte acked in MSS chunks
        for _ in range(start // MSS):
            cc.on_ack(MSS, snd_una=0)
        assert cc.cwnd == 2 * start


class TestNewRenoCongestionAvoidance:
    def make_ca(self):
        cc = NewRenoCongestion(MSS)
        cc.ssthresh = 4 * MSS
        cc.cwnd = 4 * MSS
        return cc

    def test_not_in_slow_start(self):
        assert not self.make_ca().in_slow_start

    def test_linear_growth_per_round(self):
        cc = self.make_ca()
        before = cc.cwnd
        for _ in range(cc.cwnd // MSS):
            cc.on_ack(MSS, snd_una=0)
        assert before + MSS * 0.8 <= cc.cwnd <= before + MSS * 1.2

    def test_zero_ack_is_noop(self):
        cc = self.make_ca()
        before = cc.cwnd
        cc.on_ack(0, snd_una=0)
        assert cc.cwnd == before


class TestFastRetransmitRecovery:
    def test_on_dupacks_enters_recovery(self):
        cc = NewRenoCongestion(MSS)
        flight = 10 * MSS
        assert cc.on_dupacks(flight, snd_nxt=flight) is True
        assert cc.in_recovery
        assert cc.ssthresh == flight // 2
        assert cc.cwnd == flight // 2 + 3 * MSS
        assert cc.fast_retransmits == 1

    def test_second_dupack_burst_ignored_while_recovering(self):
        cc = NewRenoCongestion(MSS)
        cc.on_dupacks(10 * MSS, snd_nxt=10 * MSS)
        assert cc.on_dupacks(10 * MSS, snd_nxt=10 * MSS) is False
        assert cc.fast_retransmits == 1

    def test_extra_dupacks_inflate(self):
        cc = NewRenoCongestion(MSS)
        cc.on_dupacks(10 * MSS, snd_nxt=10 * MSS)
        before = cc.cwnd
        cc.on_extra_dupack()
        assert cc.cwnd == before + MSS

    def test_full_ack_exits_recovery_at_ssthresh(self):
        cc = NewRenoCongestion(MSS)
        cc.on_dupacks(10 * MSS, snd_nxt=10 * MSS)
        cc.on_ack(10 * MSS, snd_una=11 * MSS)  # beyond recover point
        assert not cc.in_recovery
        assert cc.cwnd == cc.ssthresh

    def test_partial_ack_deflates_and_stays_in_recovery(self):
        cc = NewRenoCongestion(MSS)
        cc.on_dupacks(10 * MSS, snd_nxt=10 * MSS)
        before = cc.cwnd
        cc.on_ack(2 * MSS, snd_una=2 * MSS)  # below recover point
        assert cc.in_recovery
        assert cc.cwnd == before - 2 * MSS + MSS

    def test_ssthresh_floor_two_mss(self):
        cc = NewRenoCongestion(MSS)
        cc.on_dupacks(MSS, snd_nxt=MSS)
        assert cc.ssthresh == 2 * MSS


class TestTimeout:
    def test_timeout_collapses_cwnd(self):
        cc = NewRenoCongestion(MSS)
        cc.cwnd = 20 * MSS
        cc.on_timeout(flight_size=20 * MSS)
        assert cc.cwnd == MSS
        assert cc.ssthresh == 10 * MSS
        assert not cc.in_recovery
        assert cc.timeouts == 1


class TestIdleReset:
    def test_disabled_by_default(self):
        cc = NewRenoCongestion(MSS)
        cc.cwnd = 50 * MSS
        cc.on_idle(idle_time=100.0, rto=1.0)
        assert cc.cwnd == 50 * MSS
        assert cc.idle_resets == 0

    def test_enabled_resets_after_rto_idle(self):
        cc = NewRenoCongestion(MSS, reset_after_idle=True)
        cc.cwnd = 50 * MSS
        cc.on_idle(idle_time=2.0, rto=1.0)
        assert cc.cwnd == cc.init_cwnd
        assert cc.idle_resets == 1

    def test_enabled_short_idle_no_reset(self):
        cc = NewRenoCongestion(MSS, reset_after_idle=True)
        cc.cwnd = 50 * MSS
        cc.on_idle(idle_time=0.5, rto=1.0)
        assert cc.cwnd == 50 * MSS

    def test_invalid_mss_rejected(self):
        with pytest.raises(ValueError):
            NewRenoCongestion(0)


class TestCwndValidation:
    """RFC 2861: application-limited senders must not inflate cwnd."""

    def test_app_limited_acks_do_not_grow(self):
        cc = NewRenoCongestion(MSS)
        before = cc.cwnd
        cc.on_ack(MSS, snd_una=MSS, cwnd_limited=False)
        assert cc.cwnd == before

    def test_limited_acks_still_grow(self):
        cc = NewRenoCongestion(MSS)
        before = cc.cwnd
        cc.on_ack(MSS, snd_una=MSS, cwnd_limited=True)
        assert cc.cwnd == before + MSS

    def test_recovery_deflation_unaffected_by_validation(self):
        cc = NewRenoCongestion(MSS)
        cc.on_dupacks(10 * MSS, snd_nxt=10 * MSS)
        before = cc.cwnd
        cc.on_ack(2 * MSS, snd_una=2 * MSS, cwnd_limited=False)
        assert cc.cwnd == before - 2 * MSS + MSS  # partial-ACK deflate

    def test_paced_sender_cwnd_stays_bounded(self):
        """End to end: a block-paced server's cwnd must plateau."""
        from repro.simnet import build_client_server, NetworkProfile
        from repro.streaming import VideoServer
        from repro.streaming.client import GreedyPlayer
        from repro.streaming.params import FLASH_CLIENT
        from repro.tcp import TcpConfig
        from repro.workloads import MBPS, Video

        profile = NetworkProfile(name="T", down_bps=50e6, up_bps=50e6,
                                 rtt=0.02, loss_down=0.0,
                                 buffer_bytes=2 << 20)
        video = Video(video_id="b", duration=600.0,
                      encoding_rate_bps=0.5 * MBPS, resolution="240p",
                      container="flv")
        net, client_host, server_host, _ = build_client_server(profile,
                                                               seed=1)
        holder = {}
        server = VideoServer(
            server_host, net.scheduler, {video.video_id: video},
            tcp_config=TcpConfig(recv_buffer=256 * 1024, trace_cwnd=True))
        original = server._listener.on_accept

        def tap(conn):
            holder["conn"] = conn
            original(conn)

        server._listener.on_accept = tap
        player = GreedyPlayer(client_host, net.scheduler, server_host.ip,
                              video, policy=FLASH_CLIENT,
                              rng=net.rng.stream("x"))
        player.start()
        net.run_until(60.0)
        series = holder["conn"].cwnd_series
        assert series is not None and len(series) > 2
        # cwnd in the last 40 s of block pacing must not keep climbing
        steady = series.window(20.0, 60.0)
        if len(steady) >= 2:
            assert steady.values[-1] <= steady.values[0] * 1.05
