"""The fast-path optimizations must be invisible in results.

PR 5 rebuilt the hot path (tuple heap entries, packet-train batching,
pooled segments, columnar capture) under one invariant: **byte-identical
results**.  These tests run full sessions with the batching fast path on
and off and assert every export — packet records, flow records, metric
samples, QoE — is identical, including over lossy links where drop
decisions interleave with train batching.
"""

import pytest

import repro.simnet.link as link_mod
from repro.obs.flows import flow_records
from repro.obs.metrics import metric_samples
from repro.simnet.profiles import ACADEMIC, RESIDENCE
from repro.streaming import Application, Service
from repro.streaming.session import SessionConfig, run_session
from repro.tcp.constants import ACK, header_overhead
from repro.tcp.segment import TcpSegment
from repro.workloads import MBPS, Video


def _run(profile, seed, batching: bool):
    """One short session with the delivery fast path forced on or off."""
    old = link_mod.BATCH_DELIVERIES
    link_mod.BATCH_DELIVERIES = batching
    try:
        video = Video(video_id="equiv", duration=120.0,
                      encoding_rate_bps=2 * MBPS,
                      resolution="360p", container="flv")
        config = SessionConfig(profile=profile, service=Service.YOUTUBE,
                               application=Application.FIREFOX,
                               capture_duration=30.0, seed=seed)
        return run_session(video, config)
    finally:
        link_mod.BATCH_DELIVERIES = old


def _record_tuples(result):
    return [
        (r.timestamp, r.src_ip, r.src_port, r.dst_ip, r.dst_port, r.seq,
         r.ack, r.flags, r.payload_len, r.window, r.wire_len, r.payload)
        for r in result.records
    ]


@pytest.mark.parametrize("profile,seed", [
    (RESIDENCE, 7),    # Bernoulli loss on the bottleneck: drops interleave
    (ACADEMIC, 3),     # bursty Gilbert-Elliott loss
])
def test_session_exports_identical_with_batching_on_and_off(profile, seed):
    batched = _run(profile, seed, batching=True)
    unbatched = _run(profile, seed, batching=False)

    assert _record_tuples(batched) == _record_tuples(unbatched)
    assert batched.downloaded == unbatched.downloaded
    assert batched.stall_events == unbatched.stall_events
    assert batched.playback_position_s == unbatched.playback_position_s
    assert batched.connections_opened == unbatched.connections_opened
    assert (flow_records(batched, "s") == flow_records(unbatched, "s"))
    assert (metric_samples(batched, "s") == metric_samples(unbatched, "s"))


def test_batching_actually_engaged():
    """Guard against the fast path silently disabling itself: a lossy
    Residence run must keep far fewer scheduler events in flight than
    packets delivered (trains collapse to one posted event each)."""
    result = _run(RESIDENCE, 7, batching=True)
    assert len(result.capture) > 10_000  # the run really streamed


class TestSegmentPool:
    def _acquire(self, **kw):
        defaults = dict(seq=100, ack=5, flags=ACK, window=65535,
                        payload_len=1460, sent_at=1.5)
        defaults.update(kw)
        return TcpSegment.acquire("10.0.0.1", 5000, "10.0.0.2", 80, **defaults)

    def test_release_then_acquire_reuses_the_object(self):
        TcpSegment._pool.clear()
        seg = self._acquire()
        assert seg.poolable
        seg.release()
        seg2 = self._acquire(seq=999, payload_len=0, sent_at=2.5)
        assert seg2 is seg
        assert seg2.seq == 999
        assert seg2.payload_len == 0
        assert seg2.sent_at == 2.5
        assert seg2.wire_size == header_overhead(ACK)

    def test_acquired_segment_matches_constructed_segment(self):
        TcpSegment._pool.clear()
        fresh = TcpSegment("10.0.0.1", 5000, "10.0.0.2", 80, seq=100, ack=5,
                           flags=ACK, window=65535, payload_len=1460,
                           sent_at=1.5)
        pooled = self._acquire()
        for field in ("src_ip", "src_port", "dst_ip", "dst_port", "seq",
                      "ack", "flags", "window", "payload_len", "payload",
                      "wire_size", "sent_at", "retransmission"):
            assert getattr(pooled, field) == getattr(fresh, field), field

    def test_pool_is_bounded(self):
        TcpSegment._pool.clear()
        segs = [self._acquire() for _ in range(TcpSegment._POOL_LIMIT + 50)]
        for seg in segs:
            seg.release()
        assert len(TcpSegment._pool) == TcpSegment._POOL_LIMIT


class TestColumnarCapture:
    """The columnar TraceCapture materializes records lazily and caches."""

    def _seg(self, i, payload=None):
        plen = len(payload) if payload is not None else 1460
        return TcpSegment("10.0.0.2", 80, "10.0.0.1", 5000, seq=i * 1460,
                         ack=1, flags=ACK, window=65535, payload_len=plen,
                         payload=payload, sent_at=float(i))

    def test_records_match_tapped_segments(self):
        from repro.pcap.capture import TraceCapture, record_from_segment
        cap = TraceCapture(name="t")
        segs = [self._seg(0), self._seg(1, b"HTTP/1.1 200 OK\r\n\r\n"),
                self._seg(2)]
        for i, seg in enumerate(segs):
            cap.tap(float(i), seg)
        assert len(cap) == 3
        expected = [record_from_segment(float(i), s)
                    for i, s in enumerate(segs)]
        assert cap.records == expected

    def test_records_are_cached_until_new_packets_arrive(self):
        from repro.pcap.capture import TraceCapture
        cap = TraceCapture(name="t")
        cap.tap(0.0, self._seg(0))
        first = cap.records
        assert cap.records is first          # cached
        cap.tap(1.0, self._seg(1))
        second = cap.records
        assert second is not first           # invalidated by new packet
        assert len(second) == 2

    def test_real_payloads_are_sparse(self):
        from repro.pcap.capture import TraceCapture
        cap = TraceCapture(name="t")
        cap.tap(0.0, self._seg(0))                       # virtual body
        cap.tap(1.0, self._seg(1, b"abc"))               # real bytes
        assert cap._payloads == {1: b"abc"}
        recs = cap.records
        assert recs[0].payload is None
        assert recs[1].payload == b"abc"

    def test_columns_survive_segment_pooling(self):
        """The tap copies fields out, so recycling the segment afterwards
        must not disturb what was captured."""
        from repro.pcap.capture import TraceCapture
        TcpSegment._pool.clear()
        cap = TraceCapture(name="t")
        seg = TcpSegment.acquire("10.0.0.2", 80, "10.0.0.1", 5000, seq=42,
                                 ack=7, flags=ACK, window=1000,
                                 payload_len=1460, sent_at=0.0)
        cap.tap(0.0, seg)
        seg.release()
        TcpSegment.acquire("10.0.0.2", 80, "10.0.0.1", 5000, seq=999,
                           ack=999, flags=ACK, window=9, payload_len=1,
                           sent_at=9.0)
        rec = cap.records[0]
        assert rec.seq == 42
        assert rec.ack == 7
        assert rec.payload_len == 1460
