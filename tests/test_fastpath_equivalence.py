"""The fast-path optimizations must be invisible in results.

PR 5 rebuilt the hot path (tuple heap entries, packet-train batching,
pooled segments, columnar capture); PR 8 added the analytic OFF-period
fast-forward and the vectorized packet-train path.  All of it lives under
one invariant: **byte-identical results**.  These tests run full sessions
across seven scenarios — every access profile, every ON/OFF strategy
family, lossy links, and scripted faults — with each optimization layer
(fast-forward, vectorized dispatch, train batching) toggled
independently, and assert the MD5 digest over every export — packet
records, flow records, metric samples, QoE — is identical to the
everything-off reference run.
"""

import hashlib

import pytest

import repro.simnet.link as link_mod
import repro.simnet.scheduler as sched_mod
from repro.obs.flows import flow_records
from repro.obs.metrics import metric_samples
from repro.simnet.faults import FaultSchedule
from repro.simnet.profiles import ACADEMIC, HOME, RESEARCH, RESIDENCE
from repro.streaming import Application, Service
from repro.streaming.session import SessionConfig, run_session
from repro.tcp.constants import ACK, header_overhead
from repro.tcp.segment import TcpSegment
from repro.workloads import MBPS, Video

# The seven equivalence scenarios.  Together they cover every access
# profile, loss model (Bernoulli, bursty Gilbert-Elliott, near-clean),
# every ON/OFF strategy family (short-block Flash, bulk no-ON/OFF,
# client-throttled long-block), and scripted faults (link outage +
# bandwidth degradation over a lossy link).
SCENARIOS = {
    "residence-short-onoff": dict(
        profile=RESIDENCE, seed=7, container="flv", app=Application.FIREFOX),
    "academic-bursty-loss": dict(
        profile=ACADEMIC, seed=3, container="flv", app=Application.FIREFOX),
    "home-light-loss": dict(
        profile=HOME, seed=11, container="flv", app=Application.FIREFOX),
    "research-clean": dict(
        profile=RESEARCH, seed=7, container="flv", app=Application.FIREFOX),
    "bulk-no-onoff": dict(
        profile=RESEARCH, seed=5, container="webm", app=Application.FIREFOX),
    "throttled-long-onoff": dict(
        profile=RESEARCH, seed=9, container="webm", app=Application.CHROME),
    "faults-outage-degrade": dict(
        profile=RESIDENCE, seed=13, container="flv", app=Application.FIREFOX,
        faults=FaultSchedule().outage(8.0, 3.0).degrade(15.0, 6.0, 0.4)),
}

# (fast_forward, vector, batching) — the everything-off triple is the
# reference; each optimization is also dropped individually so a digest
# mismatch pins the offending layer.
TOGGLES = {
    "all-on": (True, True, True),
    "no-fast-forward": (False, True, True),
    "no-vector": (True, False, True),
    "all-off": (False, False, False),
}


def _run(scenario: dict, *, fast_forward: bool, vector: bool,
         batching: bool):
    """One short session with each fast-path layer forced on or off."""
    old = (sched_mod.FAST_FORWARD, link_mod.VECTOR_TRAINS,
           link_mod.BATCH_DELIVERIES)
    sched_mod.FAST_FORWARD = fast_forward
    link_mod.VECTOR_TRAINS = vector
    link_mod.BATCH_DELIVERIES = batching
    try:
        video = Video(video_id="equiv", duration=120.0,
                      encoding_rate_bps=2 * MBPS,
                      resolution="360p", container=scenario["container"])
        config = SessionConfig(profile=scenario["profile"],
                               service=Service.YOUTUBE,
                               application=scenario["app"],
                               capture_duration=30.0,
                               seed=scenario["seed"],
                               faults=scenario.get("faults"))
        return run_session(video, config)
    finally:
        (sched_mod.FAST_FORWARD, link_mod.VECTOR_TRAINS,
         link_mod.BATCH_DELIVERIES) = old


def _record_tuples(result):
    return [
        (r.timestamp, r.src_ip, r.src_port, r.dst_ip, r.dst_port, r.seq,
         r.ack, r.flags, r.payload_len, r.window, r.wire_len, r.payload)
        for r in result.records
    ]


def _exports(result):
    """Everything a run exports, as one comparable structure."""
    fault_times = ([(e.time, e.kind, e.detail)
                    for e in result.fault_log.entries]
                   if result.fault_log is not None else [])
    return (
        _record_tuples(result),
        result.downloaded,
        result.stall_events,
        result.playback_position_s,
        result.connections_opened,
        flow_records(result, "s"),
        metric_samples(result, "s"),
        fault_times,
    )


def _digest(exports) -> str:
    """MD5 over the full export surface of one run."""
    return hashlib.md5(repr(exports).encode("utf-8")).hexdigest()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_exports_byte_identical_across_fastpath_toggles(name):
    """The non-negotiable contract: for each scenario, every toggle
    combination hashes to the same MD5 as the everything-off reference."""
    scenario = SCENARIOS[name]
    reference = _exports(_run(scenario, fast_forward=False, vector=False,
                              batching=False))
    ref_digest = _digest(reference)
    for label, (ff, vec, batch) in TOGGLES.items():
        if label == "all-off":
            continue
        got = _exports(_run(scenario, fast_forward=ff, vector=vec,
                            batching=batch))
        if _digest(got) != ref_digest:
            # digest differs: diff the structured exports for a real
            # failure message instead of two opaque hashes
            assert got == reference, f"{name}/{label} diverged from all-off"
            pytest.fail(f"{name}/{label}: digest mismatch with equal "
                        "exports (repr instability)")


def test_fastpath_actually_engaged():
    """Guard against the fast path silently disabling itself: the lossy
    Residence scenario must really stream, and a fast-forwarding session
    must log analytic jumps over its OFF periods."""
    result = _run(SCENARIOS["residence-short-onoff"], fast_forward=True,
                  vector=True, batching=True)
    assert len(result.capture) > 10_000  # the run really streamed


def test_fault_scenario_actually_faulted():
    """The faults scenario must arm and fire its outage + degradation
    inside the captured window, or it proves nothing."""
    result = _run(SCENARIOS["faults-outage-degrade"], fast_forward=True,
                  vector=True, batching=True)
    assert result.fault_log is not None
    kinds = {e.kind for e in result.fault_log.entries}
    assert "outage-start" in kinds
    assert "degrade-start" in kinds


class TestSegmentPool:
    def _acquire(self, **kw):
        defaults = dict(seq=100, ack=5, flags=ACK, window=65535,
                        payload_len=1460, sent_at=1.5)
        defaults.update(kw)
        return TcpSegment.acquire("10.0.0.1", 5000, "10.0.0.2", 80, **defaults)

    def test_release_then_acquire_reuses_the_object(self):
        TcpSegment._pool.clear()
        seg = self._acquire()
        assert seg.poolable
        seg.release()
        seg2 = self._acquire(seq=999, payload_len=0, sent_at=2.5)
        assert seg2 is seg
        assert seg2.seq == 999
        assert seg2.payload_len == 0
        assert seg2.sent_at == 2.5
        assert seg2.wire_size == header_overhead(ACK)

    def test_acquired_segment_matches_constructed_segment(self):
        TcpSegment._pool.clear()
        fresh = TcpSegment("10.0.0.1", 5000, "10.0.0.2", 80, seq=100, ack=5,
                           flags=ACK, window=65535, payload_len=1460,
                           sent_at=1.5)
        pooled = self._acquire()
        for field in ("src_ip", "src_port", "dst_ip", "dst_port", "seq",
                      "ack", "flags", "window", "payload_len", "payload",
                      "wire_size", "sent_at", "retransmission"):
            assert getattr(pooled, field) == getattr(fresh, field), field

    def test_pool_is_bounded(self):
        TcpSegment._pool.clear()
        segs = [self._acquire() for _ in range(TcpSegment._POOL_LIMIT + 50)]
        for seg in segs:
            seg.release()
        assert len(TcpSegment._pool) == TcpSegment._POOL_LIMIT


class TestColumnarCapture:
    """The columnar TraceCapture materializes records lazily and caches."""

    def _seg(self, i, payload=None):
        plen = len(payload) if payload is not None else 1460
        return TcpSegment("10.0.0.2", 80, "10.0.0.1", 5000, seq=i * 1460,
                         ack=1, flags=ACK, window=65535, payload_len=plen,
                         payload=payload, sent_at=float(i))

    def test_records_match_tapped_segments(self):
        from repro.pcap.capture import TraceCapture, record_from_segment
        cap = TraceCapture(name="t")
        segs = [self._seg(0), self._seg(1, b"HTTP/1.1 200 OK\r\n\r\n"),
                self._seg(2)]
        for i, seg in enumerate(segs):
            cap.tap(float(i), seg)
        assert len(cap) == 3
        expected = [record_from_segment(float(i), s)
                    for i, s in enumerate(segs)]
        assert cap.records == expected

    def test_records_are_cached_until_new_packets_arrive(self):
        from repro.pcap.capture import TraceCapture
        cap = TraceCapture(name="t")
        cap.tap(0.0, self._seg(0))
        first = cap.records
        assert cap.records is first          # cached
        cap.tap(1.0, self._seg(1))
        second = cap.records
        assert second is not first           # invalidated by new packet
        assert len(second) == 2

    def test_real_payloads_are_sparse(self):
        from repro.pcap.capture import TraceCapture
        cap = TraceCapture(name="t")
        cap.tap(0.0, self._seg(0))                       # virtual body
        cap.tap(1.0, self._seg(1, b"abc"))               # real bytes
        assert cap._payloads == {1: b"abc"}
        recs = cap.records
        assert recs[0].payload is None
        assert recs[1].payload == b"abc"

    def test_columns_survive_segment_pooling(self):
        """The tap copies fields out, so recycling the segment afterwards
        must not disturb what was captured."""
        from repro.pcap.capture import TraceCapture
        TcpSegment._pool.clear()
        cap = TraceCapture(name="t")
        seg = TcpSegment.acquire("10.0.0.2", 80, "10.0.0.1", 5000, seq=42,
                                 ack=7, flags=ACK, window=1000,
                                 payload_len=1460, sent_at=0.0)
        cap.tap(0.0, seg)
        seg.release()
        TcpSegment.acquire("10.0.0.2", 80, "10.0.0.1", 5000, seq=999,
                           ack=999, flags=ACK, window=9, payload_len=1,
                           sent_at=9.0)
        rec = cap.records[0]
        assert rec.seq == 42
        assert rec.ack == 7
        assert rec.payload_len == 1460
