"""Tests for the repro bench perf-regression tracker."""

import json

import pytest

from repro.cli import main
from repro.obs import (
    BENCH_SCHEMA,
    BenchWriter,
    compare,
    format_comparison,
    format_history,
    git_sha,
    load_bench,
    load_history,
    peak_rss_kb,
    run_suite,
)


def _bench(entries, sha="abc1234", scale="small"):
    writer = BenchWriter("test", scale, sha=sha)
    for name, wall in entries.items():
        writer.add(name, wall)
    return writer.payload()


class TestWriter:
    def test_schema_versioned_payload(self):
        payload = _bench({"fig1": 1.0, "fig2": 2.5})
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["git_sha"] == "abc1234"
        assert list(payload["entries"]) == ["fig1", "fig2"]  # sorted
        assert payload["entries"]["fig2"]["wall_s"] == 2.5

    def test_write_and_load_round_trip(self, tmp_path):
        writer = BenchWriter("test", "small", sha="abc1234")
        writer.add("fig1", 1.0, units=3, cache_hits=1)
        path = writer.write(tmp_path / "b.json")
        data = load_bench(path)
        assert data == writer.payload()
        assert data["entries"]["fig1"]["units"] == 3

    def test_default_filename_embeds_sha(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        writer = BenchWriter("test", "small", sha="deadbee")
        writer.add("x", 1.0)
        path = writer.write()
        assert path.name == "BENCH_deadbee.json"
        assert path.exists()

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9", "entries": {}}))
        with pytest.raises(ValueError):
            load_bench(path)
        path.write_text(json.dumps({"schema": BENCH_SCHEMA}))
        with pytest.raises(ValueError):
            load_bench(path)

    def test_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "feedf00d")
        assert git_sha() == "feedf00d"

    def test_peak_rss_is_positive_here(self):
        assert peak_rss_kb() > 0


class TestCompare:
    def test_flags_2x_wall_time_regression(self):
        base = _bench({"fig1": 1.0, "fig2": 1.0})
        new = _bench({"fig1": 1.0, "fig2": 2.0})
        regressions = compare(base, new, threshold=0.25)
        assert [r.name for r in regressions] == ["fig2"]
        assert regressions[0].ratio == pytest.approx(2.0)

    def test_passes_on_identical_inputs(self):
        base = _bench({"fig1": 1.0, "fig2": 2.0})
        assert compare(base, base, threshold=0.25) == []

    def test_threshold_is_strict_boundary(self):
        base = _bench({"a": 1.0})
        at = _bench({"a": 1.25})
        over = _bench({"a": 1.2501})
        assert compare(base, at, threshold=0.25) == []
        assert [r.name for r in compare(base, over, threshold=0.25)] == ["a"]

    def test_ignores_entries_missing_from_either_side(self):
        base = _bench({"a": 1.0, "gone": 1.0})
        new = _bench({"a": 1.0, "added": 99.0})
        assert compare(base, new) == []

    def test_format_marks_regressions_and_counts(self):
        base = _bench({"a": 1.0, "b": 1.0})
        new = _bench({"a": 1.0, "b": 3.0})
        regressions = compare(base, new, threshold=0.25)
        text = format_comparison(base, new, regressions, 0.25)
        assert "REGRESSION" in text
        assert "1 regression(s)" in text
        assert "+200.0%" in text


class TestRunSuite:
    def test_measures_one_experiment(self):
        entries, reports = run_suite(["model_validation"], "small")
        assert list(entries) == ["model_validation"]
        entry = entries["model_validation"]
        assert entry["wall_s"] > 0
        assert entry["units"] > 0
        assert entry["units_per_sec"] > 0
        assert entry["peak_rss_kb"] > 0
        assert entry["spans"] > 0
        assert entry["cache_hits"] + entry["cache_misses"] == entry["units"]
        assert reports and "model" in reports[0].lower()

    def test_cache_hits_on_second_pass(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        cold, _ = run_suite(["model_validation"], "small", cache=cache)
        warm, _ = run_suite(["model_validation"], "small", cache=cache)
        assert cold["model_validation"]["cache_misses"] > 0
        assert warm["model_validation"]["cache_hits"] == \
            cold["model_validation"]["cache_misses"]


class TestHistory:
    def _write(self, tmp_path, sha, entries, mtime=None):
        path = tmp_path / f"BENCH_{sha}.json"
        path.write_text(json.dumps(_bench(entries, sha=sha)))
        if mtime is not None:
            import os
            os.utime(path, (mtime, mtime))
        return path

    def test_orders_by_mtime_outside_git(self, tmp_path):
        # shas unknown to any repo: order falls back to file mtime
        self._write(tmp_path, "bbb2222", {"a": 2.0}, mtime=2_000)
        self._write(tmp_path, "aaa1111", {"a": 4.0}, mtime=1_000)
        self._write(tmp_path, "ccc3333", {"a": 1.0}, mtime=3_000)
        payloads = load_history(tmp_path)
        assert [p["git_sha"] for p in payloads] == \
            ["aaa1111", "bbb2222", "ccc3333"]

    def test_orders_committed_snapshots_by_commit_order(self):
        # the real repo: BENCH files for ancestor commits sort oldest
        # first whatever their filenames or mtimes say
        payloads = load_history(".")
        assert len(payloads) >= 2
        shas = [p["git_sha"] for p in payloads]
        assert shas.index("6c27392") < shas.index("d33c8d1")

    def test_skips_corrupt_and_foreign_files(self, tmp_path):
        self._write(tmp_path, "aaa1111", {"a": 1.0})
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        (tmp_path / "BENCH_other.json").write_text(
            json.dumps({"schema": "other/v9", "entries": {}}))
        payloads = load_history(tmp_path)
        assert [p["git_sha"] for p in payloads] == ["aaa1111"]

    def test_format_is_a_per_benchmark_trajectory(self):
        payloads = [_bench({"fig1": 4.0, "gone": 1.0}, sha="aaa1111"),
                    _bench({"fig1": 2.0, "new": 3.0}, sha="bbb2222")]
        text = format_history(payloads)
        assert "2 snapshot(s)" in text
        assert "aaa1111" in text and "bbb2222" in text
        fig1_row = next(l for l in text.splitlines() if "fig1" in l)
        assert "4.000s" in fig1_row and "2.000s" in fig1_row
        assert "2.00x faster" in fig1_row
        gone_row = next(l for l in text.splitlines() if "gone" in l)
        assert "—" in gone_row           # missing cell and no trend

    def test_format_flags_slowdowns(self):
        payloads = [_bench({"a": 1.0}, sha="aaa1111"),
                    _bench({"a": 3.0}, sha="bbb2222")]
        assert "3.00x slower" in format_history(payloads)

    def test_cli_history_prints_table(self, tmp_path, capsys):
        self._write(tmp_path, "aaa1111", {"fig1": 4.0}, mtime=1_000)
        self._write(tmp_path, "bbb2222", {"fig1": 2.0}, mtime=2_000)
        assert main(["bench", "--history", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench history" in out
        assert "2.00x faster" in out

    def test_cli_history_empty_dir_exits_2(self, tmp_path, capsys):
        assert main(["bench", "--history", str(tmp_path)]) == 2
        assert "no BENCH_*.json" in capsys.readouterr().err


class TestCli:
    def test_bench_writes_valid_file(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(["bench", "model_validation", "--scale", "small",
                     "--out", str(out)])
        assert code == 0
        data = load_bench(out)
        assert data["schema"] == BENCH_SCHEMA
        assert data["scale"] == "small"
        assert "model_validation" in data["entries"]
        assert "bench written" in capsys.readouterr().out

    def test_bench_rejects_unknown_experiment(self, capsys):
        assert main(["bench", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_compare_exits_nonzero_on_regression(self, tmp_path, capsys):
        base = tmp_path / "a.json"
        new = tmp_path / "b.json"
        base.write_text(json.dumps(_bench({"fig1": 1.0})))
        new.write_text(json.dumps(_bench({"fig1": 2.0})))
        assert main(["bench", "--compare", str(base), str(new)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_passes_on_identical(self, tmp_path, capsys):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(_bench({"fig1": 1.0})))
        assert main(["bench", "--compare", str(path), str(path)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_compare_report_only_always_passes(self, tmp_path, capsys):
        base = tmp_path / "a.json"
        new = tmp_path / "b.json"
        base.write_text(json.dumps(_bench({"fig1": 1.0})))
        new.write_text(json.dumps(_bench({"fig1": 5.0})))
        code = main(["bench", "--compare", str(base), str(new),
                     "--report-only"])
        assert code == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_threshold_configurable(self, tmp_path):
        base = tmp_path / "a.json"
        new = tmp_path / "b.json"
        base.write_text(json.dumps(_bench({"fig1": 1.0})))
        new.write_text(json.dumps(_bench({"fig1": 1.5})))
        assert main(["bench", "--compare", str(base), str(new)]) == 1
        assert main(["bench", "--compare", str(base), str(new),
                     "--threshold", "0.6"]) == 0

    def test_compare_bad_file_exits_2(self, tmp_path, capsys):
        good = tmp_path / "a.json"
        good.write_text(json.dumps(_bench({"fig1": 1.0})))
        assert main(["bench", "--compare", str(good),
                     str(tmp_path / "missing.json")]) == 2
        assert "bench compare" in capsys.readouterr().err
