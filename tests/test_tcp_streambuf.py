"""Tests for the mixed real/virtual stream buffer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcp import StreamBuffer


class TestAppend:
    def test_empty_buffer(self):
        buf = StreamBuffer()
        assert buf.length == 0
        assert buf.trimmed == 0

    def test_append_real(self):
        buf = StreamBuffer()
        buf.append(b"hello")
        assert buf.length == 5
        assert buf.read_range(0, 5) == b"hello"

    def test_append_empty_is_noop(self):
        buf = StreamBuffer()
        buf.append(b"")
        buf.append_virtual(0)
        assert buf.length == 0

    def test_append_virtual(self):
        buf = StreamBuffer()
        buf.append_virtual(100)
        assert buf.length == 100
        assert buf.read_range(0, 100) is None

    def test_virtual_negative_rejected(self):
        with pytest.raises(ValueError):
            StreamBuffer().append_virtual(-1)

    def test_adjacent_virtual_chunks_merge(self):
        buf = StreamBuffer()
        buf.append_virtual(10)
        buf.append_virtual(20)
        assert len(buf._chunks) == 1
        assert buf.length == 30


class TestReadRange:
    def test_mixed_range_zero_fills_virtual(self):
        buf = StreamBuffer()
        buf.append(b"AB")
        buf.append_virtual(3)
        buf.append(b"CD")
        data = buf.read_range(0, 7)
        assert data == b"AB\x00\x00\x00CD"

    def test_pure_virtual_range_returns_none(self):
        buf = StreamBuffer()
        buf.append(b"AB")
        buf.append_virtual(10)
        assert buf.read_range(2, 12) is None
        assert buf.is_virtual_range(5, 10)

    def test_subrange_of_real_chunk(self):
        buf = StreamBuffer()
        buf.append(b"ABCDEFG")
        assert buf.read_range(2, 5) == b"CDE"

    def test_range_spanning_chunks(self):
        buf = StreamBuffer()
        buf.append(b"ABC")
        buf.append(b"DEF")
        assert buf.read_range(1, 5) == b"BCDE"

    def test_empty_range(self):
        buf = StreamBuffer()
        buf.append(b"ABC")
        assert buf.read_range(1, 1) == b""

    def test_out_of_bounds_raises(self):
        buf = StreamBuffer()
        buf.append(b"ABC")
        with pytest.raises(IndexError):
            buf.read_range(0, 4)

    def test_is_virtual_range_false_for_real(self):
        buf = StreamBuffer()
        buf.append_virtual(5)
        buf.append(b"X")
        assert not buf.is_virtual_range(0, 6)
        assert buf.is_virtual_range(0, 5)


class TestTrim:
    def test_trim_discards_prefix(self):
        buf = StreamBuffer()
        buf.append(b"ABCDEF")
        buf.trim(3)
        assert buf.trimmed == 3
        assert buf.read_range(3, 6) == b"DEF"
        with pytest.raises(IndexError):
            buf.read_range(2, 4)

    def test_trim_partial_chunk(self):
        buf = StreamBuffer()
        buf.append(b"ABC")
        buf.append(b"DEF")
        buf.trim(4)
        assert buf.read_range(4, 6) == b"EF"

    def test_trim_virtual_chunk(self):
        buf = StreamBuffer()
        buf.append_virtual(10)
        buf.trim(4)
        assert buf.read_range(4, 10) is None

    def test_trim_is_monotone(self):
        buf = StreamBuffer()
        buf.append(b"ABCDEF")
        buf.trim(4)
        buf.trim(2)  # earlier trim is a no-op
        assert buf.trimmed == 4

    def test_trim_beyond_length_raises(self):
        buf = StreamBuffer()
        buf.append(b"AB")
        with pytest.raises(IndexError):
            buf.trim(3)

    def test_append_after_trim(self):
        buf = StreamBuffer()
        buf.append(b"ABC")
        buf.trim(3)
        buf.append(b"DEF")
        assert buf.read_range(3, 6) == b"DEF"


# -- property-based tests -----------------------------------------------------

chunk_ops = st.lists(
    st.one_of(
        st.binary(min_size=1, max_size=20),          # real append
        st.integers(min_value=1, max_value=50),      # virtual append
    ),
    min_size=1,
    max_size=20,
)


def build_reference(ops):
    """Apply ops to a StreamBuffer and a plain bytes reference."""
    buf = StreamBuffer()
    ref = bytearray()
    for op in ops:
        if isinstance(op, bytes):
            buf.append(op)
            ref.extend(op)
        else:
            buf.append_virtual(op)
            ref.extend(b"\x00" * op)
    return buf, bytes(ref)


class TestStreamBufferProperties:
    @given(chunk_ops, st.data())
    def test_read_range_matches_reference(self, ops, data):
        buf, ref = build_reference(ops)
        start = data.draw(st.integers(min_value=0, max_value=len(ref)))
        end = data.draw(st.integers(min_value=start, max_value=len(ref)))
        got = buf.read_range(start, end)
        if got is None:
            got = bytes(end - start)
            assert buf.is_virtual_range(start, end)
        assert got == ref[start:end]

    @given(chunk_ops, st.data())
    def test_reads_after_trim_match_reference(self, ops, data):
        buf, ref = build_reference(ops)
        cut = data.draw(st.integers(min_value=0, max_value=len(ref)))
        buf.trim(cut)
        start = data.draw(st.integers(min_value=cut, max_value=len(ref)))
        end = data.draw(st.integers(min_value=start, max_value=len(ref)))
        got = buf.read_range(start, end)
        if got is None:
            got = bytes(end - start)
        assert got == ref[start:end]

    @given(chunk_ops)
    def test_length_equals_total_appended(self, ops):
        buf, ref = build_reference(ops)
        assert buf.length == len(ref)
