"""End-to-end session tests: each player produces its published traffic shape."""

import pytest

from repro.analysis import analyze_session, median
from repro.simnet import RESEARCH, NetworkProfile
from repro.streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    StreamingStrategy,
    run_session,
)
from repro.workloads import MBPS, Video

FAST = NetworkProfile(
    name="Fast", down_bps=40e6, up_bps=40e6, rtt=0.02, loss_down=0.0,
    buffer_bytes=1024 * 1024,
)

KB = 1024
MB = 1024 * 1024


def yt_video(rate_mbps=1.0, duration=400.0, container="flv", resolution="360p"):
    return Video(
        video_id="v-test",
        duration=duration,
        encoding_rate_bps=rate_mbps * MBPS,
        resolution=resolution,
        container=container,
    )


def nf_video(duration=2400.0):
    ladder = ((u"480p-lo", 0.5 * MBPS), ("480p", 1.0 * MBPS),
              ("720p-lo", 1.6 * MBPS), ("720p", 2.6 * MBPS),
              ("1080p", 3.8 * MBPS))
    return Video(
        video_id="n-test",
        duration=duration,
        encoding_rate_bps=3.8 * MBPS,
        resolution="1080p",
        container="silverlight",
        variants=ladder,
    )


def stream(video, application, service=Service.YOUTUBE, container=None,
           duration=120.0, profile=FAST, seed=5, **kw):
    config = SessionConfig(profile=profile, service=service,
                           application=application, container=container,
                           capture_duration=duration, seed=seed, **kw)
    return run_session(video, config)


class TestFlashSessions:
    def test_short_onoff_with_64kb_blocks(self):
        res = stream(yt_video(), Application.FIREFOX)
        ana = analyze_session(res)
        assert ana.strategy is StreamingStrategy.SHORT_ONOFF
        assert median(ana.block_sizes) == pytest.approx(64 * KB, rel=0.1)

    def test_buffering_is_40s_of_playback(self):
        res = stream(yt_video(rate_mbps=0.8), Application.CHROME)
        ana = analyze_session(res)
        assert ana.buffering_playback_s == pytest.approx(40.0, rel=0.15)

    def test_accumulation_ratio_1_25(self):
        res = stream(yt_video(), Application.INTERNET_EXPLORER)
        ana = analyze_session(res)
        assert ana.accumulation_ratio == pytest.approx(1.25, rel=0.1)

    def test_rate_recovered_from_flv_header(self):
        res = stream(yt_video(rate_mbps=1.2), Application.FIREFOX)
        ana = analyze_session(res)
        assert ana.rate_estimate.method == "flv-header"
        assert ana.rate_estimate.rate_bps == pytest.approx(1.2 * MBPS)

    def test_identical_across_browsers(self):
        """Flash is server-paced: the browser must not matter (Table 1)."""
        strategies = set()
        for app in (Application.INTERNET_EXPLORER, Application.FIREFOX,
                    Application.CHROME):
            ana = analyze_session(stream(yt_video(), app))
            strategies.add(ana.strategy)
        assert strategies == {StreamingStrategy.SHORT_ONOFF}


class TestHtml5Sessions:
    def big_webm(self, rate_mbps=2.0):
        return yt_video(rate_mbps=rate_mbps, duration=300.0, container="webm")

    def test_ie_short_onoff_256kb(self):
        res = stream(self.big_webm(), Application.INTERNET_EXPLORER)
        ana = analyze_session(res)
        assert ana.strategy is StreamingStrategy.SHORT_ONOFF
        assert median(ana.block_sizes) == pytest.approx(256 * KB, rel=0.15)

    def test_ie_rate_estimated_from_content_length(self):
        res = stream(self.big_webm(rate_mbps=1.5), Application.INTERNET_EXPLORER)
        ana = analyze_session(res)
        assert ana.rate_estimate.method == "content-length"
        assert ana.rate_estimate.rate_bps == pytest.approx(1.5 * MBPS, rel=0.01)

    def test_firefox_no_onoff(self):
        res = stream(self.big_webm(), Application.FIREFOX)
        ana = analyze_session(res)
        assert ana.strategy is StreamingStrategy.NO_ONOFF
        assert not ana.phases.has_steady_state

    def test_chrome_long_onoff(self):
        res = stream(self.big_webm(), Application.CHROME, duration=150.0)
        ana = analyze_session(res)
        assert ana.strategy is StreamingStrategy.LONG_ONOFF
        assert median(ana.block_sizes) > 2.5 * MB

    def test_android_long_onoff_smaller_buffer(self):
        res = stream(self.big_webm(), Application.ANDROID, duration=150.0)
        ana = analyze_session(res)
        assert ana.strategy is StreamingStrategy.LONG_ONOFF
        assert ana.buffering_bytes < 10 * MB

    def test_ie_buffers_10_to_15_mb(self):
        res = stream(self.big_webm(), Application.INTERNET_EXPLORER)
        ana = analyze_session(res)
        assert 9 * MB <= ana.buffering_bytes <= 17 * MB

    def test_small_video_never_leaves_buffering(self):
        """A video smaller than the buffer target is a plain file transfer."""
        tiny = yt_video(rate_mbps=0.5, duration=60.0, container="webm")
        res = stream(tiny, Application.CHROME)
        ana = analyze_session(res)
        assert ana.strategy is StreamingStrategy.NO_ONOFF


class TestHdSessions:
    def test_hd_is_bulk_regardless_of_browser(self):
        video = yt_video(rate_mbps=3.5, duration=90.0, resolution="720p")
        for app in (Application.FIREFOX, Application.CHROME):
            res = stream(video, app, container=Container.FLASH_HD)
            ana = analyze_session(res)
            assert ana.strategy is StreamingStrategy.NO_ONOFF

    def test_hd_download_rate_tracks_bandwidth_not_encoding(self):
        video = yt_video(rate_mbps=2.0, duration=60.0, resolution="720p")
        res = stream(video, Application.FIREFOX, container=Container.FLASH_HD)
        ana = analyze_session(res)
        rate = ana.trace.download_rate_bps()
        assert rate > 3 * video.encoding_rate_bps  # link-limited, not paced


class TestIpadSessions:
    def test_mixed_strategy_high_rate(self):
        video = yt_video(rate_mbps=2.2, duration=300.0, container="webm")
        res = stream(video, Application.IOS, duration=150.0)
        ana = analyze_session(res, use_true_rate=True)
        assert ana.strategy in (StreamingStrategy.MIXED,
                                StreamingStrategy.SHORT_ONOFF,
                                StreamingStrategy.LONG_ONOFF)
        assert res.connections_opened > 10  # many successive connections

    def test_low_rate_uses_single_connection(self):
        video = Video(video_id="v-low", duration=400.0,
                      encoding_rate_bps=0.5 * MBPS, resolution="240p",
                      container="webm")
        res = stream(video, Application.IOS, duration=120.0)
        assert res.connections_opened <= 2


class TestNetflixSessions:
    def test_pc_short_onoff_many_connections(self):
        res = stream(nf_video(), Application.FIREFOX, service=Service.NETFLIX,
                     duration=120.0)
        ana = analyze_session(res)
        assert ana.strategy is StreamingStrategy.SHORT_ONOFF
        assert res.connections_opened > 10
        assert all(b < 2.5 * MB for b in ana.block_sizes)

    def test_pc_buffering_tens_of_mb(self):
        res = stream(nf_video(), Application.FIREFOX, service=Service.NETFLIX,
                     duration=120.0)
        ana = analyze_session(res)
        assert 35 * MB < ana.buffering_bytes < 65 * MB

    def test_ipad_buffers_less_than_pc(self):
        pc = analyze_session(stream(nf_video(), Application.FIREFOX,
                                    service=Service.NETFLIX, duration=100.0))
        ipad = analyze_session(stream(nf_video(), Application.IOS,
                                      service=Service.NETFLIX, duration=100.0))
        assert ipad.buffering_bytes < pc.buffering_bytes / 2

    def test_android_long_onoff_single_data_conn(self):
        res = stream(nf_video(), Application.ANDROID, service=Service.NETFLIX,
                     duration=150.0)
        ana = analyze_session(res)
        assert ana.strategy is StreamingStrategy.LONG_ONOFF
        assert res.connections_opened <= 7  # 5 buffering + 1 steady


class TestInterruption:
    def test_watching_fraction_stops_download(self):
        video = yt_video(rate_mbps=1.0, duration=300.0)
        full = stream(video, Application.FIREFOX, duration=170.0)
        cut = stream(video, Application.FIREFOX, duration=170.0,
                     watch_fraction=0.2)
        assert cut.interrupted
        assert not full.interrupted
        assert cut.downloaded < full.downloaded

    def test_unused_bytes_accounted(self):
        video = yt_video(rate_mbps=1.0, duration=300.0)
        cut = stream(video, Application.FIREFOX, duration=120.0,
                     watch_fraction=0.2)
        assert cut.unused_bytes > 0
        consumed = cut.playback_position_s * video.encoding_rate_bps / 8
        assert cut.unused_bytes == pytest.approx(cut.downloaded - consumed,
                                                 rel=0.01)

    def test_buffer_probe_series(self):
        video = yt_video(rate_mbps=1.0, duration=120.0)
        res = stream(video, Application.FIREFOX, duration=60.0,
                     probe_period=1.0)
        assert res.buffer_series is not None
        assert len(res.buffer_series) >= 55
        assert res.buffer_series.max() > 0


class TestReceiveWindowEvolution:
    def test_ie_window_periodically_empties(self):
        """Figure 2(b): IE's advertised window oscillates to ~zero."""
        video = yt_video(rate_mbps=2.0, duration=300.0, container="webm")
        res = stream(video, Application.INTERNET_EXPLORER, duration=90.0)
        ana = analyze_session(res)
        windows = ana.trace.window_series.values
        steady = windows[len(windows) // 2:]
        assert min(steady) < 64 * KB       # drains
        assert max(steady) > 256 * KB      # reopens

    def test_flash_window_stays_open(self):
        """Figure 2(b): no client throttling for Flash."""
        video = yt_video(rate_mbps=1.0, duration=300.0)
        res = stream(video, Application.INTERNET_EXPLORER, duration=90.0)
        ana = analyze_session(res)
        windows = ana.trace.window_series.values
        steady = windows[len(windows) // 2:]
        assert min(steady) > 128 * KB


class TestAdaptiveNetflix:
    """Akhshabi-style rendition adaptation (cited in Section 5)."""

    def _run(self, bandwidth_bps, capture):
        from repro.simnet import ACADEMIC

        profile = ACADEMIC.with_bandwidth(bandwidth_bps)
        return stream(nf_video(), Application.FIREFOX,
                      service=Service.NETFLIX, profile=profile,
                      duration=capture)

    def test_fast_path_keeps_top_rendition(self):
        res = self._run(30e6, 90.0)
        assert res.playback_rate_bps == pytest.approx(3.8 * MBPS)

    def test_constrained_path_downshifts(self):
        res = self._run(3e6, 240.0)
        assert res.playback_rate_bps < 3.8 * MBPS
        # the selected rendition actually fits the pipe
        assert res.playback_rate_bps <= 3e6

    def test_very_slow_path_picks_low_ladder_rung(self):
        res = self._run(1.5e6, 420.0)
        assert res.playback_rate_bps <= 1.5e6
