"""Tests for the video server, HTTP plumbing and policy lookup."""

import pytest

from repro.http import parse_response_head
from repro.simnet import NetworkProfile, build_client_server
from repro.streaming import (
    Application,
    Container,
    FLASH_SERVER,
    BULK_SERVER,
    RANGE_SERVER,
    Service,
    ServerPolicy,
    UnsupportedCombination,
    VideoServer,
    client_policy_for,
    container_for_video,
    parse_video_path,
    server_policy_for,
    video_path,
)
from repro.tcp import TcpConfig, TcpConnection
from repro.workloads import MBPS, Video

CLEAN = NetworkProfile(
    name="Clean", down_bps=20e6, up_bps=20e6, rtt=0.02, loss_down=0.0,
    buffer_bytes=512 * 1024,
)


def make_video(**kw):
    defaults = dict(video_id="vid1", duration=60.0, encoding_rate_bps=1 * MBPS,
                    resolution="360p", container="flv")
    defaults.update(kw)
    return Video(**defaults)


def fetch(video, path, *, range_header=None, horizon=60.0, policy=None):
    """Issue one request against a VideoServer; return (head, body_len)."""
    net, client_host, server_host, _ = build_client_server(CLEAN, seed=1)
    VideoServer(server_host, net.scheduler, {video.video_id: video},
                policy_override=policy)
    conn = TcpConnection(client_host, net.scheduler,
                         client_host.allocate_port(), server_host.ip, 80)
    collected = bytearray()

    def on_data(c):
        collected.extend(c.recv(1 << 22))

    conn.on_data = on_data

    def send(c):
        request = f"GET {path} HTTP/1.1\r\nHost: x\r\n"
        if range_header:
            request += f"Range: {range_header}\r\n"
        request += "\r\n"
        c.send(request.encode())

    conn.on_connected = send
    conn.connect()
    net.run_until(horizon)
    parsed = parse_response_head(bytes(collected))
    assert parsed is not None, "no complete response head received"
    head, consumed = parsed
    return head, len(collected) - consumed


class TestVideoPath:
    def test_round_trip_without_rate(self):
        assert parse_video_path(video_path("abc")) == ("abc", None)

    def test_round_trip_with_rate(self):
        vid, rate = parse_video_path(video_path("abc", 1_500_000.25))
        assert vid == "abc"
        assert rate == 1_500_000.25

    def test_rejects_other_paths(self):
        with pytest.raises(ValueError):
            parse_video_path("/favicon.ico")


class TestServerPolicyLookup:
    def test_flash_is_paced(self):
        assert server_policy_for(Container.FLASH) is FLASH_SERVER

    def test_hd_and_html5_are_bulk(self):
        assert server_policy_for(Container.FLASH_HD) is BULK_SERVER
        assert server_policy_for(Container.HTML5) is BULK_SERVER

    def test_silverlight_is_range(self):
        assert server_policy_for(Container.SILVERLIGHT) is RANGE_SERVER

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ServerPolicy(mode="magic")
        with pytest.raises(ValueError):
            ServerPolicy(mode="paced", accumulation_ratio=0.9)
        with pytest.raises(ValueError):
            ServerPolicy(mode="paced", block_bytes=0)


class TestClientPolicyLookup:
    def test_every_table1_cell_has_a_policy(self):
        from repro.streaming import TABLE1_EXPECTED

        for service, container, application in TABLE1_EXPECTED:
            assert client_policy_for(service, container, application) is not None

    def test_mobile_flash_unsupported(self):
        with pytest.raises(UnsupportedCombination):
            client_policy_for(Service.YOUTUBE, Container.FLASH, Application.IOS)

    def test_netflix_requires_silverlight(self):
        with pytest.raises(UnsupportedCombination):
            client_policy_for(Service.NETFLIX, Container.HTML5,
                              Application.FIREFOX)


class TestContainerForVideo:
    def test_webm_maps_to_html5(self):
        video = make_video(container="webm")
        assert container_for_video(video, Service.YOUTUBE) is Container.HTML5

    def test_flv_720p_maps_to_hd(self):
        video = make_video(resolution="720p")
        assert container_for_video(video, Service.YOUTUBE) is Container.FLASH_HD

    def test_flv_default_maps_to_flash(self):
        assert container_for_video(make_video(), Service.YOUTUBE) is Container.FLASH

    def test_netflix_always_silverlight(self):
        video = make_video(container="silverlight")
        assert container_for_video(video, Service.NETFLIX) is Container.SILVERLIGHT


class TestServerResponses:
    def test_full_response_content_length(self):
        video = make_video(duration=10.0)  # small: 1.25 MB
        head, body = fetch(video, video_path("vid1"), policy=BULK_SERVER)
        assert head.status == 200
        expected = 32 + video.size_bytes  # container header + media
        assert head.content_length == expected
        assert body == expected

    def test_flv_header_at_stream_start(self):
        video = make_video(duration=5.0)
        net, client_host, server_host, _ = build_client_server(CLEAN, seed=1)
        VideoServer(server_host, net.scheduler, {video.video_id: video},
                    policy_override=BULK_SERVER)
        conn = TcpConnection(client_host, net.scheduler,
                             client_host.allocate_port(), server_host.ip, 80)
        collected = bytearray()
        conn.on_data = lambda c: collected.extend(c.recv(1 << 22))
        conn.on_connected = lambda c: c.send(
            f"GET {video_path('vid1')} HTTP/1.1\r\n\r\n".encode())
        conn.connect()
        net.run_until(30.0)
        parsed = parse_response_head(bytes(collected))
        _head, consumed = parsed
        from repro.http import parse_container_header

        meta = parse_container_header(bytes(collected[consumed:]))
        assert meta.container == "flv"
        assert meta.encoding_rate_bps == pytest.approx(video.encoding_rate_bps)
        assert meta.duration == pytest.approx(video.duration)

    def test_range_request_served_exactly(self):
        video = make_video(duration=60.0, container="silverlight")
        head, body = fetch(video, video_path("vid1"),
                           range_header="bytes=1000-65999")
        assert head.status == 206
        assert head.content_length == 65000
        assert body == 65000
        assert head.headers.get("Content-Range").startswith("bytes 1000-65999/")

    def test_unsatisfiable_range_416(self):
        video = make_video(duration=1.0, container="silverlight")
        head, _ = fetch(video, video_path("vid1"),
                        range_header="bytes=999999999-999999999")
        assert head.status == 416

    def test_unknown_video_404(self):
        video = make_video()
        head, _ = fetch(video, video_path("nope"))
        assert head.status == 404

    def test_rendition_selects_size(self):
        video = make_video(duration=80.0, container="silverlight",
                           variants=(("480p", 0.5 * MBPS),))
        head, _ = fetch(video, video_path("vid1", 0.5 * MBPS),
                        range_header="bytes=0-0")
        # total behind the Content-Range should be the rendition size
        total = int(head.headers.get("Content-Range").split("/")[1])
        assert total == video.size_bytes_at(0.5 * MBPS)

    def test_paced_mode_spreads_transfer_in_time(self):
        video = make_video(duration=120.0)  # 15 MB at 1 Mbps
        net, client_host, server_host, _ = build_client_server(CLEAN, seed=1)
        VideoServer(server_host, net.scheduler, {video.video_id: video})
        conn = TcpConnection(client_host, net.scheduler,
                             client_host.allocate_port(), server_host.ip, 80,
                             config=TcpConfig(recv_buffer=1 << 20))
        got = {"n": 0}
        conn.on_data = lambda c: got.__setitem__("n", got["n"] + c.recv_discard(1 << 22))
        conn.on_connected = lambda c: c.send(
            f"GET {video_path('vid1')} HTTP/1.1\r\n\r\n".encode())
        conn.connect()
        net.run_until(10.0)
        early = got["n"]
        # ~40 s of playback pushed up front, plus ~10 s of blocks paced at
        # 1.25x the encoding rate
        buffering = 40 * video.encoding_rate_bps / 8
        paced = 10 * 1.25 * video.encoding_rate_bps / 8
        assert early < buffering + paced + 256 * 1024
        net.run_until(60.0)
        assert got["n"] > early  # pacing continued
