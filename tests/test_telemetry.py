"""Tests for the telemetry/profiling layer.

Covers the three public guarantees — ``jobs=N`` telemetry identical to
``jobs=1`` (counters, histograms, events merge in plan order), the
disabled recorder costs nothing and records nothing, and report output
is byte-identical with recording on or off — plus the recorder/exporter
semantics and the ``repro profile`` CLI.
"""

import json

import pytest

from repro.cli import main
from repro.experiments import Scale, fig2
from repro.runner import engine_options
from repro.simnet import RESEARCH
from repro.streaming import Application, Container, Service, SessionConfig, run_session
from repro.telemetry import (
    NULL,
    EventRecord,
    HistogramSummary,
    NullRecorder,
    Recorder,
    aggregate_spans,
    current_recorder,
    recording,
    summarize,
    use_recorder,
    write_jsonl,
)
from repro.workloads import MBPS, Video

#: Same tiny scale as test_runner, for suite latency.
TINY = Scale(name="tiny", sessions_per_cell=3, capture_duration=90.0,
             catalog_scale=0.02, mc_horizon=4000.0)


def _video():
    return Video(video_id="v-tel", duration=300.0, encoding_rate_bps=MBPS,
                 resolution="360p", container="flv")


def _config(**kw):
    return SessionConfig(profile=RESEARCH, service=Service.YOUTUBE,
                         application=Application.FIREFOX,
                         container=Container.FLASH,
                         capture_duration=60.0, seed=3, **kw)


class TestRecorder:
    def test_default_recorder_is_disabled(self):
        rec = current_recorder()
        assert rec is NULL
        assert rec.enabled is False

    def test_null_recorder_accepts_everything_and_stays_empty(self):
        rec = NullRecorder()
        with rec.span("a"):
            rec.inc("c")
            rec.gauge("g", 1.0)
            rec.observe("h", 2.0)
            rec.event("e", t=0.0, k="v")
        assert rec.snapshot().empty

    def test_span_paths_nest(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        # children close before the parent, depth via the path
        assert [s.path for s in rec.spans] == \
            ["outer/inner", "outer/inner", "outer"]
        assert all(s.duration >= 0 for s in rec.spans)

    def test_counters_gauges_histograms_events(self):
        rec = Recorder()
        rec.inc("c")
        rec.inc("c", 4)
        rec.gauge("g", 1.0)
        rec.gauge("g", 2.0)           # last write wins
        rec.observe("h", 1.0)
        rec.observe("h", 3.0)
        rec.event("e", t=1.5, reason="x")
        snap = rec.snapshot()
        assert snap.counters == {"c": 5}
        assert snap.gauges == {"g": 2.0}
        assert snap.histograms["h"].count == 2
        assert snap.histograms["h"].mean == 2.0
        assert snap.histograms["h"].min == 1.0
        assert snap.histograms["h"].max == 3.0
        assert snap.events == [EventRecord.make("e", t=1.5, reason="x")]

    def test_event_fields_are_order_insensitive(self):
        assert EventRecord.make("e", a=1, b=2) == EventRecord.make("e", b=2, a=1)

    def test_histogram_merge(self):
        a = HistogramSummary()
        b = HistogramSummary()
        a.observe(1.0)
        b.observe(5.0)
        b.observe(3.0)
        a.merge(b)
        assert (a.count, a.total, a.min, a.max) == (3, 9.0, 1.0, 5.0)

    def test_histogram_percentile_empty_is_none(self):
        h = HistogramSummary()
        assert h.percentile(50) is None
        assert h.percentile(99) is None

    def test_histogram_percentile_single_sample(self):
        h = HistogramSummary()
        h.observe(7.0)
        assert h.percentile(0) == 7.0
        assert h.percentile(50) == 7.0
        assert h.percentile(100) == 7.0

    def test_histogram_percentile_interpolates(self):
        h = HistogramSummary()
        for v in (10.0, 20.0, 30.0, 40.0):
            h.observe(v)
        assert h.percentile(0) == 10.0
        assert h.percentile(50) == 25.0
        assert h.percentile(100) == 40.0

    def test_histogram_percentile_merge_order_irrelevant(self):
        a, b = HistogramSummary(), HistogramSummary()
        a.observe(3.0)
        b.observe(1.0)
        b.observe(2.0)
        a.merge(b)
        assert a.percentile(50) == 2.0

    def test_histogram_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            HistogramSummary().percentile(101)

    def test_snapshot_copies_samples(self):
        rec = Recorder()
        rec.observe("h", 1.0)
        snap = rec.snapshot()
        rec.observe("h", 100.0)
        assert snap.histograms["h"].samples == [1.0]
        assert snap.histograms["h"].percentile(95) == 1.0

    def test_merge_adds_counters_and_reroots_spans(self):
        child = Recorder()
        with child.span("work"):
            child.inc("n", 2)
            child.event("e", t=0.5)
        parent = Recorder()
        with parent.span("batch"):
            parent.inc("n", 1)
            parent.merge(child.snapshot())
        assert parent.counters == {"n": 3}
        # merged span paths are re-rooted under the open parent span
        assert "batch/work" in [s.path for s in parent.spans]
        assert parent.events == [EventRecord.make("e", t=0.5)]

    def test_use_recorder_scopes_and_restores(self):
        rec = Recorder()
        with use_recorder(rec):
            assert current_recorder() is rec
            with use_recorder(NULL):
                assert current_recorder() is NULL
            assert current_recorder() is rec
        assert current_recorder() is NULL

    def test_recording_installs_a_fresh_recorder(self):
        with recording() as rec:
            assert current_recorder() is rec
            assert rec.enabled
        assert not current_recorder().enabled


class TestSessionTelemetry:
    def test_disabled_by_default_and_attaches_nothing(self):
        result = run_session(_video(), _config())
        assert result.telemetry is None

    def test_recording_attaches_a_snapshot(self):
        with recording():
            result = run_session(_video(), _config())
        snap = result.telemetry
        assert snap is not None
        assert snap.counters["sessions.completed"] == 1
        assert snap.counters["tcp.segments_sent"] > 0
        assert snap.counters["scheduler.events"] > 0
        assert snap.counters["player.requests"] >= 1
        paths = [s.path for s in snap.spans]
        for phase in ("session/setup", "session/stream",
                      "session/finalize", "session"):
            assert phase in paths
        names = [e.name for e in snap.events]
        assert names[0] == "session.start"
        assert names[-1] == "session.end"
        # ON-block boundaries: Flash short cycles mean many range requests
        assert names.count("player.request") == snap.counters["player.requests"]

    def test_session_recorder_is_private(self):
        # a session must not leak its spans into the ambient recorder's
        # stack mid-flight; only the merged snapshot arrives
        with recording() as rec:
            run_session(_video(), _config())
            assert rec.current_path == ""

    def test_identical_telemetry_across_recorded_runs(self):
        with recording() as a:
            run_session(_video(), _config())
        with recording() as b:
            run_session(_video(), _config())
        assert a.counters == b.counters
        assert a.events == b.events
        assert {k: (h.count, h.total) for k, h in a.histograms.items()} == \
               {k: (h.count, h.total) for k, h in b.histograms.items()}


class TestEngineDeterminism:
    """jobs=N telemetry must equal jobs=1 telemetry exactly."""

    def test_jobs3_counters_and_events_match_jobs1(self):
        with recording() as serial:
            report1 = fig2.run(TINY, seed=0).report()
        with engine_options(jobs=3):
            with recording() as parallel:
                report3 = fig2.run(TINY, seed=0).report()
        assert report3 == report1
        assert parallel.counters == serial.counters
        assert parallel.events == serial.events
        assert {k: (h.count, h.total) for k, h in parallel.histograms.items()} \
            == {k: (h.count, h.total) for k, h in serial.histograms.items()}
        # merged session spans appear in plan order in both
        assert [s.path for s in parallel.spans if s.path.endswith("/session")] \
            == [s.path for s in serial.spans if s.path.endswith("/session")]

    def test_report_identical_with_telemetry_on_or_off(self):
        plain = fig2.run(TINY, seed=0).report()
        with recording():
            recorded = fig2.run(TINY, seed=0).report()
        assert recorded == plain

    def test_cache_round_trip_with_and_without_recording(self, tmp_path):
        # entries written with recording on replay correctly with it off,
        # and vice versa
        with engine_options(cache=tmp_path):
            with recording() as cold:
                first = fig2.run(TINY, seed=0).report()
            second = fig2.run(TINY, seed=0).report()
            with recording() as warm:
                third = fig2.run(TINY, seed=0).report()
        assert first == second == third
        assert cold.counters["engine.cache_misses"] > 0
        assert warm.counters["engine.cache_hits"] == \
            cold.counters["engine.cache_misses"]


class TestExporters:
    def _sample(self):
        rec = Recorder()
        with rec.span("run"):
            with rec.span("step"):
                rec.inc("n", 2)
                rec.observe("h", 1.5)
                rec.event("e", t=0.1, what="x")
        return rec

    def test_aggregate_spans_tree_order(self):
        rec = self._sample()
        rows = aggregate_spans(rec.spans)
        assert [(path, calls) for path, calls, _ in rows] == \
            [("run", 1), ("run/step", 1)]

    def test_aggregate_spans_materializes_missing_parents(self):
        rec = Recorder()
        with rec.span("a"):
            with rec.span("b"):
                pass
        # drop the root record: the parent must still appear as a node
        rows = aggregate_spans([s for s in rec.spans if s.path != "a"])
        assert [path for path, _, _ in rows] == ["a", "a/b"]

    def test_hot_spans_ranks_by_cumulative_time(self):
        from repro.telemetry import format_hot_spans, hot_spans

        rec = Recorder()
        with rec.span("outer"):
            with rec.span("hot"):
                pass
            with rec.span("hot"):
                pass
        rows = hot_spans(rec, top=10)
        # flat ranking by total descending; outer's wall time dominates
        assert rows[0][0] == "outer"
        paths = [path for path, _, _, _ in rows]
        assert "outer/hot" in paths
        hot_row = rows[paths.index("outer/hot")]
        assert hot_row[1] == 2                    # two calls aggregated
        assert hot_row[2] >= hot_row[3]           # total >= mean
        assert len(hot_spans(rec, top=1)) == 1    # top-N truncation
        text = format_hot_spans(rec, top=10)
        assert "hot spans" in text and "outer/hot" in text

    def test_hot_spans_empty(self):
        from repro.telemetry import format_hot_spans

        assert "no spans" in format_hot_spans(NULL.snapshot())

    def test_summarize_renders_all_sections(self):
        text = summarize(self._sample(), title="sample")
        for needle in ("sample", "run", "step", "n", "h", "e"):
            assert needle in text

    def test_summarize_empty_telemetry(self):
        assert "no telemetry" in summarize(NULL.snapshot())

    def test_write_jsonl_round_trips(self, tmp_path):
        rec = self._sample()
        path = tmp_path / "trace.jsonl"
        written = write_jsonl(rec, path)
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert len(lines) == written
        kinds = {line["kind"] for line in lines}
        assert kinds == {"span", "counter", "histogram", "event"}


class TestProfileCli:
    def test_profile_smoke(self, capsys, tmp_path):
        trace = tmp_path / "fig1.jsonl"
        rc = main(["profile", "fig1", "--trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        for needle in ("fig1", "Phases", "engine.run_sessions",
                       "sessions.completed", "tcp.segments_sent"):
            assert needle in out
        assert trace.exists() and trace.stat().st_size > 0

    def test_profile_unknown_experiment_rejected(self, capsys):
        rc = main(["profile", "fig99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_profile_top_prints_hot_span_table(self, capsys):
        rc = main(["profile", "fig1", "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hot spans (top" in out
        # flat paths, ranked: the root engine span must lead the table
        table = out[out.index("hot spans"):]
        assert "engine.run_sessions" in table.splitlines()[3]
