"""Tests for the report formatting helpers."""

from repro.analysis import Cdf, bytes_human, format_cdf, format_table, mbps


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(["A", "Blong"], [("x", 1), ("yy", 22)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("A")
        assert "-" in lines[2]
        # all rows share the header's column positions
        assert lines[3].index("1") == lines[1].index("Blong")

    def test_float_formatting(self):
        text = format_table(["v"], [(0.12345,), (1234.5,), (1.5,), (0,)])
        assert "0.1235" in text or "0.1234" in text
        assert "1234" in text  # large floats drop decimals
        assert "1.50" in text

    def test_handles_empty_rows(self):
        text = format_table(["A"], [])
        assert "A" in text


class TestFormatCdf:
    def test_quantile_rows(self):
        cdf = Cdf.from_samples(range(1, 101))
        text = format_cdf(cdf, label="sizes", unit="kB", points=4)
        assert "CDF of sizes" in text
        assert "p25" in text and "p100" in text

    def test_scaling(self):
        cdf = Cdf.from_samples([2048.0])
        text = format_cdf(cdf, label="x", scale=1 / 1024, points=1)
        assert "2.00" in text


class TestHumanUnits:
    def test_bytes_human(self):
        assert bytes_human(500) == "500 B"
        assert bytes_human(1536) == "1.5 kB"
        assert bytes_human(5 * 1024 * 1024) == "5.0 MB"
        assert bytes_human(3 * 1024 ** 3) == "3.0 GB"

    def test_mbps(self):
        assert mbps(2_500_000) == "2.50 Mbps"
