"""Tests for the run ledger and ``repro report`` rendering.

Half synthetic (a hand-built event stream exercises every loader and
renderer path: torn lines, schema checks, resume sequencing, worker
folding), half end-to-end: the acceptance test runs a real 4-shard
campaign with ``--health`` and renders the complete report from the
ledger it left behind.
"""

import json

import pytest

from repro.cli import main
from repro.obs import (
    LEDGER_SCHEMA,
    LedgerView,
    RunLedger,
    ledger_path,
    load_ledger,
    render_html,
    render_report,
    write_report,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt
        return self.now


def _write_campaign(path, clock=None):
    """A small, fully-populated campaign ledger (two workers, one of
    everything the report renders)."""
    clock = clock or FakeClock()
    ledger = RunLedger(path, meta={"experiment": "fig9", "scale": "small",
                                   "seed": 3}, clock=clock)
    ledger.event("campaign-started", experiment="fig9", jobs=2)
    ledger.event("scheduled", units=3, cache_hits=1)
    ledger.event("started", unit=0, label="u0", worker="w0")
    ledger.event("started", unit=1, label="u1", worker="w1")
    clock.advance(2.0)
    ledger.event("done", unit=0, worker="w0", latency_s=2.0)
    ledger.event("retried", unit=1, label="u1", worker="w1",
                 kind="crash", error="exit 9", attempts=1)
    ledger.event("suspect", kind="worker-lost", worker="w1", pid=77,
                 unit=1, age_s=0.4, detail="crash: exit 9")
    ledger.event("started", unit=1, label="u1", worker="w1")
    clock.advance(1.0)
    ledger.event("done", unit=1, worker="w1", latency_s=1.0)
    ledger.event("heartbeat-summary", parent_rss_kb=9000, workers=[
        {"worker": "w0", "pid": 50, "beats": 4, "rss_kb": 2048},
        {"worker": "w1", "pid": 77, "beats": 3, "rss_kb": 4096},
    ])
    ledger.event("merged", campaign="fig9", shard=0, of=2, units=2)
    ledger.event("campaign-finished", experiment="fig9", elapsed_s=3.0)
    ledger.close()
    return path


class TestRunLedger:
    def test_roundtrip_header_events_and_counts(self, tmp_path):
        path = _write_campaign(tmp_path / "run.jsonl")
        view = load_ledger(path)
        assert view.schema == LEDGER_SCHEMA
        assert view.meta == {"experiment": "fig9", "scale": "small",
                             "seed": 3}
        counts = view.counts()
        assert counts["started"] == 3
        assert counts["done"] == 2
        assert counts["retried"] == 1
        assert view.units_scheduled() == 3
        assert view.cache_hits() == 1
        assert view.unit_latencies() == [2.0, 1.0]
        assert [e["seq"] for e in view.events] == list(range(len(view.events)))

    def test_none_fields_are_dropped(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.jsonl")
        ledger.event("started", unit=0, key=None, worker="w0")
        ledger.close()
        line = (tmp_path / "run.jsonl").read_text().splitlines()[1]
        record = json.loads(line)
        assert "key" not in record
        assert record["worker"] == "w0"

    def test_loader_tolerates_torn_final_line(self, tmp_path):
        path = _write_campaign(tmp_path / "run.jsonl")
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"seq": 99, "ts": 123.0, "event": "do')  # the kill
        view = load_ledger(path)
        assert all(e["seq"] != 99 for e in view.events)
        assert view.counts()["done"] == 2

    def test_resume_terminates_torn_line_and_continues_seq(self, tmp_path):
        path = _write_campaign(tmp_path / "run.jsonl")
        last_seq = load_ledger(path).events[-1]["seq"]
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"torn')
        resumed = RunLedger(path)                 # fresh=False: append
        resumed.event("scheduled", units=1, cache_hits=1)
        resumed.close()
        view = load_ledger(path)
        assert view.events[-1]["event"] == "scheduled"
        assert view.events[-1]["seq"] == last_seq + 1
        assert view.units_scheduled() == 4

    def test_fresh_discards_previous_log(self, tmp_path):
        path = _write_campaign(tmp_path / "run.jsonl")
        ledger = RunLedger(path, meta={"experiment": "fig9"}, fresh=True)
        ledger.event("scheduled", units=1, cache_hits=0)
        ledger.close()
        view = load_ledger(path)
        assert view.counts() == {"scheduled": 1}
        assert view.events[0]["seq"] == 0

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "repro-ledger/v99", "meta": {}}\n')
        with pytest.raises(ValueError, match="repro-ledger/v99"):
            load_ledger(path)

    def test_for_campaign_names_by_fingerprint(self, tmp_path):
        ledger = RunLedger.for_campaign(tmp_path, "fig9", "small", 3)
        ledger.close()
        expected = ledger_path(tmp_path, "fig9", "small", 3)
        assert ledger.path == expected
        assert expected.exists()
        assert expected.parent.name == "ledger"
        # a different seed lands in a different file
        assert ledger_path(tmp_path, "fig9", "small", 4) != expected

    def test_workers_folds_unit_and_summary_events(self, tmp_path):
        view = load_ledger(_write_campaign(tmp_path / "run.jsonl"))
        workers = view.workers()
        assert set(workers) == {"w0", "w1"}
        assert workers["w0"]["done"] == 1
        assert workers["w0"]["busy_s"] == pytest.approx(2.0)
        assert workers["w0"]["pids"] == [50]
        assert workers["w0"]["rss_kb"] == 2048
        assert workers["w1"]["retried"] == 1
        assert workers["w1"]["suspicions"] == 1
        assert workers["w1"]["beats"] == 3


class TestRenderReport:
    def _view(self, tmp_path):
        return load_ledger(_write_campaign(tmp_path / "run.jsonl"))

    def test_contains_every_section(self, tmp_path):
        markdown = render_report(self._view(tmp_path))
        assert markdown.startswith("# Campaign report — fig9")
        for section in ("## Timeline", "## Workers", "## Unit latencies",
                        "## Failures", "## Health suspicions"):
            assert section in markdown
        assert "- Units: 3 scheduled (1 cache hits), 2 done, 1 retried" \
            in markdown
        assert "- Shards merged: 1" in markdown
        assert "| w1 |" in markdown
        assert "exit 9" in markdown

    def test_empty_ledger_renders_without_crashing(self, tmp_path):
        markdown = render_report(LedgerView(LEDGER_SCHEMA, {}, []))
        assert "(empty ledger)" in markdown

    def test_bench_history_section_is_optional(self, tmp_path):
        no_bench = render_report(self._view(tmp_path), bench_dir=tmp_path)
        assert "## Bench history" not in no_bench  # no BENCH_*.json there
        (tmp_path / "BENCH_abc1234.json").write_text(json.dumps({
            "schema": "repro-bench/v1", "git_sha": "abc1234",
            "entries": {"fig2": {"wall_s": 1.5}}}))
        with_bench = render_report(self._view(tmp_path), bench_dir=tmp_path)
        assert "## Bench history" in with_bench
        assert "abc1234" in with_bench

    def test_html_wraps_tables_and_escapes(self, tmp_path):
        markdown = render_report(self._view(tmp_path))
        html_doc = render_html(markdown, title='report <&> "x"')
        assert html_doc.startswith("<!DOCTYPE html>")
        assert "<table>" in html_doc and "<th>" in html_doc
        assert "report &lt;&amp;&gt;" in html_doc
        assert "<script" not in html_doc

    def test_write_report_dispatches_on_suffix(self, tmp_path):
        view = self._view(tmp_path)
        md_path = tmp_path / "out.md"
        html_path = tmp_path / "out.html"
        returned = write_report(view, md_path)
        assert md_path.read_text() == returned
        write_report(view, html_path)
        assert html_path.read_text().startswith("<!DOCTYPE html>")


class TestReportCli:
    def test_four_shard_campaign_reports_complete(self, tmp_path, capsys):
        """Acceptance: a sharded --health campaign leaves a ledger that
        `repro report` renders into a complete report."""
        cache = tmp_path / "cache"
        code = main(["experiment", "model_validation", "--scale", "small",
                     "--sessions", "8", "--shards", "4", "--jobs", "2",
                     "--cache-dir", str(cache), "--health"])
        assert code == 0
        capsys.readouterr()

        code = main(["report", "model_validation", "--cache-dir",
                     str(cache)])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("# Campaign report — model_validation")
        assert "## Timeline" in out
        assert "## Workers" in out
        assert "## Unit latencies" in out
        # 3 strategy campaigns × 4 shards each
        assert "- Shards merged: 12" in out
        assert "| w0 |" in out

    def test_report_out_renders_html(self, tmp_path, capsys):
        view_path = _write_campaign(tmp_path / "run.jsonl")
        out = tmp_path / "report.html"
        code = main(["report", "--ledger", str(view_path),
                     "--out", str(out)])
        assert code == 0
        assert out.read_text().startswith("<!DOCTYPE html>")
        assert "report written" in capsys.readouterr().out

    def test_report_without_ledger_or_cache_fails_cleanly(self, capsys,
                                                          monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code = main(["report", "fig2"])
        assert code == 2
        assert "cache dir" in capsys.readouterr().err

    def test_report_missing_ledger_fails_cleanly(self, tmp_path, capsys):
        code = main(["report", "fig2", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "repro report:" in capsys.readouterr().err
