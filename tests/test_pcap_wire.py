"""Tests for Ethernet/IPv4/TCP wire serialization."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pcap import ethernet, ipv4, tcpwire


class TestEthernet:
    def test_round_trip(self):
        dst = ethernet.mac_from_ip("10.0.0.1")
        src = ethernet.mac_from_ip("192.0.2.1")
        frame = ethernet.pack(dst, src, b"payload")
        d, s, ethertype, payload = ethernet.unpack(frame)
        assert (d, s, ethertype, payload) == (dst, src, 0x0800, b"payload")

    def test_mac_from_ip_deterministic_and_local(self):
        mac = ethernet.mac_from_ip("10.1.2.3")
        assert mac == bytes([0x02, 0x00, 10, 1, 2, 3])
        assert mac[0] & 0x02  # locally administered bit

    def test_mac_from_bad_ip(self):
        with pytest.raises(ethernet.EthernetError):
            ethernet.mac_from_ip("300.0.0.1")

    def test_short_frame_rejected(self):
        with pytest.raises(ethernet.EthernetError):
            ethernet.unpack(b"short")

    def test_bad_mac_length_rejected(self):
        with pytest.raises(ethernet.EthernetError):
            ethernet.pack(b"\x00" * 5, b"\x00" * 6, b"")


class TestIpv4:
    def test_round_trip(self):
        packet = ipv4.pack("10.0.0.1", "192.0.2.1", b"hello")
        src, dst, proto, payload = ipv4.unpack(packet)
        assert (src, dst, proto, payload) == ("10.0.0.1", "192.0.2.1", 6, b"hello")

    def test_checksum_is_valid(self):
        packet = ipv4.pack("10.0.0.1", "192.0.2.1", b"x" * 100)
        assert ipv4.checksum(packet[:20]) == 0

    def test_corrupted_header_detected(self):
        packet = bytearray(ipv4.pack("10.0.0.1", "192.0.2.1", b"x"))
        packet[8] ^= 0xFF  # flip TTL
        with pytest.raises(ipv4.Ipv4Error):
            ipv4.unpack(bytes(packet))

    def test_corruption_ignored_when_not_verifying(self):
        packet = bytearray(ipv4.pack("10.0.0.1", "192.0.2.1", b"x"))
        packet[8] ^= 0xFF
        ipv4.unpack(bytes(packet), verify_checksum=False)  # must not raise

    def test_total_length_bounds_payload(self):
        packet = ipv4.pack("10.0.0.1", "192.0.2.1", b"abc")
        # append trailing garbage (ethernet padding); parse must ignore it
        src, dst, proto, payload = ipv4.unpack(packet + b"\x00" * 6)
        assert payload == b"abc"

    def test_oversized_payload_rejected(self):
        with pytest.raises(ipv4.Ipv4Error):
            ipv4.pack("10.0.0.1", "192.0.2.1", b"x" * 65536)

    def test_checksum_rfc1071_known_vector(self):
        # classic example from RFC 1071 materials
        data = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
        assert ipv4.checksum(data) == 0

    def test_ip_string_round_trip(self):
        assert ipv4.bytes_to_ip(ipv4.ip_to_bytes("1.2.3.4")) == "1.2.3.4"

    @given(st.binary(max_size=200))
    def test_round_trip_arbitrary_payload(self, payload):
        packet = ipv4.pack("10.0.0.1", "192.0.2.1", payload)
        _, _, _, out = ipv4.unpack(packet)
        assert out == payload


class TestTcpWire:
    def test_round_trip_plain(self):
        raw = tcpwire.pack(
            "10.0.0.1", "192.0.2.1", 49152, 80,
            seq=1000, ack=2000, flags=tcpwire.ACK | tcpwire.PSH,
            window=500, payload=b"GET /",
        )
        seg = tcpwire.unpack("10.0.0.1", "192.0.2.1", raw)
        assert seg.src_port == 49152
        assert seg.dst_port == 80
        assert seg.seq == 1000
        assert seg.ack == 2000
        assert seg.flags == tcpwire.ACK | tcpwire.PSH
        assert seg.window_raw == 500
        assert seg.payload == b"GET /"

    def test_syn_options_round_trip(self):
        raw = tcpwire.pack(
            "10.0.0.1", "192.0.2.1", 49152, 80,
            seq=0, ack=0, flags=tcpwire.SYN, window=65535,
            mss=1460, wscale=7,
        )
        seg = tcpwire.unpack("10.0.0.1", "192.0.2.1", raw)
        assert seg.mss == 1460
        assert seg.wscale == 7
        assert seg.flags & tcpwire.SYN

    def test_scaled_window(self):
        seg = tcpwire.WireSegment(1, 2, 0, 0, tcpwire.ACK, 100, b"")
        assert seg.scaled_window(7) == 100 << 7

    def test_syn_window_never_scaled(self):
        seg = tcpwire.WireSegment(1, 2, 0, 0, tcpwire.SYN, 100, b"")
        assert seg.scaled_window(7) == 100

    def test_checksum_detects_payload_corruption(self):
        raw = bytearray(tcpwire.pack(
            "10.0.0.1", "192.0.2.1", 1, 2,
            seq=5, ack=6, flags=tcpwire.ACK, window=10, payload=b"data",
        ))
        raw[-1] ^= 0xFF
        with pytest.raises(tcpwire.TcpWireError):
            tcpwire.unpack("10.0.0.1", "192.0.2.1", bytes(raw))

    def test_checksum_covers_pseudo_header(self):
        raw = tcpwire.pack("10.0.0.1", "192.0.2.1", 1, 2,
                           seq=5, ack=6, flags=tcpwire.ACK, window=10)
        with pytest.raises(tcpwire.TcpWireError):
            tcpwire.unpack("10.0.0.9", "192.0.2.1", raw)  # wrong src ip

    def test_sequence_wraps_32_bits(self):
        raw = tcpwire.pack("10.0.0.1", "192.0.2.1", 1, 2,
                           seq=(1 << 32) + 7, ack=0, flags=tcpwire.ACK, window=0)
        seg = tcpwire.unpack("10.0.0.1", "192.0.2.1", raw)
        assert seg.seq == 7

    def test_window_field_range_checked(self):
        with pytest.raises(tcpwire.TcpWireError):
            tcpwire.pack("10.0.0.1", "192.0.2.1", 1, 2,
                         seq=0, ack=0, flags=tcpwire.ACK, window=70000)

    def test_short_segment_rejected(self):
        with pytest.raises(tcpwire.TcpWireError):
            tcpwire.unpack("10.0.0.1", "192.0.2.1", b"tiny")

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=65535),
        st.binary(max_size=100),
    )
    def test_round_trip_arbitrary_fields(self, seq, ack, window, payload):
        raw = tcpwire.pack("10.0.0.1", "192.0.2.1", 1234, 80,
                           seq=seq, ack=ack, flags=tcpwire.ACK,
                           window=window, payload=payload)
        seg = tcpwire.unpack("10.0.0.1", "192.0.2.1", raw)
        assert (seg.seq, seg.ack, seg.window_raw, seg.payload) == (
            seq, ack, window, payload)
