"""Tests for pcap files and capture round trips."""

import io

import pytest

from repro.pcap import (
    PcapError,
    PcapReader,
    PcapWriter,
    TraceCapture,
    read_pcap,
    records_from_pcap,
    write_pcap,
)
from repro.simnet import NetworkProfile
from tests.conftest import run_bulk_transfer

CLEAN = NetworkProfile(
    name="Clean", down_bps=10e6, up_bps=10e6, rtt=0.02, loss_down=0.0,
    buffer_bytes=512 * 1024,
)
LOSSY = NetworkProfile(
    name="Lossy", down_bps=10e6, up_bps=10e6, rtt=0.02, loss_down=0.01,
    buffer_bytes=512 * 1024,
)


class TestPcapFile:
    def test_writer_reader_round_trip(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        writer.write_packet(1.5, b"frame-one")
        writer.write_packet(2.25, b"frame-two!")
        buf.seek(0)
        reader = PcapReader(buf)
        records = list(reader)
        assert [(t, d) for t, d, _ in records] == [
            (1.5, b"frame-one"), (2.25, b"frame-two!")]
        assert reader.linktype == 1
        assert reader.version_major == 2

    def test_snaplen_truncates_but_keeps_orig_len(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf, snaplen=4)
        writer.write_packet(0.0, b"longfra me")
        buf.seek(0)
        (_t, data, orig_len), = list(PcapReader(buf))
        assert data == b"long"
        assert orig_len == 10

    def test_microsecond_precision(self):
        buf = io.BytesIO()
        PcapWriter(buf).write_packet(123.456789, b"x")
        buf.seek(0)
        (t, _, _), = list(PcapReader(buf))
        assert t == pytest.approx(123.456789, abs=1e-6)

    def test_bad_magic_rejected(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_header_rejected(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xa1\xb2"))

    def test_negative_timestamp_rejected(self):
        writer = PcapWriter(io.BytesIO())
        with pytest.raises(PcapError):
            writer.write_packet(-1.0, b"x")

    def test_file_helpers(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        n = write_pcap(path, [(0.0, b"aa"), (1.0, b"bb")])
        assert n == 2
        records = read_pcap(path)
        assert [d for _, d, _ in records] == [b"aa", b"bb"]


def captured_transfer(profile=CLEAN, nbytes=200_000, seed=1, header=b""):
    """Run a bulk transfer with a TraceCapture attached to both directions."""
    from repro.simnet import build_client_server
    from repro.tcp import TcpConnection, TcpListener

    net, client_host, server_host, path = build_client_server(profile, seed=seed)
    capture = TraceCapture().attach(path)
    state = {}

    def on_accept(conn):
        state["server"] = conn

        def on_data(c):
            if c.recv(4096):
                if header:
                    c.send(header)
                c.send_virtual(nbytes - len(header))
                c.close()

        conn.on_data = on_data

    TcpListener(server_host, net.scheduler, 80, on_accept)
    client = TcpConnection(client_host, net.scheduler,
                           client_host.allocate_port(), server_host.ip, 80)
    client.on_data = lambda c: c.recv_discard(1 << 22)
    client.on_connected = lambda c: c.send(b"GET /v HTTP/1.1\r\n\r\n")
    client.connect()
    net.run_until(120.0)
    return capture


class TestTraceCapture:
    def test_capture_sees_both_directions(self):
        capture = captured_transfer()
        records = capture.records
        directions = {r.src_ip for r in records}
        assert directions == {"10.0.0.1", "192.0.2.1"}

    def test_data_bytes_accounted(self):
        capture = captured_transfer(nbytes=200_000)
        down = [r for r in capture.records if r.src_ip == "192.0.2.1"]
        total_payload = sum(r.payload_len for r in down)
        assert total_payload >= 200_000  # >= because of retransmissions

    def test_records_sorted_by_time(self):
        records = captured_transfer().records
        times = [r.timestamp for r in records]
        assert times == sorted(times)

    def test_stop_freezes_capture(self):
        capture = TraceCapture()
        from repro.tcp import TcpSegment
        seg = TcpSegment("a", 1, "b", 2, seq=0)
        capture.tap(0.0, seg)
        capture.stop()
        capture.tap(1.0, seg)
        assert len(capture) == 1

    def test_syn_and_fin_present(self):
        records = captured_transfer().records
        assert any(r.is_syn for r in records)
        assert any(r.is_fin for r in records)


class TestPcapRoundTrip:
    def test_round_trip_preserves_every_field(self, tmp_path):
        capture = captured_transfer(nbytes=100_000, header=b"HTTP/1.1 200 OK\r\n\r\n")
        path = str(tmp_path / "session.pcap")
        n = capture.write_pcap(path)
        fast = capture.records
        parsed = records_from_pcap(path)
        assert n == len(fast) == len(parsed)
        for a, b in zip(fast, parsed):
            assert a.timestamp == pytest.approx(b.timestamp, abs=2e-6)
            assert (a.src_ip, a.src_port, a.dst_ip, a.dst_port) == (
                b.src_ip, b.src_port, b.dst_ip, b.dst_port)
            assert a.seq == b.seq
            assert a.ack == b.ack
            assert a.flags == b.flags
            assert a.payload_len == b.payload_len
            assert a.window == b.window
            assert a.wire_len == b.wire_len

    def test_round_trip_under_loss(self, tmp_path):
        capture = captured_transfer(profile=LOSSY, nbytes=300_000, seed=4)
        path = str(tmp_path / "lossy.pcap")
        capture.write_pcap(path)
        parsed = records_from_pcap(path)
        assert len(parsed) == len(capture.records)

    def test_snaplen_capture_still_parses(self, tmp_path):
        """Headers-only captures (tcpdump -s 96) must still be analyzable."""
        capture = captured_transfer(nbytes=100_000)
        path = str(tmp_path / "trunc.pcap")
        capture.write_pcap(path, snaplen=96)
        parsed = records_from_pcap(path)
        fast = capture.records
        assert len(parsed) == len(fast)
        for a, b in zip(fast, parsed):
            assert a.payload_len == b.payload_len  # from orig_len accounting
            assert a.seq == b.seq

    def test_real_payload_survives_round_trip(self, tmp_path):
        marker = b"HTTP/1.1 200 OK\r\nContent-Length: 99960\r\n\r\n"
        capture = captured_transfer(nbytes=100_000, header=marker)
        path = str(tmp_path / "payload.pcap")
        capture.write_pcap(path)
        parsed = records_from_pcap(path)
        blob = b"".join(r.payload or b"" for r in parsed
                        if r.src_ip == "192.0.2.1")
        assert marker in blob
