"""Tests for seeded RNG streams and the loss models."""

import random

import pytest

from repro.simnet import (
    BernoulliLoss,
    ConfigurationError,
    DeterministicLoss,
    GilbertElliottLoss,
    NoLoss,
    PredicateLoss,
    RngRegistry,
    derive_seed,
)


class TestRngRegistry:
    def test_same_name_same_stream(self):
        reg = RngRegistry(42)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_are_reproducible(self):
        r1 = RngRegistry(42).stream("loss")
        r2 = RngRegistry(42).stream("loss")
        assert [r1.random() for _ in range(5)] == [r2.random() for _ in range(5)]

    def test_different_names_differ(self):
        reg = RngRegistry(42)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_fork_derives_child_registry(self):
        parent = RngRegistry(7)
        child1 = parent.fork("exp1")
        child2 = parent.fork("exp1")
        assert child1.root_seed == child2.root_seed
        assert child1.root_seed != parent.root_seed

    def test_derive_seed_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        assert not any(model.should_drop() for _ in range(1000))


class TestBernoulliLoss:
    def test_zero_rate_never_drops(self):
        model = BernoulliLoss(0.0, random.Random(1))
        assert not any(model.should_drop() for _ in range(100))

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            BernoulliLoss(1.0, random.Random(1))
        with pytest.raises(ConfigurationError):
            BernoulliLoss(-0.1, random.Random(1))

    def test_empirical_rate_close_to_nominal(self):
        model = BernoulliLoss(0.1, random.Random(123))
        n = 20000
        drops = sum(model.should_drop() for _ in range(n))
        assert 0.08 < drops / n < 0.12

    def test_reproducible_with_seed(self):
        m1 = BernoulliLoss(0.3, random.Random(9))
        m2 = BernoulliLoss(0.3, random.Random(9))
        seq1 = [m1.should_drop() for _ in range(50)]
        seq2 = [m2.should_drop() for _ in range(50)]
        assert seq1 == seq2


class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(1.5, 0.5, random.Random(1))

    def test_all_good_never_drops(self):
        model = GilbertElliottLoss(0.0, 1.0, random.Random(1), loss_good=0.0)
        assert not any(model.should_drop() for _ in range(500))

    def test_steady_state_loss_formula(self):
        model = GilbertElliottLoss(0.1, 0.3, random.Random(1), loss_good=0.0, loss_bad=0.5)
        p_bad = 0.1 / 0.4
        assert model.steady_state_loss == pytest.approx(p_bad * 0.5)

    def test_empirical_matches_steady_state(self):
        model = GilbertElliottLoss(0.05, 0.2, random.Random(77), loss_good=0.01, loss_bad=0.4)
        n = 50000
        drops = sum(model.should_drop() for _ in range(n))
        assert drops / n == pytest.approx(model.steady_state_loss, rel=0.25)

    def test_reset_restores_good_state(self):
        model = GilbertElliottLoss(1.0, 0.0, random.Random(1), loss_bad=1.0)
        model.should_drop()  # forces transition to bad
        model.reset()
        assert model._bad is False

    def test_losses_are_bursty(self):
        """Mean burst length should exceed the Bernoulli expectation."""
        model = GilbertElliottLoss(0.01, 0.2, random.Random(5), loss_good=0.0, loss_bad=1.0)
        seq = [model.should_drop() for _ in range(50000)]
        bursts = []
        run = 0
        for drop in seq:
            if drop:
                run += 1
            elif run:
                bursts.append(run)
                run = 0
        assert bursts, "expected some losses"
        assert sum(bursts) / len(bursts) > 1.5


class TestDeterministicLoss:
    def test_drops_exact_indices(self):
        model = DeterministicLoss({1, 3})
        assert [model.should_drop() for _ in range(5)] == [False, True, False, True, False]

    def test_reset_restarts_counting(self):
        model = DeterministicLoss({0})
        assert model.should_drop() is True
        assert model.should_drop() is False
        model.reset()
        assert model.should_drop() is True


class TestPredicateLoss:
    def test_predicate_receives_index(self):
        model = PredicateLoss(lambda i: i % 2 == 0)
        assert [model.should_drop() for _ in range(4)] == [True, False, True, False]
