"""Tests for the distributed shard fabric: queue, worker, coordinator.

The load-bearing guarantees:

* **Lease protocol** — ``O_CREAT|O_EXCL`` claims are mutually
  exclusive; the lease *mtime* is the TTL authority (renewal is one
  ``utime``); an expired lease is stolen through an atomic rename so
  exactly one stealer wins and the previous holder is attributed;
  completion markers are write-once, so duplicate completions from a
  presumed-dead-but-slow worker are harmless.
* **Crash safety** — a worker that dies mid-shard (simulated here by a
  claim that never completes, aged past the TTL) loses nothing: the
  shard re-leases to a live worker, the re-lease lands in the run
  ledger with both identities, and artifacts already in the store are
  never re-simulated.
* **Byte-identity** — the coordinator commits the contiguous
  *plan-order* prefix to ``on_result``, so a distributed campaign's
  streamed reduction (and its exports, checked at the CLI level) is
  identical to the single-host sharded run.
* **Store atomicity** — many worker processes hammering one
  content-addressed store concurrently never produce a torn or corrupt
  entry (every ``get`` sees a complete value or a miss).

TTL expiry is simulated by back-dating the lease file's mtime with
``os.utime`` instead of sleeping, so the suite stays fast and exact.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import threading
import time
from types import SimpleNamespace

import pytest

from repro.obs.ledger import RunLedger, load_ledger
from repro.runner.cache import ResultCache
from repro.runner.dist import (
    DistPolicy,
    FileShardQueue,
    LeaseHeartbeat,
    WorkerOptions,
    make_queue,
    run_worker,
)
from repro.runner.pool import RunStats, engine_options
from repro.runner.sharding import (
    ShardResult,
    ShardSpec,
    ShardStore,
    _shard_call,
    run_shards,
    shard_fingerprint,
)
from repro.runner.supervise import (
    CampaignAborted,
    FailedUnit,
    RetryBudget,
    SupervisionPolicy,
)


# -- shard workers (module-level: payloads pickle by reference) --------------

def _moments_shard(start: int, count: int):
    """A deterministic, mergeable shard value: moments of a range."""
    from repro.stats import MomentAccumulator

    acc = MomentAccumulator()
    acc.add_many([float(v) for v in range(start, start + count)])
    return acc


def _boom_shard(start: int, count: int):
    raise RuntimeError(f"boom at {start}")


def _make_shards(n: int, units: int = 5, campaign: str = "dist-test",
                 fn=_moments_shard):
    """``(shards, keys)`` for an ``n``-shard synthetic campaign."""
    shards = [
        (ShardSpec(campaign=campaign, scale="small", seed=0, index=i,
                   of=n, units=units), (i * units, units))
        for i in range(n)
    ]
    keys = [shard_fingerprint(spec, fn, args) for spec, args in shards]
    return shards, keys


def _publish_all(queue, shards, keys, fn=_moments_shard):
    for (spec, args), key in zip(shards, keys):
        queue.publish(key, pickle.dumps((fn, spec, tuple(args)),
                                        protocol=pickle.HIGHEST_PROTOCOL))


def _age_lease(queue: FileShardQueue, key: str, seconds: float) -> None:
    """Back-date one lease's mtime: the deterministic TTL clock."""
    past = time.time() - seconds
    os.utime(queue._lease_path(key), (past, past))


def _moments_equal(a, b) -> bool:
    return (a.count, a.total, a.min, a.max) == \
        (b.count, b.total, b.min, b.max) and a.mean == b.mean \
        and a.m2 == b.m2


# -- the lease protocol ------------------------------------------------------

class TestFileShardQueue:
    def test_publish_is_idempotent_and_claims_follow_publish_order(
            self, tmp_path):
        queue = FileShardQueue(tmp_path, ttl=30)
        assert queue.publish("aaa", b"first")
        assert not queue.publish("aaa", b"changed")  # write-once
        queue.publish("bbb", b"second")
        assert queue.payload("aaa") == b"first"
        assert sorted(queue.pending()) == ["aaa", "bbb"]

        first = queue.claim("w0")
        second = queue.claim("w1")
        assert (first.key, first.payload) == ("aaa", b"first")
        assert second.key == "bbb"
        assert first.previous is None and second.previous is None

    def test_claim_is_mutually_exclusive(self, tmp_path):
        queue = FileShardQueue(tmp_path, ttl=30)
        queue.publish("aaa", b"x")
        assert queue.claim("w0") is not None
        # the only shard is leased to a live holder: nothing to claim
        assert queue.claim("w1") is None
        [lease] = queue.leases()
        assert lease.worker == "w0" and lease.key == "aaa"
        assert lease.pid == os.getpid()

    def test_expired_lease_is_stolen_with_attribution(self, tmp_path):
        queue = FileShardQueue(tmp_path, ttl=5)
        queue.publish("aaa", b"x")
        assert queue.claim("dead-worker") is not None
        _age_lease(queue, "aaa", seconds=6)  # past the 5s TTL

        stolen = queue.claim("rescuer")
        assert stolen is not None
        assert stolen.key == "aaa"
        assert stolen.previous == "dead-worker"
        [lease] = queue.leases()
        assert lease.worker == "rescuer"

        # completing a stolen shard durably attributes the dead holder,
        # so the coordinator can ledger the re-lease even if it never
        # observed the lease change between polls
        assert queue.complete("aaa", "rescuer", wall_s=0.25,
                              previous=stolen.previous)
        record = queue.done_record("aaa")
        assert record["worker"] == "rescuer"
        assert record["previous"] == "dead-worker"

    def test_renew_extends_the_ttl_and_rejects_non_holders(self, tmp_path):
        queue = FileShardQueue(tmp_path, ttl=5)
        queue.publish("aaa", b"x")
        queue.claim("w0")
        _age_lease(queue, "aaa", seconds=4)  # old, but not expired
        assert queue.renew("aaa", "w0")
        [lease] = queue.leases()
        assert lease.age_s < 1.0  # mtime touched: TTL restarted
        assert lease.renewals == 1
        assert not queue.renew("aaa", "somebody-else")

    def test_duplicate_completion_is_idempotent(self, tmp_path):
        queue = FileShardQueue(tmp_path, ttl=30)
        queue.publish("aaa", b"x")
        queue.claim("w0")
        assert queue.complete("aaa", "w0", wall_s=1.5)
        # the presumed-dead-but-slow holder finishing late loses the race
        assert not queue.complete("aaa", "w1", wall_s=9.9)
        assert queue.is_done("aaa")
        assert queue.done_record("aaa")["worker"] == "w0"
        assert queue.pending() == [] and queue.settled()
        assert queue.claim("w2") is None  # done shards are never re-leased

    def test_abandon_releases_only_the_holders_lease(self, tmp_path):
        queue = FileShardQueue(tmp_path, ttl=30)
        queue.publish("aaa", b"x")
        queue.claim("w0")
        queue.abandon("aaa", "intruder")  # not the holder: no-op
        assert queue.claim("w1") is None
        queue.abandon("aaa", "w0")
        # a clean abandon is not a steal: no previous-holder attribution
        reclaimed = queue.claim("w1")
        assert reclaimed is not None and reclaimed.previous is None

    def test_failure_markers_settle_the_shard(self, tmp_path):
        queue = FileShardQueue(tmp_path, ttl=30)
        queue.publish("aaa", b"x")
        queue.claim("w0")
        queue.fail("aaa", "w0", "division by zero", attempts=2)
        assert queue.pending() == [] and queue.settled()
        assert queue.claim("w1") is None
        record = queue.failures()["aaa"]
        assert record["error"] == "division by zero"
        assert record["attempts"] == 2
        assert queue.failure_record("aaa")["worker"] == "w0"

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            FileShardQueue(tmp_path, ttl=0)

    def test_make_queue_routes_paths_and_redis_urls(self, tmp_path):
        queue = make_queue(tmp_path / "q", ttl=7)
        assert isinstance(queue, FileShardQueue)
        assert queue.ttl == 7
        # redis is deliberately not installed: the stub must say so
        # loudly instead of half-working
        with pytest.raises(NotImplementedError):
            make_queue("redis://localhost:6379/0")

    def test_heartbeat_renews_while_running(self, tmp_path):
        queue = FileShardQueue(tmp_path, ttl=0.4)
        queue.publish("aaa", b"x")
        queue.claim("w0")
        with LeaseHeartbeat(queue, "aaa", "w0", interval=0.06):
            time.sleep(0.6)  # longer than the TTL: only renewal saves it
            [lease] = queue.leases()
            assert lease.age_s <= 0.4
            assert lease.renewals >= 2
        assert queue.claim("w1") is None  # never expired while beating


# -- the worker loop ---------------------------------------------------------

class TestWorker:
    def test_drain_executes_every_shard_into_the_store(self, tmp_path):
        shards, keys = _make_shards(4)
        queue = FileShardQueue(tmp_path / "q", ttl=30)
        _publish_all(queue, shards, keys)

        stats = run_worker(WorkerOptions(
            queue=str(tmp_path / "q"), cache_dir=str(tmp_path / "cache"),
            worker_id="w0", ttl=30, poll=0.01, drain=True, supervised=False))

        assert stats.claimed == 4 and stats.completed == 4
        assert stats.failed == 0 and stats.stolen == 0
        assert queue.settled()
        store = ShardStore(tmp_path / "cache")
        for (spec, args), key in zip(shards, keys):
            artifact = store.get(key)
            assert isinstance(artifact, ShardResult)
            assert artifact.shard == spec
            assert _moments_equal(artifact.value, _moments_shard(*args))
        assert "4 shards" in stats.summary()

    def test_max_shards_bounds_one_worker(self, tmp_path):
        shards, keys = _make_shards(3)
        queue = FileShardQueue(tmp_path / "q", ttl=30)
        _publish_all(queue, shards, keys)
        stats = run_worker(WorkerOptions(
            queue=str(tmp_path / "q"), cache_dir=str(tmp_path / "cache"),
            ttl=30, max_shards=2, supervised=False))
        assert stats.claimed == 2 and stats.completed == 2
        assert len(queue.pending()) == 1

    def test_worker_steals_an_expired_lease(self, tmp_path):
        shards, keys = _make_shards(1)
        queue = FileShardQueue(tmp_path / "q", ttl=5)
        _publish_all(queue, shards, keys)
        assert queue.claim("dead-worker") is not None  # dies mid-shard
        _age_lease(queue, keys[0], seconds=6)

        stats = run_worker(WorkerOptions(
            queue=str(tmp_path / "q"), cache_dir=str(tmp_path / "cache"),
            worker_id="rescuer", ttl=5, poll=0.01, drain=True,
            supervised=False))
        assert stats.completed == 1 and stats.stolen == 1
        assert queue.done_record(keys[0])["worker"] == "rescuer"

    def test_supervised_worker_quarantines_a_crashing_shard(self, tmp_path):
        shards, keys = _make_shards(1, fn=_boom_shard)
        queue = FileShardQueue(tmp_path / "q", ttl=30)
        _publish_all(queue, shards, keys, fn=_boom_shard)

        stats = run_worker(WorkerOptions(
            queue=str(tmp_path / "q"), cache_dir=str(tmp_path / "cache"),
            worker_id="w0", ttl=30, poll=0.01, drain=True, max_attempts=2))

        # the worker never aborts: the failure becomes a queue marker
        # for the coordinator to judge
        assert stats.failed == 1 and stats.completed == 0
        assert queue.settled()
        record = queue.failures()[keys[0]]
        assert "boom" in record["error"]
        assert record["attempts"] == 2


# -- the coordinator ---------------------------------------------------------

def _fleet_thread(queue_dir, cache_dir, *, worker_id, max_shards,
                  results=None):
    """An in-process 'remote' worker: polls until it has drained
    ``max_shards`` claims, like a worker on another host would."""
    def drain():
        stats = run_worker(WorkerOptions(
            queue=str(queue_dir), cache_dir=str(cache_dir),
            worker_id=worker_id, ttl=10, poll=0.01,
            max_shards=max_shards, supervised=False))
        if results is not None:
            results.append(stats)
    thread = threading.Thread(target=drain, daemon=True)
    thread.start()
    return thread


class TestCoordinator:
    def test_distributed_batch_matches_the_local_shard_path(self, tmp_path):
        shards, keys = _make_shards(6)

        local_stream = []
        with engine_options(cache=ResultCache(tmp_path / "local")):
            local = run_shards(_moments_shard, shards,
                               on_result=local_stream.append)

        dist_stream = []
        worker = _fleet_thread(tmp_path / "q", tmp_path / "dist",
                               worker_id="ext-w0", max_shards=6)
        with engine_options(
                cache=ResultCache(tmp_path / "dist"),
                dist=DistPolicy(queue=str(tmp_path / "q"), workers=0,
                                ttl=10, poll=0.02)):
            dist = run_shards(_moments_shard, shards,
                              on_result=dist_stream.append)
        worker.join(timeout=30)

        # same results, and the same *streaming order*: on_result sees
        # the plan-order prefix, never completion order
        assert [r.shard for r in dist] == [r.shard for r in local]
        assert [r.shard.index for r in dist_stream] == list(range(6))
        for mine, theirs in zip(dist, local):
            assert _moments_equal(mine.value, theirs.value)
        store = ShardStore(tmp_path / "dist")
        assert all(store.get(key) is not None for key in keys)

    def test_resumed_run_re_simulates_nothing_and_publishes_nothing(
            self, tmp_path):
        shards, keys = _make_shards(5)
        worker = _fleet_thread(tmp_path / "q", tmp_path / "cache",
                               worker_id="ext-w0", max_shards=5)
        with engine_options(
                cache=ResultCache(tmp_path / "cache"),
                dist=DistPolicy(queue=str(tmp_path / "q"), workers=0,
                                ttl=10, poll=0.02)):
            run_shards(_moments_shard, shards)
        worker.join(timeout=30)

        # second coordinator, fresh queue, *no workers anywhere*: every
        # artifact prefills from the store
        stats = RunStats()
        with engine_options(
                cache=ResultCache(tmp_path / "cache"), stats=stats,
                dist=DistPolicy(queue=str(tmp_path / "q2"), workers=0,
                                ttl=10, poll=0.02)):
            again = run_shards(_moments_shard, shards)
        assert stats.cache_hits == 5 and stats.cache_misses == 0
        assert [r.shard.index for r in again] == list(range(5))
        assert list((tmp_path / "q2" / "tasks").glob("*.task")) == []

    def test_dead_workers_shard_re_leases_with_ledger_attribution(
            self, tmp_path):
        """The crash-recovery story end to end: one artifact already
        landed (never re-simulated), one shard held by a dead worker
        (re-leased past the TTL, attributed), one ordinary shard."""
        shards, keys = _make_shards(3)
        store = ShardStore(tmp_path / "cache")
        queue = FileShardQueue(tmp_path / "q", ttl=1.0)

        # shard 0 landed before the crash; shards 1..2 are still queued
        store.put(keys[0], _shard_call((_moments_shard, *shards[0])))
        _publish_all(queue, shards[1:], keys[1:])
        claimed = queue.claim("doomed")   # the worker that will "die"
        assert claimed.key == keys[1]
        _age_lease(queue, keys[1], seconds=5)  # silent past the TTL

        def rescue():
            # let the coordinator observe the doomed lease first, and
            # keep the stolen lease visible for a few poll cycles so
            # the re-lease is witnessed, not inferred
            time.sleep(0.5)
            stolen = queue.claim("rescuer")
            assert stolen is not None and stolen.previous == "doomed"
            time.sleep(0.3)
            for key in (stolen.key, keys[2]):
                spec, args = shards[keys.index(key)]
                store.put(key, _shard_call((_moments_shard, spec, args)))
                queue.complete(key, "rescuer", wall_s=0.01)
                queue.claim("rescuer")

        thread = threading.Thread(target=rescue, daemon=True)
        thread.start()

        stats = RunStats()
        ledger = RunLedger(tmp_path / "run.jsonl",
                           meta={"experiment": "dist-test"})
        with ledger, engine_options(
                cache=ResultCache(tmp_path / "cache"), stats=stats,
                health=SimpleNamespace(ledger=ledger),
                dist=DistPolicy(queue=str(tmp_path / "q"), workers=0,
                                ttl=1.0, poll=0.05)):
            results = run_shards(_moments_shard, shards)
        thread.join(timeout=10)

        # zero re-simulation of the landed artifact, and full results
        assert stats.cache_hits == 1 and stats.cache_misses == 2
        assert [r.shard.index for r in results] == [0, 1, 2]

        view = load_ledger(tmp_path / "run.jsonl")
        [release] = view.releases()
        assert release["previous"] == "doomed"
        assert release["worker"] == "rescuer"
        assert release["unit"] == 1
        dist = view.distribution()
        assert dist["shards"] == 2 and dist["cache_hits"] == 1
        assert dist["re_leases"] == 1
        done_workers = {e.get("worker") for e in view.events
                       if e.get("event") == "done"}
        assert done_workers == {"rescuer"}

    def test_failed_shard_aborts_the_campaign_unless_degraded(
            self, tmp_path):
        shards, keys = _make_shards(2)
        queue = FileShardQueue(tmp_path / "q", ttl=30)
        # a worker already judged shard 1 unrunnable
        _publish_all(queue, shards, keys)
        queue.claim("w0")  # shard 0 — completed below
        store = ShardStore(tmp_path / "cache")
        store.put(keys[0], _shard_call((_moments_shard, *shards[0])))
        queue.complete(keys[0], "w0")
        queue.claim("w0")
        queue.fail(keys[1], "w0", "boom", attempts=1)

        policy = DistPolicy(queue=str(tmp_path / "q"), workers=0,
                            ttl=30, poll=0.02)
        with engine_options(cache=ResultCache(tmp_path / "cache"),
                            dist=policy):
            with pytest.raises(CampaignAborted) as excinfo:
                run_shards(_moments_shard, shards)
        [failure] = excinfo.value.report.failures
        assert failure.kind == "shard-failed" and "boom" in failure.error

        degrade = SupervisionPolicy(retry=RetryBudget(max_attempts=1),
                                    degrade=True)
        with engine_options(cache=ResultCache(tmp_path / "cache"),
                            dist=policy, supervision=degrade):
            results = run_shards(_moments_shard, shards)
        assert isinstance(results[0], ShardResult)
        assert isinstance(results[1], FailedUnit)

    def test_distributed_requires_a_shared_store(self, tmp_path):
        shards, _ = _make_shards(1)
        with engine_options(dist=DistPolicy(queue=str(tmp_path / "q"))):
            with pytest.raises(RuntimeError, match="shared artifact store"):
                run_shards(_moments_shard, shards)

    def test_policy_validates(self, tmp_path):
        with pytest.raises(ValueError):
            DistPolicy(queue=str(tmp_path), workers=-1)
        with pytest.raises(ValueError):
            DistPolicy(queue=str(tmp_path), ttl=0)


# -- concurrent store writers ------------------------------------------------

def _hammer_store(args):
    """One hammer process: racing put/get cycles over shared keys."""
    root, rounds = args
    cache = ResultCache(root)
    for i in range(rounds):
        key = f"{i % 16:02x}hammer{i % 16}"
        value = {"key": key, "payload": list(range(i % 16)), "pi": 3.14159}
        cache.put(key, value)
        seen = cache.get(key)
        # every writer writes the same value per key, so any complete
        # read equals it; a torn read would surface as a mismatch (or
        # as a quarantined-corrupt entry, checked by the parent)
        if seen != value:
            return f"torn read for {key}: {seen!r}"
    return None


class TestConcurrentStore:
    def test_eight_processes_hammering_one_store(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        root = tmp_path / "cache"
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=8) as pool:
            errors = pool.map(_hammer_store, [(str(root), 64)] * 8)
        assert [e for e in errors if e] == []

        cache = ResultCache(root)
        for i in range(16):
            key = f"{i:02x}hammer{i}"
            assert cache.get(key) == {"key": key,
                                      "payload": list(range(i)),
                                      "pi": 3.14159}
        stats = cache.stats()
        assert stats["entries"] == 16
        assert stats["corrupt"] == 0
        # no scratch files left behind either
        assert list(root.glob("**/.w*")) == []


# -- the CLI surface ---------------------------------------------------------

class TestDistCli:
    def test_shards_and_shard_size_are_exclusive(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["experiment", "model_validation", "--sessions", "8",
                     "--shards", "2", "--shard-size", "4",
                     "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "exclusive" in capsys.readouterr().err

    def test_distributed_requires_a_cache_dir(self, tmp_path, capsys,
                                              monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code = main(["experiment", "model_validation", "--sessions", "8",
                     "--distributed"])
        assert code == 2
        assert "cache" in capsys.readouterr().err

    def test_worker_requires_a_cache_dir(self, tmp_path, capsys,
                                         monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code = main(["worker", "--queue-dir", str(tmp_path / "q")])
        assert code == 2
        assert "cache" in capsys.readouterr().err

    def test_worker_cli_drains_a_queue(self, tmp_path, capsys):
        from repro.cli import main

        shards, keys = _make_shards(2)
        queue = FileShardQueue(tmp_path / "q", ttl=30)
        _publish_all(queue, shards, keys)
        code = main(["worker", "--queue-dir", str(tmp_path / "q"),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--worker-id", "cli-w0", "--drain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "worker cli-w0: 2 shards" in out
        assert queue.settled()
        store = ShardStore(tmp_path / "cache")
        assert all(store.get(key) is not None for key in keys)

    def test_distributed_campaign_is_byte_identical_to_single_host(
            self, tmp_path, capsys):
        """Acceptance: `--distributed --workers 2` (real subprocess
        workers over a shared queue dir) exports the same bytes as the
        plain single-host sharded run."""
        from repro.cli import main

        dist_agg = tmp_path / "dist.jsonl"
        local_agg = tmp_path / "local.jsonl"
        base = ["experiment", "model_validation", "--scale", "small",
                "--sessions", "24", "--shard-size", "8", "--seed", "3"]
        code = main(base + ["--cache-dir", str(tmp_path / "dist-cache"),
                            "--queue-dir", str(tmp_path / "q"),
                            "--distributed", "--workers", "2",
                            "--lease-ttl", "20",
                            "--aggregate", str(dist_agg)])
        assert code == 0
        dist_out = capsys.readouterr().out
        code = main(base + ["--cache-dir", str(tmp_path / "local-cache"),
                            "--aggregate", str(local_agg)])
        assert code == 0
        local_out = capsys.readouterr().out

        assert dist_agg.read_bytes() == local_agg.read_bytes()

        def report(text: str) -> str:
            # identical experiment reports; only the export-path line
            # (dist.jsonl vs local.jsonl) may differ
            return "\n".join(line for line in text.splitlines()
                             if ".jsonl" not in line)

        assert report(dist_out) == report(local_out)
        # both paths exercised real shards: 24 sessions / 8 per shard
        # = 3 shards per strategy campaign
        for line in dist_agg.read_text().splitlines():
            json.loads(line)  # every export line is whole
