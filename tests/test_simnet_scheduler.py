"""Tests for the simulation clock and event scheduler."""

import pytest

from repro.simnet import EventScheduler, SchedulingError, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(SchedulingError):
            SimClock(-1.0)

    def test_advances_forward(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_rejects_backwards_move(self):
        clock = SimClock(2.0)
        with pytest.raises(SchedulingError):
            clock.advance_to(1.0)

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock(2.0)
        clock.advance_to(2.0)
        assert clock.now() == 2.0


class TestEventScheduler:
    def test_fires_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.at(2.0, lambda: fired.append("b"))
        sched.at(1.0, lambda: fired.append("a"))
        sched.at(3.0, lambda: fired.append("c"))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        sched = EventScheduler()
        fired = []
        for name in "abcde":
            sched.at(1.0, lambda n=name: fired.append(n))
        sched.run()
        assert fired == list("abcde")

    def test_clock_advances_with_events(self):
        sched = EventScheduler()
        seen = []
        sched.at(1.5, lambda: seen.append(sched.clock.now()))
        sched.run()
        assert seen == [1.5]

    def test_after_schedules_relative(self):
        sched = EventScheduler()
        seen = []
        sched.at(1.0, lambda: sched.after(0.5, lambda: seen.append(sched.clock.now())))
        sched.run()
        assert seen == [1.5]

    def test_rejects_past_events(self):
        sched = EventScheduler()
        sched.at(1.0, lambda: None)
        sched.run()
        with pytest.raises(SchedulingError):
            sched.at(0.5, lambda: None)

    def test_rejects_negative_delay(self):
        sched = EventScheduler()
        with pytest.raises(SchedulingError):
            sched.after(-0.1, lambda: None)

    def test_cancel_prevents_firing(self):
        sched = EventScheduler()
        fired = []
        handle = sched.at(1.0, lambda: fired.append("x"))
        handle.cancel()
        sched.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sched = EventScheduler()
        handle = sched.at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_run_until_stops_at_horizon(self):
        sched = EventScheduler()
        fired = []
        sched.at(1.0, lambda: fired.append(1))
        sched.at(2.0, lambda: fired.append(2))
        n = sched.run_until(1.5)
        assert n == 1
        assert fired == [1]
        assert sched.clock.now() == 1.5

    def test_run_until_advances_clock_even_without_events(self):
        sched = EventScheduler()
        sched.run_until(10.0)
        assert sched.clock.now() == 10.0

    def test_run_until_inclusive_of_horizon_events(self):
        sched = EventScheduler()
        fired = []
        sched.at(2.0, lambda: fired.append(2))
        sched.run_until(2.0)
        assert fired == [2]

    def test_pending_counts_live_events(self):
        sched = EventScheduler()
        h1 = sched.at(1.0, lambda: None)
        sched.at(2.0, lambda: None)
        assert sched.pending == 2
        h1.cancel()
        assert sched.pending == 1

    def test_peek_time_skips_cancelled(self):
        sched = EventScheduler()
        h1 = sched.at(1.0, lambda: None)
        sched.at(2.0, lambda: None)
        h1.cancel()
        assert sched.peek_time() == 2.0

    def test_step_returns_false_when_empty(self):
        assert EventScheduler().step() is False

    def test_events_scheduled_during_run_fire(self):
        sched = EventScheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sched.after(1.0, lambda: chain(n + 1))

        sched.at(0.0, lambda: chain(0))
        sched.run()
        assert fired == [0, 1, 2, 3]
        assert sched.clock.now() == 3.0

    def test_max_events_bound(self):
        sched = EventScheduler()
        for i in range(10):
            sched.at(float(i), lambda: None)
        n = sched.run(max_events=4)
        assert n == 4
        assert sched.pending == 6

    def test_fired_counter(self):
        sched = EventScheduler()
        sched.at(1.0, lambda: None)
        sched.at(2.0, lambda: None)
        sched.run()
        assert sched.fired == 2

    def test_run_while_predicate(self):
        sched = EventScheduler()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            sched.after(1.0, tick)

        sched.at(0.0, tick)
        sched.run_while(lambda: count["n"] < 5, horizon=100.0)
        assert count["n"] == 5


class TestFastPathEdgeCases:
    """Edge cases of the tuple-entry fast path (PR 5).

    Cancellation is *lazy*: a cancelled handle stays in the heap until it
    surfaces, so every consumer (``peek_time``, ``step``, ``run_until``,
    ``run_while``) must skip corpses without firing them or counting them.
    """

    def test_cancelled_head_is_skipped_lazily_by_peek_and_run(self):
        sched = EventScheduler()
        fired = []
        h1 = sched.at(1.0, lambda: fired.append("cancelled"))
        sched.at(1.0, lambda: fired.append("live"))
        h2 = sched.at(2.0, lambda: fired.append("also-cancelled"))
        h1.cancel()
        h2.cancel()
        # peek sees through both corpses without disturbing order
        assert sched.peek_time() == 1.0
        assert sched.pending == 1
        n = sched.run_until(3.0)
        assert n == 1
        assert fired == ["live"]
        assert sched.pending == 0

    def test_peek_time_prunes_to_none_when_all_cancelled(self):
        sched = EventScheduler()
        handles = [sched.at(1.0, lambda: None) for _ in range(5)]
        for h in handles:
            h.cancel()
        assert sched.peek_time() is None
        assert sched.pending == 0
        assert sched.run_until(2.0) == 0

    def test_cancel_after_fire_is_harmless(self):
        sched = EventScheduler()
        h = sched.at(1.0, lambda: None)
        sched.run()
        h.cancel()
        h.cancel()
        assert sched.pending == 0

    def test_same_time_ties_fire_in_schedule_order_across_entry_kinds(self):
        """Handle entries, argument entries and reserved-seq posts all draw
        from one sequence counter, so same-time events fire in exactly the
        order they were scheduled, whatever their kind."""
        sched = EventScheduler()
        fired = []
        sched.at(1.0, lambda: fired.append("at-0"))
        sched.call_at(1.0, fired.append, "call_at-1")
        seq = sched.reserve_seq()
        sched.at(1.0, lambda: fired.append("at-3"))
        sched.post(1.0, seq, fired.append, "post-2")  # seq reserved earlier
        sched.call_at(1.0, lambda: fired.append("call_at-4"))
        sched.run()
        assert fired == ["at-0", "call_at-1", "post-2", "at-3", "call_at-4"]

    def test_call_at_passes_argument_identity(self):
        sched = EventScheduler()
        marker = object()
        got = []
        sched.call_at(1.0, got.append, marker)
        sched.call_after(1.0, got.append, marker)
        sched.run()
        assert got == [marker, marker]
        assert got[0] is marker

    def test_run_while_respects_horizon(self):
        sched = EventScheduler()
        fired = []
        sched.at(1.0, lambda: fired.append(1.0))
        sched.at(5.0, lambda: fired.append(5.0))   # exactly at horizon
        sched.at(5.1, lambda: fired.append(5.1))   # beyond horizon
        n = sched.run_while(lambda: True, horizon=5.0)
        assert n == 2
        assert fired == [1.0, 5.0]
        assert sched.clock.now() == 5.0            # not advanced past it
        assert sched.pending == 1                  # the 5.1 event survives

    def test_run_while_skips_cancelled_heads_at_horizon_check(self):
        sched = EventScheduler()
        fired = []
        h = sched.at(1.0, lambda: fired.append("dead"))
        sched.at(2.0, lambda: fired.append("alive"))
        h.cancel()
        sched.run_while(lambda: len(fired) < 1, horizon=10.0)
        assert fired == ["alive"]

    def test_run_until_max_events_uses_resumable_slow_path(self):
        sched = EventScheduler()
        fired = []
        for i in range(6):
            sched.call_at(float(i), fired.append, i)
        assert sched.run_until(10.0, max_events=3) == 3
        assert fired == [0, 1, 2]
        # the remaining events are intact and fire on resume
        assert sched.run_until(10.0) == 3
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sched.clock.now() == 10.0


class TestFastForwardQuiescence:
    """The analytic OFF-period fast-forward (PR 8 tentpole).

    ``try_fast_forward`` may move the clock only through a window every
    registered quiescence probe vouches for; links refuse while a
    delivery train is in flight or the transmitter is serializing, TCP
    connections refuse while an armed timer deadline falls inside the
    window, and a jump can only ever land exactly on the next scheduled
    event (fault transitions included) because that is the only target
    ``run_until`` asks for.
    """

    def test_jump_lands_exactly_on_target_and_is_accounted(self):
        sched = EventScheduler()
        assert sched.try_fast_forward(10.0) is True
        assert sched.clock.now() == 10.0
        assert sched.fast_forward_jumps == 1
        assert sched.fast_forwarded_s == 10.0
        assert sched.fast_forward_refusals == 0

    def test_jump_to_now_or_past_is_a_noop(self):
        sched = EventScheduler()
        sched.clock.advance_to(5.0)
        assert sched.try_fast_forward(5.0) is True
        assert sched.try_fast_forward(1.0) is True
        assert sched.fast_forward_jumps == 0
        assert sched.fast_forwarded_s == 0.0

    def test_refusing_probe_blocks_the_jump_and_is_counted(self):
        sched = EventScheduler()
        sched.add_quiescence_probe(lambda until: until <= 3.0)
        assert sched.try_fast_forward(3.0) is True
        assert sched.try_fast_forward(8.0) is False
        assert sched.clock.now() == 3.0        # refusal leaves the clock
        assert sched.fast_forward_jumps == 1
        assert sched.fast_forward_refusals == 1

    def test_every_probe_must_agree(self):
        sched = EventScheduler()
        polled = []
        sched.add_quiescence_probe(lambda until: polled.append("a") or True)
        sched.add_quiescence_probe(lambda until: False)
        assert sched.try_fast_forward(1.0) is False
        assert polled == ["a"]                 # probes polled in order

    def test_run_until_jumps_exactly_onto_event_times(self):
        """With fast-forward on, events still fire at exactly their
        scheduled times: the jump target is always the next event."""
        sched = EventScheduler()
        sched.fast_forward = True
        seen = []
        for t in (0.001, 2.0, 7.5):
            sched.at(t, lambda t=t: seen.append((t, sched.clock.now())))
        sched.run_until(10.0)
        assert seen == [(0.001, 0.001), (2.0, 2.0), (7.5, 7.5)]
        assert sched.clock.now() == 10.0
        assert sched.fast_forward_jumps >= 2   # the >5ms gaps were jumped
        # only inter-event gaps are probed jumps; the final advance to
        # the (event-free) horizon is a plain clock move
        assert sched.fast_forwarded_s == pytest.approx(
            (2.0 - 0.001) + (7.5 - 2.0))

    def test_link_refuses_while_train_in_flight(self):
        from repro.simnet.link import Link
        from repro.tcp.constants import ACK
        from repro.tcp.segment import TcpSegment

        sched = EventScheduler()
        link = Link(sched, rate_bps=8e6, prop_delay=0.01, name="dn")
        delivered = []
        link.connect(delivered.append)
        seg = TcpSegment("10.0.0.2", 80, "10.0.0.1", 5000, seq=0, ack=1,
                         flags=ACK, window=65535, payload_len=1460,
                         sent_at=0.0)
        assert link.transmit(seg)
        # delivery train pending + transmitter busy: both reasons refuse
        assert sched.try_fast_forward(1.0) is False
        assert sched.fast_forward_refusals == 1
        sched.run_until(1.0)
        assert delivered
        # drained and idle: the same jump is now provable
        assert sched.try_fast_forward(2.0) is True

    def test_link_refuses_while_transmitter_busy(self):
        from repro.simnet.link import Link

        sched = EventScheduler()
        link = Link(sched, rate_bps=8e6, prop_delay=0.01, name="dn")
        link.connect(lambda packet: None)
        assert link.quiescent(5.0) is True
        link._busy_until = 0.5                 # mid-serialization
        assert link.quiescent(5.0) is False
        assert sched.try_fast_forward(5.0) is False

    def test_connection_refuses_armed_timer_inside_window(self):
        from tests.test_tcp_connection import make_pair

        net, client, state, _, _ = make_pair()
        client.connect()
        net.run_until(1.0)                     # established and quiet
        sched = net.scheduler
        now = net.now()
        refusals = sched.fast_forward_refusals

        client._rexmit_deadline = now + 0.5
        assert client.quiescent(now + 1.0) is False
        assert sched.try_fast_forward(now + 1.0) is False
        assert sched.fast_forward_refusals == refusals + 1
        # a deadline at-or-past the window edge does not block it
        assert client.quiescent(now + 0.5) is True
        client._rexmit_deadline = None

        client._delack_deadline = now + 0.2
        assert client.quiescent(now + 1.0) is False
        client._delack_deadline = None
        assert client.quiescent(now + 1.0) is True

    def test_closed_connection_never_refuses(self):
        from repro.tcp import CLOSED
        from tests.test_tcp_connection import make_pair

        net, client, state, _, _ = make_pair()
        client.connect()
        net.run_until(1.0)
        client.close()
        state["server"].close()
        net.run_until(5.0)
        assert client.state == CLOSED
        client._rexmit_deadline = net.now() + 0.1   # stale garbage
        assert client.quiescent(net.now() + 10.0) is True

    def test_fault_transitions_fire_at_exact_times_under_fast_forward(self):
        """Fault windows are ordinary scheduler events: a jump lands on
        the outage boundary, never across it, so the fault log records
        bit-exact transition times with fast-forward on."""
        from repro.simnet.faults import FaultSchedule
        from tests.test_tcp_connection import CLEAN, make_pair

        net, client, state, path, _ = make_pair(CLEAN)
        net.scheduler.fast_forward = True
        log = FaultSchedule().outage(8.0, 3.0).apply(net.scheduler, path)
        client.connect()
        net.run_until(30.0)
        assert log.times("outage-start") == [8.0]
        assert log.times("outage-end") == [11.0]
        assert net.scheduler.fast_forward_jumps >= 1
