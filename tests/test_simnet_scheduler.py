"""Tests for the simulation clock and event scheduler."""

import pytest

from repro.simnet import EventScheduler, SchedulingError, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(SchedulingError):
            SimClock(-1.0)

    def test_advances_forward(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_rejects_backwards_move(self):
        clock = SimClock(2.0)
        with pytest.raises(SchedulingError):
            clock.advance_to(1.0)

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock(2.0)
        clock.advance_to(2.0)
        assert clock.now() == 2.0


class TestEventScheduler:
    def test_fires_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.at(2.0, lambda: fired.append("b"))
        sched.at(1.0, lambda: fired.append("a"))
        sched.at(3.0, lambda: fired.append("c"))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        sched = EventScheduler()
        fired = []
        for name in "abcde":
            sched.at(1.0, lambda n=name: fired.append(n))
        sched.run()
        assert fired == list("abcde")

    def test_clock_advances_with_events(self):
        sched = EventScheduler()
        seen = []
        sched.at(1.5, lambda: seen.append(sched.clock.now()))
        sched.run()
        assert seen == [1.5]

    def test_after_schedules_relative(self):
        sched = EventScheduler()
        seen = []
        sched.at(1.0, lambda: sched.after(0.5, lambda: seen.append(sched.clock.now())))
        sched.run()
        assert seen == [1.5]

    def test_rejects_past_events(self):
        sched = EventScheduler()
        sched.at(1.0, lambda: None)
        sched.run()
        with pytest.raises(SchedulingError):
            sched.at(0.5, lambda: None)

    def test_rejects_negative_delay(self):
        sched = EventScheduler()
        with pytest.raises(SchedulingError):
            sched.after(-0.1, lambda: None)

    def test_cancel_prevents_firing(self):
        sched = EventScheduler()
        fired = []
        handle = sched.at(1.0, lambda: fired.append("x"))
        handle.cancel()
        sched.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sched = EventScheduler()
        handle = sched.at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_run_until_stops_at_horizon(self):
        sched = EventScheduler()
        fired = []
        sched.at(1.0, lambda: fired.append(1))
        sched.at(2.0, lambda: fired.append(2))
        n = sched.run_until(1.5)
        assert n == 1
        assert fired == [1]
        assert sched.clock.now() == 1.5

    def test_run_until_advances_clock_even_without_events(self):
        sched = EventScheduler()
        sched.run_until(10.0)
        assert sched.clock.now() == 10.0

    def test_run_until_inclusive_of_horizon_events(self):
        sched = EventScheduler()
        fired = []
        sched.at(2.0, lambda: fired.append(2))
        sched.run_until(2.0)
        assert fired == [2]

    def test_pending_counts_live_events(self):
        sched = EventScheduler()
        h1 = sched.at(1.0, lambda: None)
        sched.at(2.0, lambda: None)
        assert sched.pending == 2
        h1.cancel()
        assert sched.pending == 1

    def test_peek_time_skips_cancelled(self):
        sched = EventScheduler()
        h1 = sched.at(1.0, lambda: None)
        sched.at(2.0, lambda: None)
        h1.cancel()
        assert sched.peek_time() == 2.0

    def test_step_returns_false_when_empty(self):
        assert EventScheduler().step() is False

    def test_events_scheduled_during_run_fire(self):
        sched = EventScheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sched.after(1.0, lambda: chain(n + 1))

        sched.at(0.0, lambda: chain(0))
        sched.run()
        assert fired == [0, 1, 2, 3]
        assert sched.clock.now() == 3.0

    def test_max_events_bound(self):
        sched = EventScheduler()
        for i in range(10):
            sched.at(float(i), lambda: None)
        n = sched.run(max_events=4)
        assert n == 4
        assert sched.pending == 6

    def test_fired_counter(self):
        sched = EventScheduler()
        sched.at(1.0, lambda: None)
        sched.at(2.0, lambda: None)
        sched.run()
        assert sched.fired == 2

    def test_run_while_predicate(self):
        sched = EventScheduler()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            sched.after(1.0, tick)

        sched.at(0.0, tick)
        sched.run_while(lambda: count["n"] < 5, horizon=100.0)
        assert count["n"] == 5


class TestFastPathEdgeCases:
    """Edge cases of the tuple-entry fast path (PR 5).

    Cancellation is *lazy*: a cancelled handle stays in the heap until it
    surfaces, so every consumer (``peek_time``, ``step``, ``run_until``,
    ``run_while``) must skip corpses without firing them or counting them.
    """

    def test_cancelled_head_is_skipped_lazily_by_peek_and_run(self):
        sched = EventScheduler()
        fired = []
        h1 = sched.at(1.0, lambda: fired.append("cancelled"))
        sched.at(1.0, lambda: fired.append("live"))
        h2 = sched.at(2.0, lambda: fired.append("also-cancelled"))
        h1.cancel()
        h2.cancel()
        # peek sees through both corpses without disturbing order
        assert sched.peek_time() == 1.0
        assert sched.pending == 1
        n = sched.run_until(3.0)
        assert n == 1
        assert fired == ["live"]
        assert sched.pending == 0

    def test_peek_time_prunes_to_none_when_all_cancelled(self):
        sched = EventScheduler()
        handles = [sched.at(1.0, lambda: None) for _ in range(5)]
        for h in handles:
            h.cancel()
        assert sched.peek_time() is None
        assert sched.pending == 0
        assert sched.run_until(2.0) == 0

    def test_cancel_after_fire_is_harmless(self):
        sched = EventScheduler()
        h = sched.at(1.0, lambda: None)
        sched.run()
        h.cancel()
        h.cancel()
        assert sched.pending == 0

    def test_same_time_ties_fire_in_schedule_order_across_entry_kinds(self):
        """Handle entries, argument entries and reserved-seq posts all draw
        from one sequence counter, so same-time events fire in exactly the
        order they were scheduled, whatever their kind."""
        sched = EventScheduler()
        fired = []
        sched.at(1.0, lambda: fired.append("at-0"))
        sched.call_at(1.0, fired.append, "call_at-1")
        seq = sched.reserve_seq()
        sched.at(1.0, lambda: fired.append("at-3"))
        sched.post(1.0, seq, fired.append, "post-2")  # seq reserved earlier
        sched.call_at(1.0, lambda: fired.append("call_at-4"))
        sched.run()
        assert fired == ["at-0", "call_at-1", "post-2", "at-3", "call_at-4"]

    def test_call_at_passes_argument_identity(self):
        sched = EventScheduler()
        marker = object()
        got = []
        sched.call_at(1.0, got.append, marker)
        sched.call_after(1.0, got.append, marker)
        sched.run()
        assert got == [marker, marker]
        assert got[0] is marker

    def test_run_while_respects_horizon(self):
        sched = EventScheduler()
        fired = []
        sched.at(1.0, lambda: fired.append(1.0))
        sched.at(5.0, lambda: fired.append(5.0))   # exactly at horizon
        sched.at(5.1, lambda: fired.append(5.1))   # beyond horizon
        n = sched.run_while(lambda: True, horizon=5.0)
        assert n == 2
        assert fired == [1.0, 5.0]
        assert sched.clock.now() == 5.0            # not advanced past it
        assert sched.pending == 1                  # the 5.1 event survives

    def test_run_while_skips_cancelled_heads_at_horizon_check(self):
        sched = EventScheduler()
        fired = []
        h = sched.at(1.0, lambda: fired.append("dead"))
        sched.at(2.0, lambda: fired.append("alive"))
        h.cancel()
        sched.run_while(lambda: len(fired) < 1, horizon=10.0)
        assert fired == ["alive"]

    def test_run_until_max_events_uses_resumable_slow_path(self):
        sched = EventScheduler()
        fired = []
        for i in range(6):
            sched.call_at(float(i), fired.append, i)
        assert sched.run_until(10.0, max_events=3) == 3
        assert fired == [0, 1, 2]
        # the remaining events are intact and fire on resume
        assert sched.run_until(10.0) == 3
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sched.clock.now() == 10.0
