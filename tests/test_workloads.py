"""Tests for videos, catalogs, datasets, interruptions and arrivals."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    DATASET_NAMES,
    FULL_SIZES,
    MBPS,
    EmpiricalInterruptionModel,
    FixedBetaModel,
    NoInterruption,
    PoissonProcess,
    Video,
    generate_sessions,
    make_all_datasets,
    make_dataset,
    make_netmob,
    make_netpc,
    sample_netflix_duration,
    sample_youtube_duration,
)


class TestVideo:
    def make(self, **kw):
        defaults = dict(video_id="v", duration=200.0,
                        encoding_rate_bps=1 * MBPS, resolution="360p",
                        container="flv")
        defaults.update(kw)
        return Video(**defaults)

    def test_size_is_rate_times_duration(self):
        v = self.make(duration=100.0, encoding_rate_bps=8 * MBPS)
        assert v.size_bytes == 100 * 1_000_000  # 8 Mbps * 100 s / 8

    def test_size_at_other_rate(self):
        v = self.make(duration=10.0)
        assert v.size_bytes_at(4 * MBPS) == 5_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(duration=0)
        with pytest.raises(ValueError):
            self.make(encoding_rate_bps=-1)
        with pytest.raises(ValueError):
            self.make(container="avi")

    def test_all_rates_dedups_default(self):
        v = self.make(variants=(("240p", 0.5 * MBPS), ("360p", 1 * MBPS)))
        assert v.all_rates == (1 * MBPS, 0.5 * MBPS)

    def test_variant_at_most_picks_best_fitting(self):
        v = self.make(
            encoding_rate_bps=2 * MBPS,
            variants=(("240p", 0.5 * MBPS), ("720p", 4 * MBPS)),
        )
        assert v.variant_at_most(3 * MBPS)[1] == 2 * MBPS
        assert v.variant_at_most(10 * MBPS)[1] == 4 * MBPS

    def test_variant_at_most_falls_back_to_lowest(self):
        v = self.make(encoding_rate_bps=2 * MBPS,
                      variants=(("240p", 0.5 * MBPS),))
        assert v.variant_at_most(0.1 * MBPS)[1] == 0.5 * MBPS


class TestDurations:
    def test_youtube_durations_clipped(self):
        rng = random.Random(1)
        durations = [sample_youtube_duration(rng) for _ in range(2000)]
        assert all(30.0 <= d <= 3600.0 for d in durations)

    def test_youtube_median_a_few_minutes(self):
        rng = random.Random(2)
        durations = sorted(sample_youtube_duration(rng) for _ in range(4001))
        median = durations[2000]
        assert 120.0 <= median <= 330.0

    def test_netflix_durations_are_long(self):
        rng = random.Random(3)
        durations = [sample_netflix_duration(rng) for _ in range(1000)]
        assert min(durations) >= 600.0
        assert sum(durations) / len(durations) > 30 * 60.0


class TestDatasets:
    def test_all_six_datasets_exist(self):
        datasets = make_all_datasets(seed=1, scale=0.02)
        assert set(datasets) == set(DATASET_NAMES)

    def test_full_sizes_match_paper(self):
        assert FULL_SIZES == {
            "YouFlash": 5000, "YouHD": 2000, "YouHtml": 3000,
            "YouMob": 1000, "NetPC": 200, "NetMob": 50,
        }

    def test_scaled_sizes_proportional(self):
        catalog = make_dataset("YouFlash", seed=1, scale=0.01)
        assert len(catalog) == 50

    def test_youflash_rate_range(self):
        catalog = make_dataset("YouFlash", seed=1, scale=0.05)
        lo, hi = catalog.rate_range()
        assert lo >= 0.2 * MBPS
        assert hi <= 1.5 * MBPS
        assert all(v.container == "flv" for v in catalog)
        assert {v.resolution for v in catalog} <= {"240p", "360p"}

    def test_youhd_rate_range_and_resolution(self):
        catalog = make_dataset("YouHD", seed=1, scale=0.05)
        lo, hi = catalog.rate_range()
        assert lo >= 0.2 * MBPS
        assert hi <= 4.8 * MBPS
        assert all(v.resolution == "720p" for v in catalog)

    def test_youhtml_is_webm_at_360p(self):
        catalog = make_dataset("YouHtml", seed=1, scale=0.05)
        assert all(v.container == "webm" for v in catalog)
        assert all(v.resolution == "360p" for v in catalog)
        _lo, hi = catalog.rate_range()
        assert hi <= 2.5 * MBPS

    def test_youmob_rate_range(self):
        catalog = make_dataset("YouMob", seed=1, scale=0.05)
        _lo, hi = catalog.rate_range()
        assert hi <= 2.7 * MBPS
        assert all(v.variants for v in catalog)  # renditions available

    def test_netflix_ladder(self):
        catalog = make_netpc(seed=1, scale=0.25)
        for video in catalog:
            assert video.container == "silverlight"
            assert len(video.all_rates) == 5

    def test_netmob_is_subset_of_netpc(self):
        netpc = make_netpc(seed=1, scale=1.0)
        netmob = make_netmob(seed=1, scale=1.0, netpc=netpc)
        assert len(netmob) == 50
        netpc_ids = {v.video_id for v in netpc}
        assert all(v.video_id in netpc_ids for v in netmob)

    def test_generation_is_deterministic(self):
        a = make_dataset("YouFlash", seed=7, scale=0.02)
        b = make_dataset("YouFlash", seed=7, scale=0.02)
        assert [v.video_id for v in a] == [v.video_id for v in b]
        assert [v.encoding_rate_bps for v in a] == [v.encoding_rate_bps for v in b]

    def test_different_seeds_differ(self):
        a = make_dataset("YouFlash", seed=7, scale=0.02)
        b = make_dataset("YouFlash", seed=8, scale=0.02)
        assert [v.encoding_rate_bps for v in a] != [v.encoding_rate_bps for v in b]

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            make_dataset("Vimeo")

    def test_catalog_sampling(self):
        catalog = make_dataset("YouFlash", seed=1, scale=0.02)
        rng = random.Random(1)
        picked = catalog.sample(10, rng)
        assert len(picked) == 10
        assert len({v.video_id for v in picked}) == 10  # without replacement


class TestInterruptions:
    def test_no_interruption_always_completes(self):
        model = NoInterruption()
        out = model.sample(random.Random(1), 100.0)
        assert out.completed and out.beta == 1.0

    def test_fixed_beta(self):
        model = FixedBetaModel(0.2)
        out = model.sample(random.Random(1), 100.0)
        assert out.beta == 0.2 and out.interrupted

    def test_fixed_beta_validation(self):
        with pytest.raises(ValueError):
            FixedBetaModel(0.0)
        with pytest.raises(ValueError):
            FixedBetaModel(1.5)

    def test_finamore_sixty_percent_below_twenty_percent(self):
        """Calibration target: ~60 % of videos watched < 20 % of duration."""
        model = EmpiricalInterruptionModel()
        frac = model.fraction_watched_below(0.2, random.Random(11), n=8000)
        assert 0.5 <= frac <= 0.7

    def test_gill_interest_share(self):
        model = EmpiricalInterruptionModel()
        rng = random.Random(5)
        reasons = [model.sample(rng, 200.0) for _ in range(4000)]
        interrupted = [r for r in reasons if r.interrupted]
        interest = sum(1 for r in interrupted if r.reason == "lack-of-interest")
        assert 0.72 <= interest / len(interrupted) <= 0.88

    def test_huang_longer_videos_less_completed(self):
        model = EmpiricalInterruptionModel()
        assert (model.completion_probability(3600.0)
                < model.completion_probability(120.0))

    def test_betas_always_valid(self):
        model = EmpiricalInterruptionModel()
        rng = random.Random(9)
        for _ in range(2000):
            out = model.sample(rng, 500.0)
            assert 0.0 < out.beta <= 1.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EmpiricalInterruptionModel(p_complete=1.0)
        with pytest.raises(ValueError):
            EmpiricalInterruptionModel(p_interest=2.0)


class TestArrivals:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0, random.Random(1))

    def test_mean_rate_matches_lambda(self):
        process = PoissonProcess(5.0, random.Random(3))
        times = process.times_until(2000.0)
        assert len(times) / 2000.0 == pytest.approx(5.0, rel=0.05)

    def test_times_sorted_and_in_range(self):
        times = PoissonProcess(2.0, random.Random(4)).times_until(100.0)
        assert times == sorted(times)
        assert all(0 < t < 100.0 for t in times)

    def test_interarrivals_exponential(self):
        """Mean and CV of inter-arrival gaps match an exponential."""
        times = PoissonProcess(1.0, random.Random(8)).times_until(20000.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert mean == pytest.approx(1.0, rel=0.05)
        assert math.sqrt(var) / mean == pytest.approx(1.0, rel=0.1)

    def test_generate_sessions_binds_videos(self):
        catalog = make_dataset("YouFlash", seed=1, scale=0.01)
        rng = random.Random(2)
        sessions = generate_sessions(catalog, lam=1.0, horizon=200.0, rng=rng)
        assert sessions
        ids = {v.video_id for v in catalog}
        assert all(s.video.video_id in ids for s in sessions)
        assert all(s.completed and s.beta == 1.0 for s in sessions)

    def test_generate_sessions_with_interruptions(self):
        catalog = make_dataset("YouFlash", seed=1, scale=0.01)
        rng = random.Random(2)
        sessions = generate_sessions(
            catalog, lam=2.0, horizon=500.0, rng=rng,
            interruption_model=EmpiricalInterruptionModel(),
        )
        assert any(not s.completed for s in sessions)
        assert all(0 < s.beta <= 1.0 for s in sessions)


class TestZipfPopularity:
    def test_weights_normalized_and_monotone(self):
        from repro.workloads import ZipfPopularity

        pop = ZipfPopularity(100, alpha=0.8)
        probs = [pop.probability(i) for i in range(100)]
        assert sum(probs) == pytest.approx(1.0)
        assert probs == sorted(probs, reverse=True)

    def test_alpha_zero_is_uniform(self):
        from repro.workloads import ZipfPopularity

        pop = ZipfPopularity(10, alpha=0.0)
        for i in range(10):
            assert pop.probability(i) == pytest.approx(0.1)

    def test_head_share_heavy(self):
        from repro.workloads import ZipfPopularity

        pop = ZipfPopularity(1000, alpha=0.8)
        assert pop.head_share(0.1) > 0.35  # top 10% dominates

    def test_sampling_matches_probabilities(self):
        from repro.workloads import ZipfPopularity

        pop = ZipfPopularity(20, alpha=1.0)
        rng = random.Random(3)
        counts = [0] * 20
        n = 30000
        for _ in range(n):
            counts[pop.sample_index(rng)] += 1
        assert counts[0] / n == pytest.approx(pop.probability(0), rel=0.1)
        assert counts[10] / n == pytest.approx(pop.probability(10), rel=0.4)

    def test_custom_ranks(self):
        from repro.workloads import ZipfPopularity

        # last catalog entry is the most popular
        pop = ZipfPopularity(3, alpha=1.0, ranks=[2, 1, 0])
        assert pop.probability(2) > pop.probability(0)

    def test_validation(self):
        from repro.workloads import ZipfPopularity

        with pytest.raises(ValueError):
            ZipfPopularity(0)
        with pytest.raises(ValueError):
            ZipfPopularity(5, alpha=-1.0)
        with pytest.raises(ValueError):
            ZipfPopularity(3, ranks=[0, 0, 1])
        with pytest.raises(IndexError):
            ZipfPopularity(3).probability(5)
        with pytest.raises(ValueError):
            ZipfPopularity(3).head_share(0.0)

    def test_weighted_session_generation(self):
        from repro.workloads import ZipfPopularity, generate_sessions

        catalog = make_dataset("YouFlash", seed=1, scale=0.01)
        pop = ZipfPopularity(len(catalog), alpha=1.2)
        rng = random.Random(5)
        sessions = generate_sessions(catalog, lam=5.0, horizon=500.0,
                                     rng=rng, popularity=pop)
        top_id = catalog[0].video_id
        share = sum(1 for s in sessions if s.video.video_id == top_id)
        assert share / len(sessions) > 2.0 / len(catalog)
