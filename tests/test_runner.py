"""Tests for the session-execution engine and the experiment registry.

Covers the three engine guarantees — plan-order results, ``jobs=N``
output identical to ``jobs=1``, and cache correctness (hit, miss,
invalidation on code change) — plus the :class:`ExperimentSpec` registry
that fronts it.
"""

import enum
import importlib
import pathlib
from dataclasses import dataclass

import pytest

import repro.experiments as experiments_pkg

# the package re-exports the fingerprint *function*, which shadows the
# submodule on ``import repro.runner.fingerprint as ...``
fingerprint_module = importlib.import_module("repro.runner.fingerprint")
from repro.experiments import (
    REGISTRY,
    Scale,
    fig2,
    get_experiment,
    iter_experiments,
    model_validation,
)
from repro.runner import (
    ResultCache,
    RunStats,
    SessionPlan,
    canonical,
    code_version,
    current_options,
    engine_options,
    fingerprint,
    plan_fingerprint,
    run_tasks,
    task_fingerprint,
)

#: An even smaller scale for test-suite latency (mirrors test_experiments).
TINY = Scale(name="tiny", sessions_per_cell=3, capture_duration=90.0,
             catalog_scale=0.02, mc_horizon=4000.0)


# Module-level workers: picklable by reference, as the pool requires.
def _square(x):
    return x * x


def _swap(a, b):
    return (b, a)


class _Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass(frozen=True)
class _Cfg:
    rate: float
    name: str


class TestCanonical:
    def test_scalars_round_trip_distinctly(self):
        # 1 and 1.0 compare equal in Python but configure nothing alike
        assert canonical(1) != canonical(1.0)
        assert canonical(True) != canonical(1.0)
        assert canonical("1") == "1"

    def test_dict_key_order_is_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_set_order_is_irrelevant(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})

    def test_enum_and_dataclass_encode_by_identity_and_value(self):
        assert canonical(_Color.RED) != canonical(_Color.BLUE)
        assert canonical(_Cfg(1.0, "x")) == canonical(_Cfg(1.0, "x"))
        assert canonical(_Cfg(1.0, "x")) != canonical(_Cfg(2.0, "x"))

    def test_callables_are_rejected(self):
        with pytest.raises(TypeError):
            canonical(lambda: None)


class TestFingerprint:
    def test_stable_and_sensitive(self):
        a = fingerprint("x", _Cfg(1.0, "v"))
        assert a == fingerprint("x", _Cfg(1.0, "v"))
        assert a != fingerprint("x", _Cfg(1.5, "v"))

    def test_code_version_shape(self):
        v = code_version()
        assert len(v) == 16
        int(v, 16)  # hex

    def test_task_fingerprint_separates_functions_and_args(self):
        assert task_fingerprint(_square, (3,)) != task_fingerprint(_swap, (3,))
        assert task_fingerprint(_square, (3,)) != task_fingerprint(_square, (4,))


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" + "0" * 38) is None
        cache.put("ab" + "0" * 38, {"x": 1})
        assert cache.get("ab" + "0" * 38) == {"x": 1}
        assert ("ab" + "0" * 38) in cache
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 38
        cache.put(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()

    def test_corrupt_entry_is_quarantined_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 38
        cache.put(key, {"x": 1})
        cache._path(key).write_bytes(b"\x80truncated garbage")
        assert cache.get(key) is None
        # moved to <root>/corrupt/<key>.bad for post-mortem, out of the
        # live-entry globs, and surfaced through stats()
        quarantined = tmp_path / "corrupt" / f"{key}.bad"
        assert quarantined.exists()
        assert quarantined.read_bytes() == b"\x80truncated garbage"
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["corrupt"] == 1
        assert stats["entries"] == 0
        # a fresh put makes the key live again; the quarantine stays
        cache.put(key, {"x": 2})
        assert cache.get(key) == {"x": 2}
        assert cache.stats() == {"entries": 1,
                                 "bytes": cache._path(key).stat().st_size,
                                 "corrupt": 1}

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" + "0" * 38, i)
        assert cache.clear() == 3
        assert len(cache) == 0


class TestRunTasks:
    def test_order_preserved_under_parallelism(self):
        args = [(x,) for x in (5, 3, 8, 1, 9, 2, 7)]
        assert run_tasks(_square, args, jobs=3) == [25, 9, 64, 1, 81, 4, 49]

    def test_cache_hit_miss_and_invalidation(self, tmp_path, monkeypatch):
        monkeypatch.setattr(fingerprint_module, "code_version",
                            lambda: "deadbeefdeadbeef")
        cache = ResultCache(tmp_path)
        args = [(x,) for x in range(4)]

        stats = RunStats()
        run_tasks(_square, args, cache=cache, stats=stats)
        assert (stats.cache_hits, stats.cache_misses) == (0, 4)

        stats = RunStats()
        run_tasks(_square, args, cache=cache, stats=stats)
        assert (stats.cache_hits, stats.cache_misses) == (4, 0)

        # a code change moves every key: the warm cache no longer applies
        monkeypatch.setattr(fingerprint_module, "code_version",
                            lambda: "cafebabecafebabe")
        stats = RunStats()
        result = run_tasks(_square, args, cache=cache, stats=stats)
        assert (stats.cache_hits, stats.cache_misses) == (0, 4)
        assert result == [0, 1, 4, 9]


class TestEngineOptions:
    def test_defaults(self):
        options = current_options()
        assert options.jobs == 1
        assert options.cache is None

    def test_nesting_inherits_and_restores(self, tmp_path):
        with engine_options(jobs=4, cache=tmp_path):
            outer = current_options()
            assert outer.jobs == 4
            assert isinstance(outer.cache, ResultCache)
            with engine_options(jobs=1):
                inner = current_options()
                assert inner.jobs == 1
                assert inner.cache is outer.cache  # None inherits
        assert current_options().jobs == 1
        assert current_options().cache is None

    def test_explicit_arguments_beat_ambient(self):
        with engine_options(jobs=3):
            # run_tasks(jobs=1) must stay serial despite the ambient pool
            assert run_tasks(_square, [(2,)], jobs=1) == [4]


class TestDeterminism:
    """jobs=N must be byte-identical to jobs=1 — the engine's contract."""

    def test_fig2_parallel_identical(self):
        serial = fig2.run(TINY, seed=0).report()
        with engine_options(jobs=3):
            parallel = fig2.run(TINY, seed=0).report()
        assert parallel == serial

    def test_model_validation_parallel_identical(self):
        serial = model_validation.run(TINY, seed=0).report()
        with engine_options(jobs=3):
            parallel = model_validation.run(TINY, seed=0).report()
        assert parallel == serial


class TestSpecRun:
    def test_spec_run_threads_jobs_cache_stats(self, tmp_path):
        spec = get_experiment("model_validation")
        cold = RunStats()
        first = spec.run(TINY, seed=0, jobs=2, cache=tmp_path, stats=cold)
        assert cold.cache_misses == cold.sessions > 0

        warm = RunStats()
        second = spec.run(TINY, seed=0, jobs=2, cache=tmp_path, stats=warm)
        assert warm.cache_hits == warm.sessions == cold.sessions
        assert second.report() == first.report()


class TestRegistry:
    def test_every_experiment_module_is_registered(self):
        root = pathlib.Path(experiments_pkg.__file__).parent
        modules = {p.stem for p in root.glob("*.py")} - {"__init__", "common"}
        assert modules == set(REGISTRY)

    def test_specs_are_complete_and_consistent(self):
        for name, spec in REGISTRY.items():
            assert spec.name == name
            assert spec.title
            assert spec.paper
            assert callable(spec.module.run)

    def test_iteration_order_and_lookup(self):
        assert [s.name for s in iter_experiments()] == list(REGISTRY)
        assert get_experiment("table1") is REGISTRY["table1"]
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_all_derives_from_registry(self):
        assert set(REGISTRY) <= set(experiments_pkg.__all__)

    def test_all_experiments_alias_removed(self):
        # the PR-2 deprecation cycle is complete: the module-dict alias
        # is gone, REGISTRY/get_experiment are the only lookup paths
        assert not hasattr(experiments_pkg, "ALL_EXPERIMENTS")
        assert "ALL_EXPERIMENTS" not in experiments_pkg.__all__


class TestSessionPlanKeys:
    def test_plan_key_matches_fingerprint(self):
        plan = SessionPlan("video", _Cfg(1.0, "cfg"))
        assert plan.key == plan_fingerprint("video", _Cfg(1.0, "cfg"))
        assert plan.key != plan_fingerprint("video", _Cfg(2.0, "cfg"))
