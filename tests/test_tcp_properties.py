"""Property-based robustness tests for the TCP implementation.

Hypothesis drives adversarial loss patterns and transfer sizes through the
full stack and asserts the end-to-end contract: every byte is delivered,
exactly once, in order, regardless of which packets the network drops.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simnet import (
    DeterministicLoss,
    NetworkProfile,
    build_client_server,
)
from repro.tcp import TcpConfig, TcpConnection, TcpListener

PROFILE = NetworkProfile(
    name="PropNet", down_bps=8e6, up_bps=8e6, rtt=0.02, loss_down=0.0,
    buffer_bytes=512 * 1024,
)


def run_transfer(payload: bytes, *, forward_drops=(), reverse_drops=(),
                 horizon=120.0):
    """One server->client transfer of real `payload` under exact drops."""
    net, client_host, server_host, path = build_client_server(PROFILE, seed=1)
    if forward_drops:
        path.forward.loss_model = DeterministicLoss(forward_drops)
    if reverse_drops:
        path.reverse.loss_model = DeterministicLoss(reverse_drops)

    def on_accept(conn):
        def on_data(c):
            if c.recv(4096):
                c.send(payload)
                c.close()
        conn.on_data = on_data

    TcpListener(server_host, net.scheduler, 80, on_accept)
    client = TcpConnection(client_host, net.scheduler,
                           client_host.allocate_port(), server_host.ip, 80,
                           config=TcpConfig(recv_buffer=128 * 1024))
    received = bytearray()
    client.on_data = lambda c: received.extend(c.recv(1 << 20))
    client.on_connected = lambda c: c.send(b"GET\r\n")
    client.connect()
    net.run_until(horizon)
    return bytes(received)


def patterned(n: int) -> bytes:
    return bytes((7 * i + 13) % 251 for i in range(n))


class TestLossRobustness:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=1, max_value=60_000),
        st.sets(st.integers(min_value=0, max_value=80), max_size=12),
    )
    def test_forward_drops_never_corrupt_data(self, size, drops):
        payload = patterned(size)
        assert run_transfer(payload, forward_drops=drops) == payload

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=1, max_value=40_000),
        st.sets(st.integers(min_value=0, max_value=40), max_size=8),
    )
    def test_ack_path_drops_never_corrupt_data(self, size, drops):
        payload = patterned(size)
        assert run_transfer(payload, reverse_drops=drops) == payload

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.sets(st.integers(min_value=0, max_value=30), max_size=6),
        st.sets(st.integers(min_value=0, max_value=30), max_size=6),
    )
    def test_bidirectional_drops(self, fwd, rev):
        payload = patterned(25_000)
        got = run_transfer(payload, forward_drops=fwd, reverse_drops=rev)
        assert got == payload

    def test_consecutive_burst_drop(self):
        """A burst of consecutive drops (beyond fast retransmit's reach)."""
        payload = patterned(50_000)
        burst = set(range(10, 22))
        assert run_transfer(payload, forward_drops=burst) == payload

    def test_every_other_packet_dropped_early(self):
        payload = patterned(30_000)
        drops = set(range(2, 30, 2))
        assert run_transfer(payload, forward_drops=drops,
                            horizon=240.0) == payload
