"""Tests for session orchestration: determinism, pcap output, batch runs."""

import pytest

from repro.analysis import analyze_records, analyze_session
from repro.pcap import records_from_pcap
from repro.simnet import CLIENT_IP, RESEARCH, SERVER_IP
from repro.streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    run_session,
    run_sessions,
)
from repro.workloads import MBPS, Video


def flash_video(vid="det", rate=0.8, duration=240.0):
    return Video(video_id=vid, duration=duration,
                 encoding_rate_bps=rate * MBPS, resolution="360p",
                 container="flv")


def config(**kw):
    defaults = dict(profile=RESEARCH, service=Service.YOUTUBE,
                    application=Application.FIREFOX,
                    container=Container.FLASH, capture_duration=45.0, seed=3)
    defaults.update(kw)
    return SessionConfig(**defaults)


class TestDeterminism:
    def test_same_seed_identical_traces(self):
        a = run_session(flash_video(), config())
        b = run_session(flash_video(), config())
        assert len(a.records) == len(b.records)
        for ra, rb in zip(a.records, b.records):
            assert ra.timestamp == rb.timestamp
            assert ra.seq == rb.seq
            assert ra.payload_len == rb.payload_len

    def test_different_seed_differs_on_lossy_path(self):
        from repro.simnet import RESIDENCE

        a = run_session(flash_video(), config(profile=RESIDENCE, seed=1))
        b = run_session(flash_video(), config(profile=RESIDENCE, seed=2))
        assert [r.timestamp for r in a.records] != [r.timestamp for r in b.records]


class TestSessionPcapPath:
    def test_full_analysis_equivalence_via_pcap(self, tmp_path):
        result = run_session(flash_video(), config())
        path = str(tmp_path / "s.pcap")
        result.capture.write_pcap(path)
        direct = analyze_session(result)
        reparsed = analyze_records(records_from_pcap(path), CLIENT_IP,
                                   SERVER_IP,
                                   duration=result.video.duration)
        assert direct.strategy == reparsed.strategy
        assert direct.buffering_bytes == reparsed.buffering_bytes
        assert direct.block_sizes == reparsed.block_sizes
        assert direct.accumulation_ratio == pytest.approx(
            reparsed.accumulation_ratio)
        assert direct.encoding_rate_bps == pytest.approx(
            reparsed.encoding_rate_bps)


class TestRunSessions:
    def test_batch_runs_are_independent(self):
        videos = [flash_video(f"v{i}", rate=0.6 + 0.1 * i, duration=200.0)
                  for i in range(3)]
        with pytest.deprecated_call():
            results = run_sessions(videos, config(capture_duration=30.0))
        assert len(results) == 3
        # each session saw only its own video
        for video, result in zip(videos, results):
            assert result.video.video_id == video.video_id
            assert result.downloaded > 0

    def test_batch_seeds_differ_per_session(self):
        videos = [flash_video("same", 0.6), flash_video("same", 0.6)]
        from repro.simnet import RESIDENCE

        with pytest.deprecated_call():
            results = run_sessions(videos, config(profile=RESIDENCE,
                                                  capture_duration=30.0))
        # same video but per-session derived seeds: lossy paths diverge
        a, b = results
        assert ([r.timestamp for r in a.records]
                != [r.timestamp for r in b.records])

    def test_shim_matches_engine_batch(self):
        # the deprecation shim must derive the same per-session seeds the
        # serial loop always did, then delegate to the engine — identical
        # results either way
        from repro.runner import SessionPlan
        from repro.runner import run_sessions as engine_run_sessions
        from repro.simnet.rng import derive_seed

        videos = [flash_video(f"v{i}") for i in range(2)]
        cfg = config(capture_duration=30.0)
        with pytest.deprecated_call():
            via_shim = run_sessions(videos, cfg)
        plans = [
            SessionPlan(video, SessionConfig(
                **{**vars(cfg), "seed": derive_seed(cfg.seed, str(i))}))
            for i, video in enumerate(videos)
        ]
        via_engine = engine_run_sessions(plans)
        for a, b in zip(via_shim, via_engine):
            assert [r.timestamp for r in a.records] \
                == [r.timestamp for r in b.records]
            assert a.downloaded == b.downloaded


class TestSessionAccounting:
    def test_duration_simulated_matches_capture(self):
        result = run_session(flash_video(), config(capture_duration=30.0))
        assert result.duration_simulated == pytest.approx(30.0)

    def test_server_served_one_request(self):
        result = run_session(flash_video(), config())
        assert result.server_requests == 1

    def test_records_are_client_vantage(self):
        """The capture behaves like tcpdump on the client machine: the
        SYN -> SYN-ACK gap is a full round-trip time."""
        result = run_session(flash_video(), config())
        syn = next(r for r in result.records
                   if r.is_syn and r.src_ip == CLIENT_IP)
        synack = next(r for r in result.records
                      if r.is_syn and r.src_ip == SERVER_IP)
        assert synack.timestamp - syn.timestamp == pytest.approx(
            RESEARCH.rtt, rel=0.2)
