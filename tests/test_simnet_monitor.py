"""Tests for time series and periodic probes."""

import pytest

from repro.simnet import EventScheduler, PeriodicProbe, TimeSeries


class TestTimeSeries:
    def test_append_and_iterate(self):
        ts = TimeSeries("x")
        ts.append(0.0, 1.0)
        ts.append(1.0, 2.0)
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2

    def test_rejects_out_of_order(self):
        ts = TimeSeries("x")
        ts.append(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(0.5, 2.0)

    def test_allows_equal_times(self):
        ts = TimeSeries("x")
        ts.append(1.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_last(self):
        ts = TimeSeries("x")
        ts.append(0.0, 5.0)
        ts.append(2.0, 7.0)
        assert ts.last() == (2.0, 7.0)

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            TimeSeries().last()

    def test_value_at_step_function(self):
        ts = TimeSeries("x")
        ts.append(0.0, 10.0)
        ts.append(1.0, 20.0)
        ts.append(2.0, 30.0)
        assert ts.value_at(0.0) == 10.0
        assert ts.value_at(0.99) == 10.0
        assert ts.value_at(1.0) == 20.0
        assert ts.value_at(5.0) == 30.0

    def test_value_at_before_first_sample_raises(self):
        ts = TimeSeries("x")
        ts.append(1.0, 10.0)
        with pytest.raises(ValueError):
            ts.value_at(0.5)

    def test_window_selects_inclusive_range(self):
        ts = TimeSeries("x")
        for t in range(5):
            ts.append(float(t), float(t))
        w = ts.window(1.0, 3.0)
        assert w.times == [1.0, 2.0, 3.0]

    def test_deltas(self):
        ts = TimeSeries("x")
        ts.append(0.0, 0.0)
        ts.append(1.0, 10.0)
        ts.append(2.0, 15.0)
        assert ts.deltas() == [(1.0, 10.0), (2.0, 5.0)]

    def test_mean_min_max(self):
        ts = TimeSeries("x")
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]:
            ts.append(t, v)
        assert ts.mean() == pytest.approx(3.0)
        assert ts.min() == 1.0
        assert ts.max() == 5.0

    def test_time_average_weights_by_interval(self):
        ts = TimeSeries("x")
        ts.append(0.0, 10.0)   # holds for 1 s
        ts.append(1.0, 0.0)    # holds for 3 s
        ts.append(4.0, 99.0)   # terminal sample, zero weight
        assert ts.time_average() == pytest.approx((10.0 * 1 + 0.0 * 3) / 4)

    def test_time_average_needs_two_samples(self):
        ts = TimeSeries("x")
        ts.append(0.0, 1.0)
        with pytest.raises(ValueError):
            ts.time_average()

    def test_binned_rate_of_cumulative_series(self):
        ts = TimeSeries("bytes")
        ts.append(0.0, 0.0)
        ts.append(1.0, 100.0)
        ts.append(2.0, 100.0)   # idle second: no progress
        ts.append(3.0, 250.0)
        rate = ts.binned_rate(1.0)
        assert rate.times == [1.0, 2.0, 3.0]
        assert rate.values == pytest.approx([100.0, 0.0, 150.0])

    def test_binned_rate_covers_partial_last_bin(self):
        ts = TimeSeries("bytes")
        ts.append(0.0, 0.0)
        ts.append(2.5, 50.0)
        rate = ts.binned_rate(1.0)
        # three bins cover the 2.5 s span; the last is timestamped at
        # its nominal end even though data stops earlier
        assert rate.times == [1.0, 2.0, 3.0]
        assert sum(rate.values) * 1.0 == pytest.approx(50.0)

    def test_binned_rate_short_series_is_empty(self):
        assert len(TimeSeries().binned_rate(1.0)) == 0
        ts = TimeSeries("x")
        ts.append(0.0, 5.0)
        assert len(ts.binned_rate(1.0)) == 0

    def test_binned_rate_rejects_nonpositive_width(self):
        ts = TimeSeries("x")
        with pytest.raises(ValueError):
            ts.binned_rate(0.0)


class TestPeriodicProbe:
    def test_samples_on_schedule(self):
        sched = EventScheduler()
        value = {"v": 0.0}
        probe = PeriodicProbe(sched, 1.0, lambda: value["v"], name="v")
        probe.start()
        sched.at(0.5, lambda: value.__setitem__("v", 5.0))
        sched.run_until(3.0)
        probe.stop()
        assert probe.series.times == [0.0, 1.0, 2.0, 3.0]
        assert probe.series.values == [0.0, 5.0, 5.0, 5.0]

    def test_stop_halts_sampling(self):
        sched = EventScheduler()
        probe = PeriodicProbe(sched, 1.0, lambda: 1.0)
        probe.start()
        sched.run_until(2.0)
        probe.stop()
        sched.run_until(5.0)
        assert probe.series.times[-1] <= 2.0

    def test_start_is_idempotent(self):
        sched = EventScheduler()
        probe = PeriodicProbe(sched, 1.0, lambda: 1.0)
        probe.start()
        probe.start()
        sched.run_until(1.0)
        assert probe.series.times == [0.0, 1.0]

    def test_rejects_nonpositive_period(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            PeriodicProbe(sched, 0.0, lambda: 1.0)
