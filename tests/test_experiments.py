"""Smoke tests for the experiment modules (reduced scale).

Each test asserts the *shape* facts the paper reports — who wins, what
dominates, where the boundaries fall — not absolute numbers.  The heavier
full-matrix experiments (table1, fig3-fig6, fig10-fig12) run in the
benchmark harness; here we exercise the cheap ones end-to-end plus the
report rendering of everything else through tiny custom runs.
"""

import pytest

from repro.experiments import (
    SMALL,
    Scale,
    fig2,
    fig8,
    fig9,
    model_validation,
    pick_videos,
    table2,
)
from repro.streaming import StreamingStrategy
from repro.workloads import make_dataset

KB = 1024
MB = 1024 * 1024

#: An even smaller scale for test-suite latency.
TINY = Scale(name="tiny", sessions_per_cell=3, capture_duration=90.0,
             catalog_scale=0.02, mc_horizon=4000.0)


class TestPickVideos:
    def test_constraints_respected(self):
        catalog = make_dataset("YouFlash", seed=1, scale=0.05)
        videos = pick_videos(catalog, 5, seed=1, min_size_bytes=5 * MB)
        assert len(videos) == 5
        assert all(v.size_bytes >= 5 * MB for v in videos)

    def test_unsatisfiable_constraints_raise(self):
        catalog = make_dataset("YouFlash", seed=1, scale=0.02)
        with pytest.raises(ValueError):
            pick_videos(catalog, 3, seed=1, min_size_bytes=10_000 * MB)

    def test_deterministic(self):
        catalog = make_dataset("YouFlash", seed=1, scale=0.05)
        a = pick_videos(catalog, 5, seed=9)
        b = pick_videos(catalog, 5, seed=9)
        assert [v.video_id for v in a] == [v.video_id for v in b]


class TestFig2:
    def test_flash_vs_html5_window_behaviour(self):
        result = fig2.run(TINY, seed=0)
        # Flash: client never throttles, window stays open
        assert result.flash.steady_window_min > 128 * KB
        # HTML5/IE: window periodically empties
        assert result.html5.steady_window_min < 64 * KB
        # block sizes: 64 kB vs 256 kB
        assert result.flash.median_block == pytest.approx(64 * KB, rel=0.1)
        assert result.html5.median_block == pytest.approx(256 * KB, rel=0.1)

    def test_report_renders(self):
        text = fig2.run(TINY, seed=0).report()
        assert "Flash" in text and "HTML5" in text


class TestFig8:
    def test_rate_uncorrelated_and_no_steady_state(self):
        result = fig8.run(TINY, seed=0)
        assert abs(result.rate_correlation) < 0.6
        assert (result.long_videos_without_steady_state
                == result.long_videos_checked)
        # download rates are link-bound, far above the encoding rates
        for point in result.points:
            assert point.download_rate_bps > 2 * point.encoding_rate_bps
        assert "no ON-OFF" in result.report()


class TestFig9:
    def test_burst_structure(self):
        result = fig9.run(TINY, seed=0)
        curves = {c.label: c for c in result.curves}
        # Flash bursts the whole 64 kB block: no ACK clock
        assert curves["Flash"].cdf.median == pytest.approx(64 * KB, rel=0.15)
        # iPad opens fresh connections: slow start imposes an ACK clock
        assert curves["iPad"].cdf.median <= result.init_window_bytes * 2
        # every desktop curve far exceeds the initial window
        for label in ("Flash", "Int. Explorer", "Chrome", "Android"):
            assert curves[label].cdf.median > 3 * result.init_window_bytes

    def test_idle_reset_ablation_restores_ack_clock(self):
        result = fig9.run(TINY, seed=0)
        without = result.flash_no_reset.cdf.median
        with_reset = result.flash_with_idle_reset.cdf.median
        assert with_reset < without / 4
        assert with_reset <= 2 * result.init_window_bytes


class TestTable2:
    def test_orderings(self):
        result = table2.run(TINY, seed=0)
        by = {r.strategy: r for r in result.rows}
        no = by[StreamingStrategy.NO_ONOFF]
        long_ = by[StreamingStrategy.LONG_ONOFF]
        short = by[StreamingStrategy.SHORT_ONOFF]
        # unused bytes: Large >> Moderate >= Small
        assert no.unused_bytes > 3 * long_.unused_bytes
        assert long_.unused_bytes >= short.unused_bytes * 0.9
        # buffer occupancy: Large >> Moderate > Small
        assert no.peak_buffer_bytes > 3 * long_.peak_buffer_bytes
        assert long_.peak_buffer_bytes > short.peak_buffer_bytes
        # engineering complexity labels
        assert no.engineering == "Not required"
        assert "Application" in short.engineering

    def test_report_renders(self):
        assert "Table 2" in table2.run(TINY, seed=0).report()


class TestModelValidation:
    def test_moments_and_invariance(self):
        result = model_validation.run(TINY, seed=0)
        for row in result.moment_rows:
            assert row.mean_error < 0.15, row.strategy
            assert row.var_error < 0.3, row.strategy
        means = [r.empirical_mean for r in result.moment_rows]
        assert max(means) / min(means) < 1.2  # strategy invariance

    def test_interruption_results(self):
        result = model_validation.run(TINY, seed=0)
        assert result.critical_duration_s == pytest.approx(53.33, rel=0.01)
        err = (abs(result.waste_empirical_bps - result.waste_closed_bps)
               / result.waste_closed_bps)
        assert err < 0.25

    def test_migration_smoothness(self):
        result = model_validation.run(TINY, seed=0)
        assert result.migration_smoothness_ratio == pytest.approx(
            2 ** -0.5, rel=0.01)

    def test_report_renders(self):
        text = model_validation.run(TINY, seed=0).report()
        assert "53.3" in text
        assert "Eq (9)" in text
