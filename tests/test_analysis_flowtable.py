"""Unit tests for flow reconstruction from synthetic packet records."""

import pytest

from repro.analysis import (
    AckClockSample,
    ackclock_samples,
    build_download_trace,
    estimate_encoding_rate,
    estimate_session_rate,
    first_rtt_bytes,
)
from repro.http import build_flv_header, build_webm_header
from repro.pcap import PacketRecord
from repro.tcp import ACK, PSH, SYN
from repro.tcp.seqspace import wrap

CLIENT = "10.0.0.1"
SERVER = "192.0.2.1"


def rec(t, *, src=SERVER, sport=80, dst=CLIENT, dport=50000, seq=0, ack=0,
        flags=ACK, payload_len=0, window=65535, payload=None):
    return PacketRecord(
        timestamp=t, src_ip=src, src_port=sport, dst_ip=dst, dst_port=dport,
        seq=wrap(seq), ack=wrap(ack), flags=flags, payload_len=payload_len,
        window=window, wire_len=54 + payload_len, payload=payload,
    )


def handshake(t0=0.0, rtt=0.02, dport=50000):
    return [
        rec(t0, src=CLIENT, sport=dport, dst=SERVER, dport=80, flags=SYN,
            seq=0),
        rec(t0 + rtt, flags=SYN | ACK, seq=0, dport=dport),
        rec(t0 + rtt + 0.001, src=CLIENT, sport=dport, dst=SERVER, dport=80,
            flags=ACK, seq=1),
    ]


def data_stream(t0, seqs_lens, base_seq=1, dport=50000, payloads=None):
    out = []
    for i, (offset, length) in enumerate(seqs_lens):
        payload = payloads[i] if payloads else None
        out.append(rec(t0 + i * 0.001, seq=base_seq + offset,
                       payload_len=length, flags=ACK | PSH, payload=payload,
                       dport=dport))
    return out


class TestFlowConstruction:
    def test_handshake_rtt_measured(self):
        trace = build_download_trace(handshake(rtt=0.025), CLIENT, SERVER)
        assert trace.flow_count == 1
        flow = trace.main_flow()
        assert flow.handshake_rtt == pytest.approx(0.025)
        assert trace.median_handshake_rtt() == pytest.approx(0.025)

    def test_unique_bytes_counted_once(self):
        records = handshake() + data_stream(
            1.0, [(0, 1000), (1000, 1000), (1000, 1000)])  # one dup
        trace = build_download_trace(records, CLIENT, SERVER)
        assert trace.total_bytes == 2000
        assert trace.total_payload_bytes == 3000

    def test_retransmission_detection_by_regression(self):
        # hole-filler arriving after later data counts as a retransmission
        records = handshake() + data_stream(
            1.0, [(0, 1000), (2000, 1000), (1000, 1000)])
        trace = build_download_trace(records, CLIENT, SERVER)
        flow = trace.main_flow()
        assert flow.retransmitted_bytes == 1000
        assert trace.retransmission_rate == pytest.approx(1000 / 3000)

    def test_in_order_stream_has_no_retransmissions(self):
        records = handshake() + data_stream(
            1.0, [(i * 1000, 1000) for i in range(10)])
        trace = build_download_trace(records, CLIENT, SERVER)
        assert trace.retransmission_rate == 0.0

    def test_retransmission_rate_zero_packets(self):
        # a handshake-only flow carries no data: the rate must be a
        # clean 0.0, not a division error
        trace = build_download_trace(handshake(), CLIENT, SERVER)
        flow = trace.main_flow()
        assert flow.total_payload_bytes == 0
        assert flow.packet_count == 0
        assert flow.retransmission_rate == 0.0
        assert trace.retransmission_rate == 0.0

    def test_packet_count_counts_retransmissions(self):
        records = handshake() + data_stream(
            1.0, [(0, 1000), (1000, 1000), (1000, 1000)])  # one dup
        trace = build_download_trace(records, CLIENT, SERVER)
        assert trace.main_flow().packet_count == 3
        assert trace.packet_count == 3

    def test_sequence_wrap_handled(self):
        base = (1 << 32) - 1500  # data crosses the 32-bit boundary
        records = handshake() + data_stream(
            1.0, [(0, 1000), (1000, 1000), (2000, 1000)], base_seq=base)
        trace = build_download_trace(records, CLIENT, SERVER)
        assert trace.total_bytes == 3000

    def test_multiple_flows_aggregate(self):
        records = (handshake(dport=50000) + handshake(dport=50001)
                   + data_stream(1.0, [(0, 500)], dport=50000)
                   + data_stream(2.0, [(0, 700)], dport=50001))
        trace = build_download_trace(records, CLIENT, SERVER)
        assert trace.flow_count == 2
        assert trace.total_bytes == 1200
        assert trace.main_flow().unique_bytes == 700

    def test_window_series_from_client_acks(self):
        records = handshake() + [
            rec(1.0, src=CLIENT, sport=50000, dst=SERVER, dport=80,
                flags=ACK, seq=1, window=30000),
            rec(2.0, src=CLIENT, sport=50000, dst=SERVER, dport=80,
                flags=ACK, seq=1, window=0),
        ]
        trace = build_download_trace(records, CLIENT, SERVER)
        # the handshake ACK plus the two explicit ones
        assert trace.window_series.values[-2:] == [30000.0, 0.0]

    def test_cumulative_series_monotone(self):
        records = handshake() + data_stream(
            1.0, [(0, 1000), (1000, 1000), (500, 800)])
        trace = build_download_trace(records, CLIENT, SERVER)
        series = trace.cumulative_series()
        assert series.values == sorted(series.values)
        assert series.values[-1] == trace.total_bytes

    def test_download_rate(self):
        records = handshake() + data_stream(1.0, [(0, 1000)]) + data_stream(
            2.0, [(1000, 1000)])
        trace = build_download_trace(records, CLIENT, SERVER)
        span = trace.last_data_time - trace.first_data_time
        assert trace.download_rate_bps() == pytest.approx(2000 * 8 / span)

    def test_unrelated_traffic_ignored(self):
        stray = rec(0.5, src="203.0.113.9", dst=CLIENT, payload_len=999)
        trace = build_download_trace(handshake() + [stray], CLIENT, SERVER)
        assert trace.total_bytes == 0

    def test_empty_trace(self):
        trace = build_download_trace([], CLIENT, SERVER)
        assert trace.total_bytes == 0
        assert trace.first_data_time is None
        assert trace.download_rate_bps() == 0.0
        with pytest.raises(ValueError):
            trace.main_flow()


class TestHeadCapture:
    def make_http_records(self, header_blob):
        head = (b"HTTP/1.1 200 OK\r\nContent-Length: 1000000\r\n\r\n")
        first = head + header_blob
        return handshake() + data_stream(
            1.0, [(0, len(first)), (len(first), 1460)],
            payloads=[first, None])

    def test_flv_rate_from_header(self):
        records = self.make_http_records(build_flv_header(750_000.0, 240.0))
        trace = build_download_trace(records, CLIENT, SERVER)
        estimate = estimate_session_rate(trace, duration=240.0)
        assert estimate.method == "flv-header"
        assert estimate.rate_bps == pytest.approx(750_000.0)
        assert estimate.container == "flv"

    def test_webm_falls_back_to_content_length(self):
        records = self.make_http_records(build_webm_header(240.0))
        trace = build_download_trace(records, CLIENT, SERVER)
        estimate = estimate_session_rate(trace, duration=200.0)
        assert estimate.method == "content-length"
        assert estimate.rate_bps == pytest.approx(1_000_000 * 8 / 200.0)
        assert estimate.content_length == 1_000_000

    def test_webm_without_duration_fails(self):
        records = self.make_http_records(build_webm_header(240.0))
        trace = build_download_trace(records, CLIENT, SERVER)
        estimate = estimate_session_rate(trace, duration=None)
        assert not estimate.ok
        assert estimate.method == "none"

    def test_garbage_head_yields_no_estimate(self):
        records = handshake() + data_stream(
            1.0, [(0, 100)], payloads=[b"\x00" * 100])
        trace = build_download_trace(records, CLIENT, SERVER)
        assert not estimate_session_rate(trace, duration=100.0).ok

    def test_head_capture_survives_out_of_order_arrival(self):
        head = b"HTTP/1.1 200 OK\r\nContent-Length: 500\r\n\r\n"
        blob = head + build_flv_header(500_000.0, 100.0)
        records = handshake() + data_stream(
            1.0, [(len(blob), 1000), (0, len(blob))],
            payloads=[None, blob])
        trace = build_download_trace(records, CLIENT, SERVER)
        # head arrived late: capture missed it (position-gated), so the
        # estimator reports no rate rather than garbage
        estimate = estimate_session_rate(trace, duration=100.0)
        assert estimate.method in ("none", "flv-header")


class TestAckClock:
    def cycle_records(self, rtt=0.02, block=8, gap=1.0, cycles=3):
        """Blocks of `block` segments separated by `gap` seconds."""
        records = handshake(rtt=rtt)
        t = 1.0
        offset = 0
        for _ in range(cycles):
            for i in range(block):
                records.append(rec(t + i * 0.001, seq=1 + offset,
                                   payload_len=1000))
                offset += 1000
            t += gap
        return records

    def test_whole_block_within_first_rtt(self):
        trace = build_download_trace(self.cycle_records(), CLIENT, SERVER)
        samples = ackclock_samples(trace)
        # first ON period skipped (buffering); 2 steady cycles measured
        assert len(samples) == 2
        assert all(s == 8000 for s in samples)

    def test_slow_block_exceeds_first_rtt(self):
        records = handshake(rtt=0.02)
        t, offset = 1.0, 0
        for cycle in range(3):
            for i in range(10):
                records.append(rec(t + i * 0.01, seq=1 + offset,
                                   payload_len=1000))
                offset += 1000
            t += 1.0
        trace = build_download_trace(records, CLIENT, SERVER)
        samples = ackclock_samples(trace)
        assert all(s == 3000 for s in samples)  # 20 ms at 1 pkt / 10 ms

    def test_no_rtt_estimate_no_samples(self):
        records = self.cycle_records()[3:]  # drop the handshake
        trace = build_download_trace(records, CLIENT, SERVER)
        assert ackclock_samples(trace) == []

    def test_include_connection_starts(self):
        trace = build_download_trace(self.cycle_records(), CLIENT, SERVER)
        with_starts = ackclock_samples(trace, include_connection_starts=True)
        without = ackclock_samples(trace)
        assert len(with_starts) == len(without) + 1

    def test_first_rtt_bytes_details(self):
        trace = build_download_trace(self.cycle_records(), CLIENT, SERVER)
        samples = first_rtt_bytes(trace.main_flow())
        assert all(isinstance(s, AckClockSample) for s in samples)
        assert all(s.rtt == pytest.approx(0.02) for s in samples)
