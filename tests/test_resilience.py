"""End-to-end resilience: faults vs retry policies, for every player.

These are the acceptance tests for the fault-injection subsystem: a
scripted link outage during a Netflix session triggers the stall
watchdog, a backoff reconnect with HTTP Range resume, and full recovery
(no byte re-downloaded); disabling retries turns the same fault into a
cleanly failed — never hung — session.
"""

import pytest

from repro.analysis import (
    aggregate_resilience,
    quantify_block_merging,
    recovery_time,
    summarize_resilience,
)
from repro.simnet import RESIDENCE, FaultSchedule, NetworkProfile
from repro.streaming import (
    DEFAULT_RETRY,
    NO_RETRY,
    RESTART_RETRY,
    Application,
    Container,
    Service,
    SessionConfig,
    run_session,
)
from repro.workloads import MBPS, NETFLIX_LADDER_BPS, Video

PROFILE = RESIDENCE.with_loss(0.0)


def make_video():
    return Video(
        video_id="resilience",
        duration=90.0,
        encoding_rate_bps=1.0 * MBPS,
        resolution="480p",
        container="silverlight",
        variants=(("235p", 0.5 * MBPS), ("480p", 1.0 * MBPS),
                  ("720p", 1.75 * MBPS)),
    )


def netflix_session(faults=None, retry_policy=None, seed=7, capture=120.0):
    config = SessionConfig(
        profile=PROFILE,
        service=Service.NETFLIX,
        application=Application.IOS,
        capture_duration=capture,
        seed=seed,
        retry_policy=retry_policy,
        faults=faults,
    )
    return run_session(make_video(), config)


@pytest.fixture(scope="module")
def clean_run():
    return netflix_session(retry_policy=DEFAULT_RETRY)


@pytest.fixture(scope="module")
def outage_resume_run():
    return netflix_session(FaultSchedule().outage(20.0, 10.0), DEFAULT_RETRY)


class TestOutageRecovery:
    """The ISSUE's acceptance scenario: a 10 s link outage mid-session."""

    def test_clean_baseline_sees_no_faults(self, clean_run):
        assert not clean_run.failed
        assert clean_run.retry_count == 0
        assert clean_run.wasted_redownloaded_bytes == 0
        assert clean_run.fault_log is None

    def test_stall_detected_and_reconnected(self, outage_resume_run):
        # the watchdog noticed the dead transfer and reconnected (with
        # exponential backoff) at least once
        assert outage_resume_run.retry_count > 0
        assert not outage_resume_run.failed

    def test_range_resume_redownloads_nothing(self, outage_resume_run):
        assert outage_resume_run.wasted_redownloaded_bytes == 0

    def test_session_fully_recovers(self, clean_run, outage_resume_run):
        # everything the clean run delivered is delivered despite the cut
        assert outage_resume_run.downloaded == clean_run.downloaded

    def test_fault_log_records_the_window(self, outage_resume_run):
        log = outage_resume_run.fault_log
        assert log is not None
        assert log.times("outage-start") == [20.0]
        assert log.times("outage-end") == [30.0]

    def test_restart_policy_pays_for_lost_bytes(self, clean_run):
        result = netflix_session(
            FaultSchedule().outage(20.0, 10.0), RESTART_RETRY)
        assert not result.failed
        assert result.retry_count > 0
        assert result.wasted_redownloaded_bytes > 0
        # the waste is real traffic: wire bytes exceed the clean run's
        assert result.downloaded >= clean_run.downloaded

    def test_no_retry_fails_cleanly_not_hung(self):
        result = netflix_session(
            FaultSchedule().outage(20.0, 10.0), NO_RETRY)
        assert result.failed
        assert result.fail_reason == "stall-timeout"
        assert result.retry_count == 0
        # the session terminated on its own, well before the capture end
        assert result.stall_time_s < result.duration_simulated

    def test_runs_are_deterministic(self, outage_resume_run):
        again = netflix_session(
            FaultSchedule().outage(20.0, 10.0), DEFAULT_RETRY)
        assert again.downloaded == outage_resume_run.downloaded
        assert again.retry_count == outage_resume_run.retry_count
        assert again.stall_events == outage_resume_run.stall_events
        assert again.connections_opened == outage_resume_run.connections_opened


class TestOtherFaultKinds:
    def test_connection_reset_without_policy_fails_cleanly(self):
        # satellite (a): a torn-down connection is surfaced to the player,
        # so even without a retry policy the session fails instead of
        # idling to the capture horizon
        result = netflix_session(FaultSchedule().connection_reset(2.0))
        assert result.failed
        assert result.fail_reason == "reset-by-peer"

    def test_connection_reset_with_policy_recovers(self, clean_run):
        result = netflix_session(
            FaultSchedule().connection_reset(2.0), DEFAULT_RETRY)
        assert not result.failed
        assert result.retry_count > 0
        assert result.downloaded == clean_run.downloaded

    def test_server_outage_503_then_recovery(self, clean_run):
        # the server 503s every block request for 10 s of steady state;
        # the client keeps retrying with backoff until it comes back
        result = netflix_session(
            FaultSchedule().server_outage(30.0, 10.0), DEFAULT_RETRY)
        assert not result.failed
        assert result.retry_count >= 1
        assert result.downloaded == clean_run.downloaded
        assert result.fault_log.times("server-outage-end") == [40.0]


# -- satellite (d): every player type terminates under a mid-session outage --

FAST = NetworkProfile(
    name="Fast", down_bps=40e6, up_bps=40e6, rtt=0.02, loss_down=0.0,
    buffer_bytes=1024 * 1024,
)

PLAYER_CASES = [
    ("flash", Service.YOUTUBE, Application.FIREFOX, Container.FLASH, "flv"),
    ("ie", Service.YOUTUBE, Application.INTERNET_EXPLORER, Container.HTML5,
     "webm"),
    ("chrome", Service.YOUTUBE, Application.CHROME, Container.HTML5, "webm"),
    ("android", Service.YOUTUBE, Application.ANDROID, Container.HTML5,
     "webm"),
    ("ipad", Service.YOUTUBE, Application.IOS, Container.HTML5, "webm"),
    ("netflix", Service.NETFLIX, Application.FIREFOX, None, "silverlight"),
]


def build_case_video(codec):
    if codec == "silverlight":
        ladder = tuple(zip(("a", "b", "c", "d", "e"), NETFLIX_LADDER_BPS))
        return Video(video_id="term", duration=2400.0,
                     encoding_rate_bps=NETFLIX_LADDER_BPS[-1],
                     resolution="1080p", container="silverlight",
                     variants=ladder)
    return Video(video_id="term", duration=300.0,
                 encoding_rate_bps=1.8 * MBPS, resolution="360p",
                 container=codec)


@pytest.mark.parametrize("name,service,application,container,codec",
                         PLAYER_CASES, ids=[c[0] for c in PLAYER_CASES])
def test_every_player_terminates_under_permanent_outage(
        name, service, application, container, codec):
    # the link dies at t=10 s and never comes back; with retries disabled
    # the stall watchdog must end every session — no player may simply
    # stop making progress and idle to the capture horizon
    config = SessionConfig(
        profile=FAST, service=service, application=application,
        container=container, capture_duration=75.0, seed=9,
        retry_policy=NO_RETRY,
        faults=FaultSchedule().outage(10.0, 500.0),
    )
    result = run_session(build_case_video(codec), config)
    assert result.failed or result.player_finished
    if result.failed:
        assert result.fail_reason is not None
    assert result.downloaded > 0  # it did stream before the cut


class TestResilienceAnalysis:
    def test_summary_of_recovered_session(self, outage_resume_run):
        summary = summarize_resilience(outage_resume_run)
        assert not summary.failed
        assert summary.retry_count == outage_resume_run.retry_count
        assert summary.recovered

    def test_recovery_time_semantics(self, outage_resume_run, clean_run):
        rec = recovery_time(outage_resume_run)
        if outage_resume_run.stall_events:
            assert rec is not None and rec > 0.0
        else:
            assert rec == 0.0  # fault absorbed without a stall
        assert recovery_time(clean_run) is None  # no fault log at all

    def test_aggregate(self, outage_resume_run):
        summary = summarize_resilience(outage_resume_run)
        agg = aggregate_resilience([summary, summary])
        assert agg.sessions == 2
        assert agg.failed_fraction == 0.0
        assert agg.mean_retries == summary.retry_count
        with pytest.raises(ValueError):
            aggregate_resilience([])

    def test_block_merging_report(self, clean_run, outage_resume_run):
        report = quantify_block_merging(clean_run, outage_resume_run)
        assert report.clean_cycles > 0
        assert report.faulted_cycles > 0
