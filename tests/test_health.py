"""Tests for the engine health plane (``repro.obs.health`` + dash).

The unit half drives a :class:`HealthMonitor` with a synthetic clock and
hand-fed beats, so every threshold (missed-beat age, straggler factor,
EWMA smoothing) is asserted at its exact boundary.  The integration half
runs real supervised workers and injures them — SIGSTOP for the
wedged-but-alive case heartbeats exist to catch, SIGKILL for crash
attribution — asserting detection lands well before ``unit_timeout``
would.
"""

import io
import os
import signal
import time
from statistics import median

import pytest

from repro.obs import (
    DashboardReporter,
    HealthMonitor,
    HealthPolicy,
    RunLedger,
    Suspicion,
    load_ledger,
)
from repro.runner import (
    NullRunObserver,
    RetryBudget,
    SupervisionPolicy,
    run_supervised,
)

#: Retry without waiting; generous deadline the tests must beat.
FAST = RetryBudget(max_attempts=3, backoff_base=0.0)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


class Spy(NullRunObserver):
    """Record every health-related observer callback."""

    enabled = True

    def __init__(self):
        self.beats = []
        self.suspicions = []
        self.units = []

    def unit_started(self, index, label, worker):
        self.units.append((index, label, worker))

    def worker_beat(self, lane):
        self.beats.append((lane.worker, lane.beats))

    def worker_suspect(self, suspicion):
        self.suspicions.append(suspicion)


def _monitor(clock, **policy_kw):
    policy = HealthPolicy(**policy_kw) if policy_kw else HealthPolicy()
    return HealthMonitor(policy, clock=clock)


class TestMissedBeat:
    def test_flags_exactly_past_the_threshold(self):
        clock = FakeClock()
        monitor = _monitor(clock, interval=1.0, miss_after=2.0)
        monitor.worker_started("w0", 100)
        monitor.beat("w0", 100, 0, 0)
        clock.now = 2.0                       # age == miss_after × interval
        assert monitor.poll() == []
        clock.now = 2.0 + 1e-6                # one epsilon past it
        fresh = monitor.poll()
        assert [s.kind for s in fresh] == ["missed-beat"]
        assert fresh[0].worker == "w0"
        assert fresh[0].pid == 100
        assert fresh[0].age_s == pytest.approx(2.0, abs=1e-3)

    def test_flags_once_until_a_beat_clears_it(self):
        clock = FakeClock()
        monitor = _monitor(clock, interval=0.5, miss_after=2.0)
        monitor.worker_started("w0", 1)
        monitor.beat("w0", 1, 0, 0)
        clock.now = 5.0
        assert len(monitor.poll()) == 1
        clock.now = 50.0                      # still silent: no re-flag
        assert monitor.poll() == []
        monitor.beat("w0", 1, 1, 0)           # recovery clears the flag
        assert monitor.lanes()[0].missing is False
        clock.now = 60.0                      # silent again: flags anew
        assert len(monitor.poll()) == 1
        assert len(monitor.suspicions) == 2

    def test_age_anchors_to_spawn_before_first_beat(self):
        clock = FakeClock(10.0)
        monitor = _monitor(clock, interval=1.0, miss_after=2.0)
        monitor.worker_started("w0", 1)       # spawned at t=10, never beat
        clock.now = 12.5
        fresh = monitor.poll()
        assert [s.kind for s in fresh] == ["missed-beat"]
        assert fresh[0].age_s == pytest.approx(2.5)

    def test_dead_lane_is_not_polled(self):
        clock = FakeClock()
        monitor = _monitor(clock)
        monitor.worker_started("w0", 1)
        monitor.worker_lost("w0", 1, "crash", "exit 9", None)
        clock.now = 100.0
        assert monitor.poll() == []           # lost, not missing


class TestStraggler:
    def _seed(self, monitor, clock, latencies, worker="w0"):
        for i, latency in enumerate(latencies):
            monitor.unit_started(worker, i, f"u{i}", None)
            clock.advance(latency)
            monitor.unit_finished(worker, i)

    def test_flags_exactly_past_factor_times_p50(self):
        clock = FakeClock()
        monitor = _monitor(clock, straggler_factor=4.0, min_completed=3,
                           miss_after=1e9)
        self._seed(monitor, clock, [1.0, 1.0, 1.0])
        monitor.unit_started("w1", 99, "slowpoke", None)
        clock.advance(4.0)                    # elapsed == factor × p50
        assert monitor.poll() == []
        clock.advance(1e-6)
        fresh = monitor.poll()
        assert [s.kind for s in fresh] == ["straggler"]
        assert fresh[0].unit == 99
        assert fresh[0].label == "slowpoke"
        assert monitor.poll() == []           # flagged once per unit

    def test_no_flag_below_min_completed(self):
        clock = FakeClock()
        monitor = _monitor(clock, straggler_factor=2.0, min_completed=3,
                           miss_after=1e9)
        self._seed(monitor, clock, [0.1, 0.1])   # one sample short
        monitor.unit_started("w1", 5, "u", None)
        clock.advance(1000.0)
        assert all(s.kind != "straggler" for s in monitor.poll())

    def test_threshold_tracks_seeded_latency_distribution(self):
        import random

        rng = random.Random(7)
        latencies = [round(0.2 + rng.random(), 3) for _ in range(9)]
        clock = FakeClock()
        monitor = _monitor(clock, straggler_factor=3.0, min_completed=3,
                           miss_after=1e9)
        self._seed(monitor, clock, latencies)
        p50 = median(latencies)
        assert monitor.completed_p50() == pytest.approx(p50)
        monitor.unit_started("w1", 50, "probe", None)
        clock.advance(3.0 * p50 - 0.001)      # just under the bar
        assert monitor.poll() == []
        clock.advance(0.002)                  # the same unit crosses it
        flagged = [s for s in monitor.poll() if s.kind == "straggler"]
        assert [s.unit for s in flagged] == [50]

    def test_completion_clears_the_flag(self):
        clock = FakeClock()
        monitor = _monitor(clock, straggler_factor=2.0, min_completed=3,
                           miss_after=1e9)
        self._seed(monitor, clock, [0.5, 0.5, 0.5])
        monitor.unit_started("w1", 9, "u", None)
        clock.advance(10.0)
        assert len(monitor.poll()) == 1
        monitor.unit_finished("w1", 9)
        assert monitor.lanes()[1].straggling is False


class TestLaneAccounting:
    def test_ewma_rate_matches_hand_computation(self):
        clock = FakeClock()
        monitor = _monitor(clock, ewma_alpha=0.3)
        latencies = [1.0, 2.0, 4.0]
        expected = 0.0
        for i, latency in enumerate(latencies):
            monitor.unit_started("w0", i, "u", None)
            clock.advance(latency)
            monitor.unit_finished("w0", i)
            sample = 1.0 / latency
            expected = (sample if expected == 0.0
                        else 0.3 * sample + 0.7 * expected)
        lane = monitor.lanes()[0]
        assert lane.rate == pytest.approx(expected)
        assert lane.units_done == 3
        assert lane.busy_s == pytest.approx(sum(latencies))

    def test_ewma_is_deterministic_across_runs(self):
        def run():
            clock = FakeClock()
            monitor = _monitor(clock, ewma_alpha=0.3)
            for i, latency in enumerate([0.3, 0.7, 0.1, 2.0]):
                monitor.unit_started("w0", i, "u", None)
                clock.advance(latency)
                monitor.unit_finished("w0", i)
            return monitor.lanes()[0].rate

        assert run() == run()

    def test_respawn_keeps_cumulative_counters(self):
        clock = FakeClock()
        monitor = _monitor(clock)
        monitor.worker_started("w0", 10)
        monitor.unit_started("w0", 0, "u", None)
        clock.advance(1.0)
        monitor.unit_finished("w0", 0)
        monitor.worker_lost("w0", 10, "crash", "exit 9", None)
        monitor.worker_started("w0", 11)      # the respawn
        lane = monitor.lanes()[0]
        assert lane.pid == 11
        assert lane.alive is True
        assert lane.units_done == 1           # history survives the pid
        assert lane.unit is None

    def test_unit_failed_counts_retries_and_clears_lane(self):
        class Failure:
            index = 3
            label = "u3"
            key = None
            kind = "exception"
            error = "boom"
            attempts = 1
            final = False
            worker = "w0"

        clock = FakeClock()
        monitor = _monitor(clock)
        monitor.unit_started("w0", 3, "u3", None)
        monitor.unit_failed(Failure())
        lane = monitor.lanes()[0]
        assert lane.retries == 1
        assert lane.unit is None
        Failure.final = True
        monitor.unit_failed(Failure())
        assert lane.retries == 1              # quarantine is not a retry

    def test_beats_update_watermarks_and_forward_to_observer(self):
        clock = FakeClock()
        monitor = _monitor(clock)
        spy = Spy()
        monitor.attach(spy)
        monitor.beat("w0", 5, 1, 1000)
        monitor.beat("w0", 5, 2, 400)         # watermark keeps the max
        lane = monitor.lanes()[0]
        assert lane.rss_kb == 1000
        assert lane.beats == 2
        assert spy.beats == [("w0", 1), ("w0", 2)]

    def test_worker_lost_is_a_suspicion(self):
        clock = FakeClock()
        monitor = _monitor(clock)
        spy = Spy()
        monitor.attach(spy)
        monitor.unit_started("w0", 7, "doomed", None)
        monitor.worker_lost("w0", 42, "timeout", "deadline exceeded", 7)
        assert [s.kind for s in spy.suspicions] == ["worker-lost"]
        assert spy.suspicions[0].unit == 7
        assert "deadline exceeded" in spy.suspicions[0].detail


# -- integration: real workers, real injuries --------------------------------


def _stop_self(item):
    """Write the pid, SIGSTOP this worker, square after SIGCONT."""
    root, x = item
    pidfile = os.path.join(root, f"pid-{x}")
    with open(pidfile, "w") as f:
        f.write(str(os.getpid()))
    os.kill(os.getpid(), signal.SIGSTOP)
    return x * x


def _sigkill_once(item):
    """SIGKILL the worker the first time each marker is seen."""
    root, x = item
    marker = os.path.join(root, f"kill-{x}.seen")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


class _Rescuer(NullRunObserver):
    """SIGCONT the stopped worker the moment suspicion lands."""

    enabled = True

    def __init__(self, pidfile):
        self.pidfile = pidfile
        self.detected_at = None
        self.kinds = []

    def worker_suspect(self, suspicion):
        self.kinds.append(suspicion.kind)
        if suspicion.kind != "missed-beat" or self.detected_at is not None:
            return
        self.detected_at = time.monotonic()
        with open(self.pidfile) as f:
            os.kill(int(f.read()), signal.SIGCONT)


class TestSupervisedIntegration:
    def test_sigstopped_worker_detected_by_missed_beats(self, tmp_path):
        """A wedged (stopped) worker is flagged within ~2 heartbeat
        intervals — and rescued, long before the 30s unit_timeout."""
        unit_timeout = 30.0
        interval = 0.1
        monitor = HealthMonitor(HealthPolicy(interval=interval))
        rescuer = _Rescuer(str(tmp_path / "pid-5"))
        monitor.attach(rescuer)
        policy = SupervisionPolicy(unit_timeout=unit_timeout, retry=FAST)
        started = time.monotonic()
        results, quarantined, _ = run_supervised(
            _stop_self, [(str(tmp_path), 5)], jobs=1, policy=policy,
            health=monitor)
        elapsed = time.monotonic() - started
        assert results == [25]
        assert quarantined == []
        assert "missed-beat" in rescuer.kinds
        assert rescuer.detected_at is not None
        # detection beat the deadline by an order of magnitude
        detect_s = rescuer.detected_at - started
        assert detect_s < unit_timeout / 2
        assert elapsed < unit_timeout

    def test_sigkilled_worker_attributed_in_ledger(self, tmp_path):
        """kill -9 mid-unit: the supervisor settles the corpse, the
        monitor attributes the retry to the lane in the ledger, and the
        retried unit still completes — all well inside unit_timeout."""
        unit_timeout = 30.0
        ledger = RunLedger(tmp_path / "run.jsonl",
                           meta={"experiment": "kill-test"})
        monitor = HealthMonitor(HealthPolicy(interval=0.1), ledger=ledger)
        spy = Spy()
        monitor.attach(spy)
        policy = SupervisionPolicy(unit_timeout=unit_timeout, retry=FAST)
        started = time.monotonic()
        results, quarantined, retries = run_supervised(
            _sigkill_once, [(str(tmp_path), 3)], jobs=1, policy=policy,
            health=monitor, describe=lambda i: f"unit-{i}")
        elapsed = time.monotonic() - started
        ledger.close()
        assert results == [9]
        assert quarantined == []
        assert retries == 1
        assert elapsed < unit_timeout
        assert "worker-lost" in [s.kind for s in spy.suspicions]

        view = load_ledger(tmp_path / "run.jsonl")
        retried = [e for e in view.events if e["event"] == "retried"]
        assert len(retried) == 1
        assert retried[0]["worker"] == "w0"   # the attribution
        assert retried[0]["kind"] == "crash"
        assert retried[0]["label"] == "unit-0"
        lost = [e for e in view.suspicions() if e["kind"] == "worker-lost"]
        assert lost and lost[0]["worker"] == "w0"
        # the respawned worker finished the retry on the same lane
        done = [e for e in view.events if e["event"] == "done"]
        assert [e["worker"] for e in done] == ["w0"]

    def test_healthy_run_raises_no_suspicion(self, tmp_path):
        # thresholds generous (but finite) against a loaded machine:
        # worker spawn latency must not read as a missed beat, and the
        # unit sleeps long enough that 50×p50 clears the time a unit
        # spends queued on a worker that is still importing — exact
        # thresholds are covered by the synthetic-clock suites above
        monitor = HealthMonitor(HealthPolicy(interval=1.0,
                                             straggler_factor=50.0))
        results, quarantined, retries = run_supervised(
            _slow_square, list(range(6)), jobs=2,
            policy=SupervisionPolicy(retry=FAST), health=monitor)
        assert results == [x * x for x in range(6)]
        assert monitor.suspicions == []
        assert monitor.units_done == 6
        lanes = monitor.lanes()
        assert [lane.worker for lane in lanes] == ["w0", "w1"]
        assert sum(lane.units_done for lane in lanes) == 6
        assert all(lane.beats >= 1 for lane in lanes)


def _square(x):
    return x * x


def _slow_square(x):
    time.sleep(0.05)
    return x * x


# -- the dashboard -----------------------------------------------------------


class _FakeTty(io.StringIO):
    def isatty(self):
        return True


def _lane(worker="w0", **kw):
    from repro.obs import WorkerLane

    lane = WorkerLane(worker=worker, pid=4242)
    lane.last_beat = time.monotonic()
    for key, value in kw.items():
        setattr(lane, key, value)
    return lane


class TestDashboardReporter:
    def test_tty_redraws_a_block_with_lanes(self):
        stream = _FakeTty()
        dash = DashboardReporter(stream=stream, min_interval=0.0)
        dash.batch_started(4, 1)
        dash.worker_beat(_lane("w0", units_done=2, rss_kb=64 * 1024))
        dash.worker_beat(_lane("w1"))
        dash.close()
        out = stream.getvalue()
        assert "\x1b[2K" in out               # in-place erase
        assert "\x1b[" in out and "A" in out  # cursor-up redraw
        assert "w0 pid 4242" in out
        assert "rss 64MB" in out

    def test_non_tty_emits_plain_lines(self):
        stream = io.StringIO()
        dash = DashboardReporter(stream=stream, min_interval=0.0,
                                 plain_interval=0.0)
        dash.batch_started(2, 0)
        dash.unit_finished(object())
        dash.close()
        out = stream.getvalue()
        assert "\x1b" not in out and "\r" not in out
        assert out.splitlines()[-1].startswith("units 1/2")

    def test_suspicion_prints_immediately_when_plain(self):
        stream = io.StringIO()
        dash = DashboardReporter(stream=stream, plain_interval=3600.0)
        dash.worker_suspect(Suspicion(
            kind="missed-beat", worker="w1", pid=7, unit=3, label="u3",
            age_s=2.5, detail="no heartbeat for 2.50s"))
        assert "suspect [missed-beat] w1 pid 7" in stream.getvalue()

    def test_straggler_flag_renders_on_the_lane(self):
        stream = _FakeTty()
        dash = DashboardReporter(stream=stream, min_interval=0.0)
        dash.worker_beat(_lane("w0", straggling=True))
        dash.close()
        assert "STRAGGLER" in stream.getvalue()

    def test_zero_unit_close_still_prints_summary(self):
        stream = io.StringIO()
        with DashboardReporter(stream=stream) as dash:
            dash.batch_started(0, 0)
        assert stream.getvalue().splitlines()[-1].startswith("units 0/0")
