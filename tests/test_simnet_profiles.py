"""Tests for the measurement-network profiles."""

import pytest

from repro.simnet import (
    ACADEMIC,
    CLIENT_IP,
    HOME,
    PROFILE_ORDER,
    PROFILES,
    RESEARCH,
    RESIDENCE,
    SERVER_IP,
    BernoulliLoss,
    GilbertElliottLoss,
    NoLoss,
    build_client_server,
    get_profile,
)


class TestProfileRegistry:
    def test_four_networks_registered(self):
        assert set(PROFILES) == {"Research", "Residence", "Academic", "Home"}
        assert PROFILE_ORDER == ("Research", "Residence", "Academic", "Home")

    def test_lookup_case_insensitive(self):
        assert get_profile("research") is RESEARCH
        assert get_profile("HOME") is HOME

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("Office")

    def test_paper_capacities(self):
        """Section 4.2's published numbers."""
        assert RESEARCH.down_bps == 100e6       # 100 Mbps wired
        assert RESIDENCE.down_bps == 7.7e6      # ADSL download
        assert RESIDENCE.up_bps == 1.2e6        # ADSL upload
        assert HOME.down_bps == 20e6            # cable download
        assert HOME.up_bps == 3e6               # cable upload

    def test_geography(self):
        assert RESEARCH.country == "France"
        assert RESIDENCE.country == "France"
        assert ACADEMIC.country == "USA"
        assert HOME.country == "USA"

    def test_lossy_networks_use_bursty_loss(self):
        assert RESIDENCE.bursty_loss
        assert ACADEMIC.bursty_loss
        assert not RESEARCH.bursty_loss


class TestProfileDerivation:
    def test_with_loss(self):
        derived = RESIDENCE.with_loss(0.02)
        assert derived.loss_down == 0.02
        assert derived.down_bps == RESIDENCE.down_bps
        assert RESIDENCE.loss_down != 0.02  # original untouched

    def test_with_bandwidth(self):
        derived = ACADEMIC.with_bandwidth(5e6)
        assert derived.down_bps == 5e6
        assert derived.up_bps == ACADEMIC.up_bps
        both = ACADEMIC.with_bandwidth(5e6, 2e6)
        assert both.up_bps == 2e6


class TestPathConstruction:
    def test_bursty_profile_builds_gilbert_elliott(self):
        import random

        path = RESIDENCE.build_path(_scheduler(), random.Random(1))
        assert isinstance(path.forward.loss_model, GilbertElliottLoss)
        # calibration: the long-run rate matches the profile's loss_down
        assert path.forward.loss_model.steady_state_loss == pytest.approx(
            RESIDENCE.loss_down, rel=0.05)

    def test_smooth_profile_builds_bernoulli(self):
        import random

        path = RESEARCH.build_path(_scheduler(), random.Random(1))
        assert isinstance(path.forward.loss_model, BernoulliLoss)

    def test_lossless_direction_builds_noloss(self):
        import random

        path = RESEARCH.build_path(_scheduler(), random.Random(1))
        assert isinstance(path.reverse.loss_model, NoLoss)

    def test_asymmetry_applied(self):
        import random

        path = RESIDENCE.build_path(_scheduler(), random.Random(1))
        assert path.forward.rate_bps == 7.7e6
        assert path.reverse.rate_bps == 1.2e6
        assert path.rtt_floor == pytest.approx(RESIDENCE.rtt)


class TestBuildClientServer:
    def test_topology_wiring(self):
        net, client, server, path = build_client_server(RESEARCH, seed=1)
        assert client.ip == CLIENT_IP
        assert server.ip == SERVER_IP
        # download direction = forward link
        assert path.forward.rate_bps == RESEARCH.down_bps

    def test_same_seed_same_loss_draws(self):
        import random

        def draws(seed):
            net, _c, _s, path = build_client_server(RESIDENCE, seed=seed)
            model = path.forward.loss_model
            return [model.should_drop() for _ in range(200)]

        assert draws(9) == draws(9)
        assert draws(9) != draws(10)


def _scheduler():
    from repro.simnet import EventScheduler

    return EventScheduler()
