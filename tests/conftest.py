"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import pytest

from repro.simnet import Network, NetworkProfile, build_client_server
from repro.tcp import TcpConfig, TcpConnection, TcpListener


@dataclass
class TransferResult:
    """Outcome of :func:`run_bulk_transfer`."""

    received: int
    finished_at: float
    client: TcpConnection
    server: Optional[TcpConnection]
    network: Network
    chunks: List[bytes] = field(default_factory=list)


def run_bulk_transfer(
    profile: NetworkProfile,
    nbytes: int,
    *,
    seed: int = 1,
    client_config: Optional[TcpConfig] = None,
    server_config: Optional[TcpConfig] = None,
    header: bytes = b"",
    horizon: float = 600.0,
    keep_bytes: bool = False,
) -> TransferResult:
    """Run one client-server bulk transfer of ``nbytes`` over ``profile``.

    The server sends ``header`` as real bytes followed by virtual payload
    and closes.  The client reads greedily.  Returns a
    :class:`TransferResult`.
    """
    net, client_host, server_host, _path = build_client_server(profile, seed=seed)
    sched = net.scheduler
    state: Dict[str, TcpConnection] = {}

    def on_accept(conn: TcpConnection) -> None:
        state["server"] = conn

        def on_data(c: TcpConnection) -> None:
            request = c.recv(4096)
            if request:
                if header:
                    c.send(header)
                c.send_virtual(nbytes - len(header))
                c.close()

        conn.on_data = on_data

    TcpListener(server_host, sched, 80, on_accept, config=server_config)
    client = TcpConnection(
        client_host,
        sched,
        client_host.allocate_port(),
        server_host.ip,
        80,
        config=client_config,
    )
    result = TransferResult(0, 0.0, client, None, net)

    def on_data(c: TcpConnection) -> None:
        if keep_bytes:
            data = c.recv(1 << 22)
            result.chunks.append(data)
            result.received += len(data)
        else:
            result.received += c.recv_discard(1 << 22)
        result.finished_at = sched.clock.now()

    client.on_data = on_data
    client.on_connected = lambda c: c.send(b"GET /video HTTP/1.1\r\n\r\n")
    client.connect()
    sched.run_until(horizon)
    result.server = state.get("server")
    return result


@pytest.fixture
def research():
    from repro.simnet import RESEARCH

    return RESEARCH


@pytest.fixture
def residence():
    from repro.simnet import RESIDENCE

    return RESIDENCE


@pytest.fixture
def lossless_profile():
    """A clean, fast profile for deterministic protocol tests."""
    return NetworkProfile(
        name="TestNet",
        down_bps=10e6,
        up_bps=10e6,
        rtt=0.02,
        loss_down=0.0,
        buffer_bytes=512 * 1024,
    )
