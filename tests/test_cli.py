"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "Research" in out
        assert "firefox" in out

    def test_list_json_emits_registry(self, capsys):
        import json

        from repro.experiments import REGISTRY

        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in payload] == list(REGISTRY)
        for entry in payload:
            assert set(entry) == {"name", "title", "paper", "tags"}
            assert isinstance(entry["tags"], list)

    def test_list_with_cache_dir_shows_campaign_journals(self, capsys,
                                                         tmp_path):
        from repro.runner import CampaignJournal

        with CampaignJournal.for_campaign(tmp_path, "fig2", "small", 1) as j:
            j.done("aa" + "0" * 38)
            j.quarantined("bb" + "0" * 38, "boom", 3)
        assert main(["list", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Campaign journals" in out
        assert "fig2" in out
        assert "Quarantined" in out

    def test_list_with_empty_cache_dir_says_none(self, capsys, tmp_path):
        assert main(["list", "--cache-dir", str(tmp_path)]) == 0
        assert "campaign journals: none" in capsys.readouterr().out

    def test_list_json_with_cache_dir_adds_campaigns(self, capsys,
                                                     tmp_path):
        import json

        from repro.runner import CampaignJournal

        with CampaignJournal.for_campaign(tmp_path, "fig3", "small", 0) as j:
            j.done("aa" + "0" * 38)
        assert main(["list", "--json", "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"experiments", "campaigns"}
        assert payload["campaigns"][0]["experiment"] == "fig3"
        assert payload["campaigns"][0]["done"] == 1


class TestStream:
    def test_flash_session(self, capsys):
        code = main([
            "stream", "--network", "Research", "--application", "firefox",
            "--container", "flash", "--rate-mbps", "1.0",
            "--duration", "300", "--capture", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy         : Short" in out
        assert "accumulation" in out

    def test_html5_chrome_session(self, capsys):
        code = main([
            "stream", "--application", "chrome", "--container", "html5",
            "--rate-mbps", "2.0", "--duration", "200", "--capture", "90",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy" in out

    def test_netflix_session(self, capsys):
        code = main([
            "stream", "--service", "netflix", "--network", "Academic",
            "--duration", "2400", "--capture", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Netflix" in out
        assert "connection(s)" in out

    def test_interrupted_session_reports_waste(self, capsys):
        code = main([
            "stream", "--application", "firefox", "--container", "html5",
            "--rate-mbps", "1.0", "--duration", "300", "--capture", "120",
            "--watch-fraction", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "interrupted at" in out
        assert "wasted" in out

    def test_pcap_output_and_analyze_round_trip(self, capsys, tmp_path):
        pcap = str(tmp_path / "session.pcap")
        assert main([
            "stream", "--container", "flash", "--rate-mbps", "0.8",
            "--duration", "240", "--capture", "45", "--pcap", pcap,
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", pcap, "--duration", "240"]) == 0
        out = capsys.readouterr().out
        assert "strategy         : Short" in out
        assert "flv-header" in out


class TestExperimentCommand:
    def test_model_validation_runs(self, capsys):
        assert main(["experiment", "model_validation"]) == 0
        out = capsys.readouterr().out
        assert "53.3" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError):
            main(["stream", "--network", "Atlantis"])
