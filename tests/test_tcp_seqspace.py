"""Tests for 32-bit sequence arithmetic and unwrapping."""

from hypothesis import given
from hypothesis import strategies as st

from repro.tcp import SequenceUnwrapper, seq_diff, seq_leq, seq_lt, wrap

SEQ_MOD = 1 << 32


class TestWrap:
    def test_identity_below_mod(self):
        assert wrap(100) == 100

    def test_wraps_at_mod(self):
        assert wrap(SEQ_MOD) == 0
        assert wrap(SEQ_MOD + 5) == 5

    def test_negative_wraps(self):
        assert wrap(-1) == SEQ_MOD - 1


class TestComparison:
    def test_simple_ordering(self):
        assert seq_lt(1, 2)
        assert not seq_lt(2, 1)
        assert not seq_lt(2, 2)

    def test_ordering_across_wrap(self):
        near_top = SEQ_MOD - 10
        assert seq_lt(near_top, 5)      # 5 is "after" the wrap
        assert not seq_lt(5, near_top)

    def test_leq(self):
        assert seq_leq(3, 3)
        assert seq_leq(3, 4)
        assert not seq_leq(4, 3)

    def test_diff_signed(self):
        assert seq_diff(10, 4) == 6
        assert seq_diff(4, 10) == -6

    def test_diff_across_wrap(self):
        assert seq_diff(2, SEQ_MOD - 3) == 5
        assert seq_diff(SEQ_MOD - 3, 2) == -5


class TestSequenceUnwrapper:
    def test_first_value_is_base(self):
        u = SequenceUnwrapper()
        assert u.unwrap(1000) == 1000

    def test_monotone_stream(self):
        u = SequenceUnwrapper()
        values = [u.unwrap(i * 1000) for i in range(10)]
        assert values == [i * 1000 for i in range(10)]

    def test_unwraps_across_wraparound(self):
        u = SequenceUnwrapper()
        u.unwrap(SEQ_MOD - 2000)
        after = u.unwrap(wrap(SEQ_MOD + 3000))
        assert after == SEQ_MOD + 3000

    def test_tolerates_small_reordering(self):
        u = SequenceUnwrapper()
        assert u.unwrap(5000) == 5000
        assert u.unwrap(3000) == 3000  # late (retransmitted) segment
        assert u.unwrap(6000) == 6000

    @given(st.lists(st.integers(min_value=-(1 << 20), max_value=1 << 20), min_size=1, max_size=60))
    def test_round_trip_arbitrary_walk(self, deltas):
        """Unwrapping a wrapped random walk recovers the walk exactly as
        long as single steps stay within half the sequence space."""
        u = SequenceUnwrapper()
        pos = 1 << 33  # keep the true value positive
        for delta in deltas:
            pos += delta
            assert u.unwrap(wrap(pos)) - u.unwrap(wrap(pos)) == 0
            assert u.unwrap(wrap(pos)) % SEQ_MOD == wrap(pos)
