"""Tests for the sharded campaign engine and streaming reduction.

The load-bearing guarantees, in dependency order:

* the :mod:`repro.stats` primitives merge exactly (integer state
  bit-for-bit, float moments to documented rounding tolerance);
* ``merge_options`` gives ``engine_options`` the same nested-scope
  composition semantics the 7-way copy used to, plus the ``sharding``
  field and a loud failure on unknown options;
* shard fingerprints are stable under re-dimensioning and distinct
  under anything that changes the shard's value;
* ``run_shards`` rides the pool: plan order, cache hits on re-run,
  artifacts in the shard store;
* a merged per-shard reduction equals the unsharded collector on the
  same plan — across ``--jobs`` values — and ``model_validation``
  validates Eqs (3)-(4) at 10k+ sessions through the sharded path
  (the Tier-1 campaign gate).
"""

import math
import random

import pytest

from repro.model import (
    PopulationMoments,
    aggregate_mean_exact,
    aggregate_variance,
    constant_strategy,
    simulate_aggregate,
    simulate_aggregate_moments,
)
from repro.obs import CampaignCollector, CampaignSnapshot, ProgressReporter
from repro.runner import (
    EngineOptions,
    ResultCache,
    RunStats,
    SessionPlan,
    ShardResult,
    ShardSpec,
    ShardStore,
    Sharding,
    current_options,
    engine_options,
    merge_options,
    run_sharded_sessions,
    run_shards,
    shard_fingerprint,
    split_items,
)
from repro.simnet import RESEARCH
from repro.simnet.rng import derive_seed
from repro.stats import HistogramSketch, MomentAccumulator
from repro.streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
)
from repro.workloads import MBPS, Video, make_youflash


# -- streaming statistics primitives ----------------------------------------


class TestMomentAccumulator:
    def test_matches_closed_forms(self):
        values = [1.5, -2.0, 7.25, 0.0, 3.5]
        acc = MomentAccumulator()
        for v in values:
            acc.add(v)
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        assert acc.count == n
        assert acc.total == sum(values)
        assert acc.min == min(values)
        assert acc.max == max(values)
        assert acc.mean == pytest.approx(mean, rel=1e-12)
        assert acc.variance == pytest.approx(var, rel=1e-12)
        assert acc.std == pytest.approx(math.sqrt(var), rel=1e-12)

    def test_merge_equals_unsharded(self):
        rng = random.Random(7)
        values = [rng.gauss(5.0, 2.0) for _ in range(1000)]
        whole = MomentAccumulator()
        for v in values:
            whole.add(v)
        # any sharding of the same observations merges back to the whole
        parts = [MomentAccumulator() for _ in range(7)]
        for i, v in enumerate(values):
            parts[i % 7].add(v)
        merged = MomentAccumulator()
        for part in parts:
            merged.merge(part)
        assert merged.count == whole.count          # bit-identical
        assert merged.min == whole.min
        assert merged.max == whole.max
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.variance == pytest.approx(whole.variance, rel=1e-12)

    def test_merge_empty_is_identity(self):
        acc = MomentAccumulator()
        acc.add(3.0)
        before = (acc.count, acc.mean, acc.m2, acc.min, acc.max)
        acc.merge(MomentAccumulator())
        assert (acc.count, acc.mean, acc.m2, acc.min, acc.max) == before
        empty = MomentAccumulator()
        empty.merge(acc)
        assert empty.count == 1 and empty.mean == 3.0

    def test_add_many_matches_sequential(self):
        rng = random.Random(11)
        values = [rng.expovariate(0.5) for _ in range(500)]
        seq = MomentAccumulator()
        for v in values:
            seq.add(v)
        batch = MomentAccumulator()
        batch.add_many(values)
        assert batch.count == seq.count
        assert batch.min == seq.min and batch.max == seq.max
        assert batch.mean == pytest.approx(seq.mean, rel=1e-12)
        assert batch.variance == pytest.approx(seq.variance, rel=1e-12)

    def test_empty_properties(self):
        acc = MomentAccumulator()
        assert acc.variance == 0.0 and acc.std == 0.0


class TestHistogramSketch:
    def test_merged_percentiles_bit_identical(self):
        rng = random.Random(3)
        values = [rng.lognormvariate(10.0, 2.0) for _ in range(2000)]
        whole = HistogramSketch()
        whole.observe_many(values)
        parts = [HistogramSketch() for _ in range(5)]
        for i, v in enumerate(values):
            parts[i % 5].observe(v)
        merged = HistogramSketch()
        for part in parts:
            merged.merge(part)
        # fixed binning: counts and ranks are exact integers, so the
        # sharded percentile is *bit*-identical, not just close
        assert merged.counts == whole.counts
        assert merged.count == whole.count == len(values)
        for q in (0, 10, 50, 90, 99, 100):
            assert merged.percentile(q) == whole.percentile(q)

    def test_percentile_value_within_bin_width(self):
        values = sorted(random.Random(5).uniform(1.0, 1000.0)
                        for _ in range(999))
        sketch = HistogramSketch()
        sketch.observe_many(values)
        width = 10.0 ** (1.0 / sketch.bins_per_decade)
        for q in (5, 50, 95):
            exact = values[round((q / 100) * (len(values) - 1))]
            assert exact / width <= sketch.percentile(q) <= exact * width

    def test_underflow_and_bounds(self):
        sketch = HistogramSketch()
        sketch.observe_many([0.0, -1.0, 5.0])
        assert sketch.underflow == 2
        assert sketch.count == 3
        assert sketch.percentile(0) == 0.0      # underflow reports as 0
        assert sketch.percentile(100) > 0.0
        assert HistogramSketch().percentile(50) is None
        with pytest.raises(ValueError, match="percentile"):
            sketch.percentile(101)

    def test_binning_mismatch_refuses_merge(self):
        with pytest.raises(ValueError, match="binnings"):
            HistogramSketch(bins_per_decade=12).merge(
                HistogramSketch(bins_per_decade=6))


# -- EngineOptions / merge_options ------------------------------------------


class TestMergeOptions:
    def test_none_inherits_base(self):
        base = EngineOptions(jobs=4)
        merged = merge_options(base, {"jobs": None, "cache": None})
        assert merged.jobs == 4 and merged.cache is None

    def test_normalizers_apply(self, tmp_path):
        base = EngineOptions()
        merged = merge_options(base, {"jobs": 0, "cache": str(tmp_path)})
        assert merged.jobs == 1                    # clamped to >= 1
        assert isinstance(merged.cache, ResultCache)

    def test_unknown_option_is_loud(self):
        with pytest.raises(TypeError, match="unknown engine option"):
            merge_options(EngineOptions(), {"job": 2})

    def test_nested_scopes_compose(self, tmp_path):
        stats = RunStats()
        with engine_options(jobs=3, sharding=Sharding(shards=2)):
            with engine_options(cache=str(tmp_path), stats=stats):
                options = current_options()
                # inner scope inherits what it did not override
                assert options.jobs == 3
                assert options.sharding == Sharding(shards=2)
                assert isinstance(options.cache, ResultCache)
                assert options.stats is stats
            assert current_options().cache is None
        assert current_options().sharding is None

    def test_sharding_validation(self):
        with pytest.raises(ValueError, match="shards"):
            Sharding(shards=0)
        with pytest.raises(ValueError, match="sessions"):
            Sharding(shards=2, sessions=0)
        with pytest.raises(ValueError, match="shard_size"):
            Sharding(shard_size=0)

    def test_shard_count_by_count_and_by_size(self):
        assert Sharding(shards=4).shard_count(100) == 4
        assert Sharding(shard_size=30).shard_count(100) == 4  # ceil
        assert Sharding(shard_size=30).shard_count(90) == 3
        assert Sharding(shard_size=200).shard_count(100) == 1


# -- shard identity ----------------------------------------------------------


def _double(x):
    return x * 2


def _spec(index=0, of=4, units=10, campaign="camp", seed=0):
    return ShardSpec(campaign=campaign, scale="tiny", seed=seed,
                     index=index, of=of, units=units)


class TestShardFingerprint:
    def test_redimension_keeps_fingerprints(self):
        # growing the campaign (more shards, same per-shard size) must
        # not invalidate existing shard artifacts: `of` is display-only
        a = shard_fingerprint(_spec(index=1, of=4), _double, (3,))
        b = shard_fingerprint(_spec(index=1, of=16), _double, (3,))
        assert a == b

    def test_identity_fields_are_load_bearing(self):
        base = shard_fingerprint(_spec(), _double, (3,))
        assert shard_fingerprint(_spec(index=1), _double, (3,)) != base
        assert shard_fingerprint(_spec(seed=1), _double, (3,)) != base
        assert shard_fingerprint(_spec(units=11), _double, (3,)) != base
        assert shard_fingerprint(_spec(campaign="x"), _double, (3,)) != base
        assert shard_fingerprint(_spec(), _double, (4,)) != base
        assert shard_fingerprint(_spec(), _square, (3,)) != base


def _square(x):
    return x * x


class TestSplitItems:
    def test_fixed_chunk_size(self):
        assert split_items([1, 2, 3, 4, 5], 3) == [[1, 2], [3, 4], [5]]
        assert split_items([1, 2], 5) == [[1], [2]]
        assert split_items([], 3) == []

    def test_prefix_stability_under_growth(self):
        # same per-shard size, more items: earlier chunks unchanged, so
        # their shard fingerprints (and cached artifacts) stay valid
        small = split_items(list(range(8)), 4)     # chunks of 2
        large = split_items(list(range(12)), 6)    # still chunks of 2
        assert large[:len(small)] == small

    def test_invalid_shards(self):
        with pytest.raises(ValueError, match="shards"):
            split_items([1], 0)
        with pytest.raises(ValueError, match="size"):
            split_items([1], size=0)

    def test_size_mode_fixes_the_chunk_size(self):
        assert split_items([1, 2, 3, 4, 5], size=2) == [[1, 2], [3, 4], [5]]
        assert split_items([1, 2], size=5) == [[1, 2]]
        assert split_items([], size=3) == []
        # the chunk *count* floats with the item count, never the size
        assert [len(c) for c in split_items(list(range(10)), size=4)] \
            == [4, 4, 2]

    def test_size_mode_prefix_stable_and_fingerprints_agree(self):
        # re-dimensioning at the same --shard-size: earlier chunks (and
        # so their shard fingerprints) are byte-for-byte unchanged
        small = split_items(list(range(8)), size=2)
        large = split_items(list(range(12)), size=2)
        assert large[:len(small)] == small
        for index, chunk in enumerate(small):
            a = shard_fingerprint(
                _spec(index=index, of=len(small), units=len(chunk)),
                _double, (tuple(chunk),))
            b = shard_fingerprint(
                _spec(index=index, of=len(large), units=len(chunk)),
                _double, (tuple(chunk),))
            assert a == b

    def test_count_and_size_modes_agree_on_equal_geometry(self):
        # --shards 3 over 12 items is chunks of 4; --shard-size 4 must
        # produce the identical split (and so identical fingerprints)
        items = list(range(12))
        assert split_items(items, 3) == split_items(items, size=4)


# -- run_shards through the pool ---------------------------------------------


class TestRunShards:
    def _units(self, n=4):
        return [(_spec(index=i, of=n, units=1), (i,)) for i in range(n)]

    def test_plan_order_and_values(self):
        results = run_shards(_double, self._units())
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert [r.shard.index for r in results] == [0, 1, 2, 3]
        assert all(isinstance(r, ShardResult) for r in results)

    def test_jobs_equivalence(self):
        serial = run_shards(_double, self._units())
        with engine_options(jobs=2):
            parallel = run_shards(_double, self._units())
        assert [r.value for r in serial] == [r.value for r in parallel]

    def test_rerun_hits_shard_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold, warm = RunStats(), RunStats()
        with engine_options(cache=cache):
            run_shards(_double, self._units(), stats=cold)
            results = run_shards(_double, self._units(), stats=warm)
        assert cold.cache_misses == 4 and cold.cache_hits == 0
        assert warm.cache_hits == 4 and warm.cache_misses == 0
        assert [r.value for r in results] == [0, 2, 4, 6]
        # artifacts live in the shard namespace, not the session cache
        store = ShardStore(cache)
        assert store.stats()["entries"] == 4
        assert cache.stats()["entries"] == 0

    def test_redimensioned_campaign_reuses_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        grown = RunStats()
        with engine_options(cache=cache):
            run_shards(_double, self._units(4))
            run_shards(_double, self._units(8), stats=grown)
        # the first 4 shards of the grown campaign are cache hits even
        # though the shard *count* changed
        assert grown.cache_hits == 4 and grown.cache_misses == 4


# -- streaming reduction equivalence (the satellite-4 contract) --------------


def _plan(i, seed=3):
    video = Video(video_id=f"v{i}", duration=240.0,
                  encoding_rate_bps=(0.6 + 0.05 * i) * MBPS,
                  resolution="360p", container="flv")
    config = SessionConfig(profile=RESEARCH, service=Service.YOUTUBE,
                           application=Application.FIREFOX,
                           container=Container.FLASH,
                           capture_duration=30.0,
                           seed=derive_seed(seed, str(i)))
    return SessionPlan(video, config)


def _assert_snapshots_equal(sharded: CampaignSnapshot,
                            unsharded: CampaignSnapshot):
    """The documented contract: integer state bit-for-bit, float moments
    to ~1e-9 relative (addition order differs across shard boundaries)."""
    assert sharded.sessions == unsharded.sessions
    assert sharded.flows == unsharded.flows
    assert sharded.strategies == unsharded.strategies
    assert set(sharded.moments) == set(unsharded.moments)
    for name, acc in unsharded.moments.items():
        other = sharded.moments[name]
        assert other.count == acc.count
        assert other.min == acc.min and other.max == acc.max
        assert other.mean == pytest.approx(acc.mean, rel=1e-9)
        assert other.variance == pytest.approx(acc.variance, rel=1e-9,
                                               abs=1e-12)
    assert set(sharded.sketches) == set(unsharded.sketches)
    for name, sketch in unsharded.sketches.items():
        other = sharded.sketches[name]
        assert other.counts == sketch.counts     # bin-for-bin
        assert other.underflow == sketch.underflow
        for q in (50, 90, 99):
            assert other.percentile(q) == sketch.percentile(q)


class TestStreamingReduction:
    N = 5

    def _unsharded(self):
        from repro.streaming import run_session

        collector = CampaignCollector(streaming=True)
        for i in range(self.N):
            plan = _plan(i)
            collector.collect(run_session(plan.video, plan.config))
        return collector.snapshot()

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_merged_shards_equal_unsharded(self, jobs):
        plans = [_plan(i) for i in range(self.N)]
        with engine_options(jobs=jobs):
            sharded = run_sharded_sessions(
                plans, campaign="equiv", scale="tiny", seed=0, shards=3)
        _assert_snapshots_equal(sharded, self._unsharded())

    def test_jobs_values_bit_identical(self):
        plans = [_plan(i) for i in range(self.N)]
        snaps = []
        for jobs in (1, 2):
            with engine_options(jobs=jobs):
                snaps.append(run_sharded_sessions(
                    plans, campaign="equiv", scale="tiny", seed=0,
                    shards=3))
        a, b = snaps
        # same merge order (plan order) -> floats identical, not approx
        assert a.moments.keys() == b.moments.keys()
        for name in a.moments:
            assert a.moments[name].mean == b.moments[name].mean
            assert a.moments[name].m2 == b.moments[name].m2
        assert a.sketches["bytes"].counts == b.sketches["bytes"].counts

    def test_ambient_policy_sets_default_shards(self):
        plans = [_plan(i) for i in range(2)]
        with engine_options(sharding=Sharding(shards=2)):
            snap = run_sharded_sessions(plans, campaign="pol", seed=0)
        assert snap.sessions == 2

    def test_collector_merges_shard_results(self):
        plans = [_plan(i) for i in range(3)]
        collector = CampaignCollector()
        with engine_options(observer=collector):
            run_sharded_sessions(plans, campaign="obs", seed=0, shards=2)
        snap = collector.snapshot()
        assert snap.sessions == 3
        assert snap.flows > 0
        assert collector.sessions == []   # nothing retained, only merged

    def test_streaming_collector_refuses_per_session_exports(self):
        collector = CampaignCollector(streaming=True)
        with pytest.raises(RuntimeError, match="streaming"):
            collector.flow_records()
        assert collector.aggregate_records() == []

    def test_snapshot_is_idempotent(self):
        from repro.streaming import run_session

        collector = CampaignCollector()
        plan = _plan(0)
        collector.collect(run_session(plan.video, plan.config))
        first = collector.snapshot()
        second = collector.snapshot()
        assert first.sessions == second.sessions == 1
        assert first.moments["bytes"].count \
            == second.moments["bytes"].count

    def test_progress_reporter_counts_shards(self):
        import io

        plans = [_plan(i) for i in range(4)]
        reporter = ProgressReporter(stream=io.StringIO())
        with engine_options(observer=reporter):
            run_sharded_sessions(plans, campaign="prog", seed=0, shards=2)
        assert reporter.shards_done == 2
        assert reporter.shards_total == 2


# -- mergeable Monte-Carlo moments -------------------------------------------


class TestAggregateMoments:
    def setup_method(self):
        self.catalog = make_youflash(seed=0, scale=0.02)

    def test_sample_view_matches_simulate_aggregate(self):
        kwargs = dict(lam=0.3, horizon=3000.0, strategy=constant_strategy,
                      peak_bps=8e6, seed=5)
        sample = simulate_aggregate(self.catalog, **kwargs)
        moments = simulate_aggregate_moments(self.catalog, **kwargs)
        assert moments.sessions == sample.sessions
        assert moments.warmup == sample.warmup
        assert moments.mean_bps == pytest.approx(sample.mean_bps,
                                                 rel=1e-9)
        assert moments.variance_bps2 == pytest.approx(
            sample.variance_bps2, rel=1e-9)

    def test_merged_shards_match_analytic_model(self):
        lam, peak = 0.3, 8e6
        merged = None
        for index in range(4):
            shard = simulate_aggregate_moments(
                self.catalog, lam, horizon=2500.0,
                strategy=constant_strategy, peak_bps=peak, seed=10 + index)
            merged = shard if merged is None else merged.merge(shard)
        pop = PopulationMoments.from_catalog(self.catalog,
                                             download_rate_bps=peak)
        assert merged.sessions > 1000
        assert merged.mean_bps == pytest.approx(
            aggregate_mean_exact(lam, pop), rel=0.1)
        assert merged.variance_bps2 == pytest.approx(
            aggregate_variance(lam, pop), rel=0.25)
        assert merged.sketch.count == merged.moments.count


# -- the Tier-1 campaign gate ------------------------------------------------


class TestModelValidationCampaignGate:
    """`model_validation` through the sharded engine at 10k+ sessions:
    the simulated aggregate mean/variance must match Eqs (3)-(4)."""

    def test_10k_sessions_validate_model(self, tmp_path):
        from repro.experiments import Scale, get_experiment

        tiny = Scale(name="tiny", sessions_per_cell=3,
                     capture_duration=90.0, catalog_scale=0.02,
                     mc_horizon=4000.0)
        stats = RunStats()
        result = get_experiment("model_validation").run(
            tiny, seed=0, jobs=2, cache=ResultCache(tmp_path),
            stats=stats, sharding=Sharding(shards=4, sessions=10_000))
        assert result.shards == 4
        # lam * horizon = 10k expected arrivals per strategy; Poisson
        # fluctuation is ~1%, so the three-strategy campaign clears 27k
        assert result.campaign_sessions >= 27_000
        for row in result.moment_rows:
            assert row.sessions >= 9_000
            assert row.mean_error < 0.05, row
            assert row.var_error < 0.15, row
        # strategy invariance (the paper's punchline) holds at scale
        variances = [row.empirical_var for row in result.moment_rows]
        assert max(variances) / min(variances) < 1.1
        # every shard artifact landed in the store: a re-run is free
        warm = RunStats()
        rerun = get_experiment("model_validation").run(
            tiny, seed=0, jobs=2, cache=ResultCache(tmp_path),
            stats=warm, sharding=Sharding(shards=4, sessions=10_000))
        assert warm.cache_misses == 0
        assert rerun.campaign_sessions == result.campaign_sessions
        assert [r.empirical_mean for r in rerun.moment_rows] \
            == [r.empirical_mean for r in result.moment_rows]
