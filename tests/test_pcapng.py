"""Tests for the pcapng reader/writer."""

import io
import struct

import pytest

from repro.pcap import (
    PcapError,
    PcapngReader,
    PcapngWriter,
    is_pcapng,
    records_from_pcap,
)
from repro.simnet import NetworkProfile
from tests.test_pcap_capture import captured_transfer


class TestRoundTrip:
    def test_writer_reader_round_trip(self):
        buf = io.BytesIO()
        writer = PcapngWriter(buf)
        writer.write_packet(1.5, b"frame-one")
        writer.write_packet(2.25, b"frame-two!")
        buf.seek(0)
        reader = PcapngReader(buf)
        out = list(reader)
        assert [(t, d) for t, d, _ in out] == [
            (1.5, b"frame-one"), (2.25, b"frame-two!")]
        assert reader.linktype == 1

    def test_timestamp_precision_microseconds(self):
        buf = io.BytesIO()
        PcapngWriter(buf).write_packet(1234.567891, b"x")
        buf.seek(0)
        (t, _, _), = list(PcapngReader(buf))
        assert t == pytest.approx(1234.567891, abs=1e-6)

    def test_unpadded_and_padded_frames(self):
        buf = io.BytesIO()
        writer = PcapngWriter(buf)
        writer.write_packet(0.0, b"abcd")      # already 4-aligned
        writer.write_packet(0.0, b"abcde")     # needs padding
        buf.seek(0)
        frames = [d for _, d, _ in PcapngReader(buf)]
        assert frames == [b"abcd", b"abcde"]


class TestFormatEdges:
    def test_not_pcapng_rejected(self):
        with pytest.raises(PcapError):
            PcapngReader(io.BytesIO(b"\xa1\xb2\xc3\xd4" + b"\x00" * 20))

    def test_bad_byte_order_magic(self):
        raw = struct.pack("<III", 0x0A0D0D0A, 28, 0xDEADBEEF) + b"\x00" * 16
        with pytest.raises(PcapError):
            PcapngReader(io.BytesIO(raw))

    def test_unknown_blocks_skipped(self):
        buf = io.BytesIO()
        writer = PcapngWriter(buf)
        writer.write_packet(1.0, b"data")
        # append an unknown block type (e.g. name resolution, 0x4)
        buf.write(struct.pack("<II", 0x00000004, 16) + b"\x00" * 4
                  + struct.pack("<I", 16))
        writer2 = None
        buf.seek(0)
        out = list(PcapngReader(buf))
        assert len(out) == 1

    def test_length_trailer_mismatch_detected(self):
        buf = io.BytesIO()
        writer = PcapngWriter(buf)
        writer.write_packet(1.0, b"data")
        raw = bytearray(buf.getvalue())
        raw[-1] ^= 0xFF  # corrupt the trailing block length
        with pytest.raises(PcapError):
            list(PcapngReader(io.BytesIO(bytes(raw))))

    def test_is_pcapng_sniff(self, tmp_path):
        ng = tmp_path / "a.pcapng"
        with open(ng, "wb") as f:
            PcapngWriter(f)
        assert is_pcapng(str(ng))
        classic = tmp_path / "b.pcap"
        from repro.pcap import PcapWriter

        with open(classic, "wb") as f:
            PcapWriter(f)
        assert not is_pcapng(str(classic))


class TestPipelineIntegration:
    def test_records_from_pcapng_matches_classic(self, tmp_path):
        """The analysis input is identical whichever format carried it."""
        capture = captured_transfer(nbytes=120_000)
        classic_path = str(tmp_path / "c.pcap")
        capture.write_pcap(classic_path)

        ng_path = str(tmp_path / "c.pcapng")
        from repro.pcap.capture import segment_to_frame

        with open(ng_path, "wb") as f:
            writer = PcapngWriter(f)
            for t, seg in capture.iter_segments():
                writer.write_packet(t, segment_to_frame(seg))

        classic = records_from_pcap(classic_path)
        ng = records_from_pcap(ng_path)
        assert len(classic) == len(ng)
        for a, b in zip(classic, ng):
            assert a.seq == b.seq
            assert a.payload_len == b.payload_len
            assert a.timestamp == pytest.approx(b.timestamp, abs=2e-6)
            assert a.window == b.window
