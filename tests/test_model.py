"""Tests for the Section-6 analytical model."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    ConstantRate,
    OnOffRate,
    PopulationMoments,
    aggregate_mean_exact,
    aggregate_mean_factored,
    aggregate_variance,
    coefficient_of_variation,
    constant_strategy,
    critical_duration,
    download_outlives_interruption,
    encoding_rate_migration,
    invariance_gap,
    plan_for,
    required_capacity,
    short_onoff_strategy,
    simulate_aggregate,
    simulate_wasted_bandwidth,
    strategy_migration,
    unused_bytes,
    unused_playback_seconds,
    waste_sweep,
    wasted_bandwidth_exact,
    wasted_bandwidth_factored,
)
from repro.workloads import Catalog, MBPS, Video


def uniform_catalog(n=20, rate=1 * MBPS, duration=200.0):
    videos = [
        Video(video_id=f"u{i}", duration=duration, encoding_rate_bps=rate,
              resolution="360p", container="flv")
        for i in range(n)
    ]
    return Catalog("uniform", videos)


class TestMoments:
    def test_from_sessions_exact(self):
        m = PopulationMoments.from_sessions(
            rates=[1e6, 2e6], durations=[100.0, 200.0],
            download_rates=[4e6, 4e6])
        assert m.mean_rate_bps == 1.5e6
        assert m.mean_duration_s == 150.0
        assert m.mean_size_bits == (1e6 * 100 + 2e6 * 200) / 2
        assert m.mean_e_l_g == (1e6 * 100 * 4e6 + 2e6 * 200 * 4e6) / 2

    def test_from_catalog(self):
        catalog = uniform_catalog(rate=1 * MBPS, duration=100.0)
        m = PopulationMoments.from_catalog(catalog, download_rate_bps=4e6)
        assert m.mean_size_bits == pytest.approx(1e6 * 100, rel=0.01)

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            PopulationMoments.from_sessions([1e6], [100.0, 200.0], [4e6])
        with pytest.raises(ValueError):
            PopulationMoments.from_sessions([], [], [])


class TestAggregateEquations:
    def test_eq1_and_eq3_agree_for_independent_population(self):
        m = PopulationMoments.from_sessions(
            rates=[1e6] * 4, durations=[100.0] * 4, download_rates=[4e6] * 4)
        assert aggregate_mean_exact(0.5, m) == pytest.approx(
            aggregate_mean_factored(0.5, m.mean_rate_bps, m.mean_duration_s))

    def test_eq3_scaling_in_lambda(self):
        m = PopulationMoments.from_sessions([1e6], [100.0], [4e6])
        assert aggregate_mean_exact(2.0, m) == 2 * aggregate_mean_exact(1.0, m)

    def test_eq4_variance(self):
        m = PopulationMoments.from_sessions([1e6], [100.0], [4e6])
        assert aggregate_variance(0.1, m) == pytest.approx(0.1 * 1e6 * 100 * 4e6)

    def test_lambda_validation(self):
        m = PopulationMoments.from_sessions([1e6], [100.0], [4e6])
        with pytest.raises(ValueError):
            aggregate_mean_exact(0.0, m)

    def test_cv_shrinks_with_encoding_rate(self):
        """Section 6.1 conclusion 3: higher rates, smoother traffic.

        With the path bandwidth G fixed, scaling every encoding rate by s
        scales both E[R] and Var[R] linearly, so CV falls by 1/sqrt(s).
        """
        def cv(rate, peak=8e6):
            m = PopulationMoments.from_sessions([rate], [100.0], [peak])
            return coefficient_of_variation(
                aggregate_mean_exact(0.5, m), aggregate_variance(0.5, m))
        assert cv(2e6) == pytest.approx(cv(1e6) / math.sqrt(2))


class TestRateProcesses:
    def test_constant_rate_duration(self):
        p = ConstantRate(size_bits=8e6, peak_bps=4e6)
        assert p.duration == 2.0
        assert p.rate_at(1.0) == 4e6
        assert p.rate_at(2.5) == 0.0

    def test_constant_rate_integrals(self):
        p = ConstantRate(size_bits=8e6, peak_bps=4e6)
        assert p.integral_rate() == 8e6
        assert p.integral_rate_squared() == 8e6 * 4e6

    def test_onoff_block_and_duration(self):
        p = OnOffRate(size_bits=8e6, peak_bps=4e6, period_s=1.0, duty=0.25)
        assert p.block_bits == 1e6
        assert p.duration == pytest.approx(8.0)

    def test_onoff_rate_shape(self):
        p = OnOffRate(size_bits=8e6, peak_bps=4e6, period_s=1.0, duty=0.25)
        assert p.rate_at(0.1) == 4e6      # ON
        assert p.rate_at(0.5) == 0.0      # OFF
        assert p.rate_at(1.1) == 4e6      # next cycle ON

    def test_onoff_with_buffering(self):
        p = OnOffRate(size_bits=8e6, peak_bps=4e6, period_s=1.0, duty=0.25,
                      buffering_bits=4e6)
        assert p.buffering_time == 1.0
        assert p.rate_at(0.9) == 4e6      # still buffering
        assert p.rate_at(1.5) == 0.0      # first OFF after buffering

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffRate(8e6, 4e6, period_s=1.0, duty=0.0)
        with pytest.raises(ValueError):
            OnOffRate(8e6, 4e6, period_s=0.0, duty=0.5)
        with pytest.raises(ValueError):
            OnOffRate(8e6, 4e6, period_s=1.0, duty=0.5, buffering_bits=9e6)
        with pytest.raises(ValueError):
            ConstantRate(0, 4e6)

    def test_invariance_same_bytes_same_peak(self):
        """The Section 6.1 invariance: arrangement of ON/OFF is irrelevant."""
        bulk = ConstantRate(size_bits=80e6, peak_bps=10e6)
        short = OnOffRate(80e6, 10e6, period_s=0.5, duty=0.3)
        long_ = OnOffRate(80e6, 10e6, period_s=30.0, duty=0.3,
                          buffering_bits=20e6)
        assert invariance_gap(bulk, short) < 1e-12
        assert invariance_gap(bulk, long_) < 1e-12

    @given(
        st.floats(min_value=1e6, max_value=1e9),
        st.floats(min_value=1e6, max_value=1e8),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_invariance_property(self, size, peak, duty, period):
        bulk = ConstantRate(size, peak)
        onoff = OnOffRate(size, peak, period, duty)
        assert invariance_gap(bulk, onoff) < 1e-9


class TestMonteCarloAggregate:
    @pytest.mark.parametrize("factory_name", ["constant", "short", "long"])
    def test_empirical_moments_match_equations(self, factory_name):
        catalog = uniform_catalog(rate=1 * MBPS, duration=120.0)
        lam, peak = 0.4, 8e6
        factory = {
            "constant": constant_strategy,
            "short": short_onoff_strategy(),
            "long": short_onoff_strategy(block_bytes=5 * 1024 * 1024,
                                         buffering_playback_s=60.0),
        }[factory_name]
        sample = simulate_aggregate(
            catalog, lam, horizon=8000.0, strategy=factory,
            peak_bps=peak, dt=0.5, seed=7,
        )
        m = PopulationMoments.from_catalog(catalog, download_rate_bps=peak)
        expected_mean = aggregate_mean_exact(lam, m)
        expected_var = aggregate_variance(lam, m)
        assert sample.mean_bps == pytest.approx(expected_mean, rel=0.1)
        assert sample.variance_bps2 == pytest.approx(expected_var, rel=0.2)

    def test_strategies_give_same_moments_empirically(self):
        """Eq (3)/(4) independence of strategy, now as a simulation."""
        catalog = uniform_catalog(rate=1 * MBPS, duration=120.0)
        results = {}
        for name, factory in (
            ("constant", constant_strategy),
            ("short", short_onoff_strategy()),
        ):
            results[name] = simulate_aggregate(
                catalog, 0.4, horizon=8000.0, strategy=factory,
                peak_bps=8e6, seed=11)
        assert results["constant"].mean_bps == pytest.approx(
            results["short"].mean_bps, rel=0.1)
        assert results["constant"].variance_bps2 == pytest.approx(
            results["short"].variance_bps2, rel=0.25)


class TestInterruption:
    def test_papers_53_3s_example(self):
        """B' = 40 s, k = 1.25, beta = 0.2 -> L = 53.3 s."""
        assert critical_duration(40.0, 1.25, 0.2) == pytest.approx(53.333, rel=1e-3)

    def test_condition_matches_critical_duration(self):
        critical = critical_duration(40.0, 1.25, 0.2)
        assert download_outlives_interruption(critical + 1, 40.0, 1.25, 0.2)
        assert not download_outlives_interruption(critical - 1, 40.0, 1.25, 0.2)

    def test_critical_duration_infinite_when_k_beta_ge_1(self):
        assert critical_duration(40.0, 1.25, 0.9) == math.inf

    def test_unused_bytes_clamps_at_video_size(self):
        # huge download rate: everything fetched, waste = unwatched part
        waste = unused_bytes(1e6, 100.0, buffering_bytes=1e12,
                             download_rate_bps=1e12, watch_time_s=20.0)
        assert waste == pytest.approx((100.0 - 20.0) * 1e6 / 8)

    def test_unused_playback_seconds_kernel(self):
        # L=100, B'=40, k=1.25, beta=0.2: min(40+25, 100) - 20 = 45
        assert unused_playback_seconds(100.0, 40.0, 1.25, 0.2) == pytest.approx(45.0)

    def test_zero_waste_for_full_watch(self):
        assert unused_playback_seconds(100.0, 40.0, 1.25, 1.0) == 0.0

    def test_wasted_bandwidth_exact_vs_factored_for_uniform_rates(self):
        sessions = [(1e6, 100.0, 0.2), (1e6, 200.0, 0.5), (1e6, 50.0, 1.0)]
        exact = wasted_bandwidth_exact(0.5, sessions, 40.0, 1.25)
        factored = wasted_bandwidth_factored(
            0.5, 1e6, [s[1] for s in sessions], [s[2] for s in sessions],
            40.0, 1.25)
        assert exact == pytest.approx(factored)

    def test_waste_decreases_with_smaller_buffering(self):
        sessions = [(1e6, 300.0, 0.2)] * 10
        big = wasted_bandwidth_exact(0.5, sessions, 40.0, 1.25)
        small = wasted_bandwidth_exact(0.5, sessions, 10.0, 1.25)
        assert small < big

    def test_waste_decreases_with_smaller_accumulation(self):
        sessions = [(1e6, 300.0, 0.2)] * 10
        assert (wasted_bandwidth_exact(0.5, sessions, 40.0, 1.0)
                < wasted_bandwidth_exact(0.5, sessions, 40.0, 1.5))

    def test_waste_sweep_is_monotone(self):
        sessions = [(1e6, 300.0, 0.2)] * 5
        points = waste_sweep(0.5, sessions, [10.0, 40.0], [1.0, 1.25])
        by_key = {(p.buffering_playback_s, p.accumulation_ratio): p.wasted_bps
                  for p in points}
        assert by_key[(10.0, 1.0)] <= by_key[(40.0, 1.25)]

    def test_monte_carlo_matches_closed_form(self):
        catalog = uniform_catalog(rate=1 * MBPS, duration=300.0)
        lam = 0.5
        beta = 0.2
        empirical = simulate_wasted_bandwidth(
            catalog, lam, horizon=30000.0,
            buffering_playback_s=40.0, accumulation_ratio=1.25,
            beta_sampler=lambda rng, L: beta, seed=3)
        closed = wasted_bandwidth_exact(
            lam, [(1e6, 300.0, beta)], 40.0, 1.25)
        assert empirical == pytest.approx(closed, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            critical_duration(40.0, 0.9, 0.2)
        with pytest.raises(ValueError):
            unused_playback_seconds(0.0, 40.0, 1.25, 0.2)
        with pytest.raises(ValueError):
            wasted_bandwidth_exact(0.0, [(1e6, 100.0, 0.2)], 40.0, 1.25)
        with pytest.raises(ValueError):
            wasted_bandwidth_exact(1.0, [], 40.0, 1.25)


class TestDimensioning:
    def moments(self):
        return PopulationMoments.from_sessions(
            rates=[1e6] * 3, durations=[200.0] * 3, download_rates=[8e6] * 3)

    def test_required_capacity_rule(self):
        assert required_capacity(100.0, 400.0, alpha=2.0) == pytest.approx(140.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            required_capacity(100.0, 400.0, alpha=0.5)

    def test_plan_headroom(self):
        plan = plan_for(0.5, self.moments(), alpha=2.0)
        assert 0.0 < plan.headroom_share < 1.0
        assert plan.capacity_bps > plan.mean_bps

    def test_strategy_migration_is_neutral(self):
        effect = strategy_migration(0.5, self.moments())
        assert effect.capacity_ratio == pytest.approx(1.0)
        assert effect.smoothness_ratio == pytest.approx(1.0)

    def test_encoding_rate_migration_scales_mean_linearly(self):
        effect = encoding_rate_migration(0.5, self.moments(), rate_scale=2.0)
        assert effect.mean_ratio == pytest.approx(2.0)
        # smoother: CV falls by 1/sqrt(2)
        assert effect.smoothness_ratio == pytest.approx(1 / math.sqrt(2))

    def test_rate_scale_validation(self):
        with pytest.raises(ValueError):
            encoding_rate_migration(0.5, self.moments(), rate_scale=0.0)


class TestHigherMoments:
    """The paper's remark: the strategy invariance extends to all moments."""

    def test_power_integrals_invariant_across_strategies(self):
        from repro.model import ConstantRate, OnOffRate

        bulk = ConstantRate(size_bits=80e6, peak_bps=10e6)
        onoff = OnOffRate(80e6, 10e6, period_s=2.0, duty=0.25,
                          buffering_bits=10e6)
        for n in (1, 2, 3, 4, 5):
            assert bulk.integral_rate_power(n) == pytest.approx(
                onoff.integral_rate_power(n))

    def test_power_integral_closed_form(self):
        from repro.model import ConstantRate

        p = ConstantRate(size_bits=8e6, peak_bps=4e6)
        assert p.integral_rate_power(1) == 8e6
        assert p.integral_rate_power(2) == 8e6 * 4e6
        assert p.integral_rate_power(3) == 8e6 * 4e6 ** 2

    def test_power_order_validation(self):
        from repro.model import ConstantRate, OnOffRate

        with pytest.raises(ValueError):
            ConstantRate(8e6, 4e6).integral_rate_power(0)
        with pytest.raises(ValueError):
            OnOffRate(8e6, 4e6, 1.0, 0.5).integral_rate_power(0)

    def test_cumulants_match_variance_equation(self):
        from repro.model import (aggregate_cumulant,
                                 aggregate_variance_factored)

        k2 = aggregate_cumulant(0.5, 2, 1e6, 100.0, 4e6)
        assert k2 == pytest.approx(
            aggregate_variance_factored(0.5, 1e6, 100.0, 4e6))

    def test_skewness_decreases_with_load(self):
        from repro.model import aggregate_skewness

        light = aggregate_skewness(0.1, 1e6, 100.0, 4e6)
        heavy = aggregate_skewness(10.0, 1e6, 100.0, 4e6)
        assert light > heavy > 0
        assert light / heavy == pytest.approx((10.0 / 0.1) ** 0.5)

    def test_cumulant_validation(self):
        from repro.model import aggregate_cumulant

        with pytest.raises(ValueError):
            aggregate_cumulant(0.5, 0, 1e6, 100.0, 4e6)
        with pytest.raises(ValueError):
            aggregate_cumulant(-1.0, 2, 1e6, 100.0, 4e6)


class TestConcurrentSessions:
    """M/G/inf view: server load *does* depend on the strategy via E[D]."""

    def test_mean_is_lambda_times_duration(self):
        from repro.model import mean_concurrent_sessions

        assert mean_concurrent_sessions(2.0, 30.0) == 60.0

    def test_quantile_above_mean_and_tight(self):
        from repro.model import (concurrent_sessions_quantile,
                                 mean_concurrent_sessions)

        mean = mean_concurrent_sessions(2.0, 50.0)
        q99 = concurrent_sessions_quantile(2.0, 50.0, q=0.99)
        assert mean < q99 < mean + 5 * mean ** 0.5

    def test_quantile_monotone_in_q(self):
        from repro.model import concurrent_sessions_quantile

        assert (concurrent_sessions_quantile(1.0, 100.0, q=0.5)
                <= concurrent_sessions_quantile(1.0, 100.0, q=0.999))

    def test_throttling_raises_server_load(self):
        """A paced download takes D' = S/(k e) > S/G = D: same bandwidth,
        more concurrent connections."""
        from repro.model import ConstantRate, OnOffRate, mean_concurrent_sessions

        size, peak = 80e6, 10e6
        bulk = ConstantRate(size, peak)
        paced = OnOffRate(size, peak, period_s=0.5, duty=0.125)  # k*e = 1.25M
        assert paced.duration > bulk.duration
        lam = 1.0
        assert (mean_concurrent_sessions(lam, paced.duration)
                > mean_concurrent_sessions(lam, bulk.duration))

    def test_validation(self):
        from repro.model import (concurrent_sessions_quantile,
                                 mean_concurrent_sessions)

        with pytest.raises(ValueError):
            mean_concurrent_sessions(0.0, 10.0)
        with pytest.raises(ValueError):
            mean_concurrent_sessions(1.0, 0.0)
        with pytest.raises(ValueError):
            concurrent_sessions_quantile(1.0, 10.0, q=1.0)
