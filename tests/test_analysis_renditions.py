"""Tests for rendition-ladder inference from traces."""

import pytest

from repro.analysis import build_download_trace, detect_renditions
from repro.pcap import PacketRecord
from repro.simnet import ACADEMIC
from repro.streaming import Application, Service, SessionConfig, run_session
from repro.tcp import ACK, SYN
from repro.tcp.seqspace import wrap
from repro.workloads import MBPS, NETFLIX_LADDER_BPS, Video

CLIENT = "10.0.0.1"
SERVER = "192.0.2.1"


def flow_with_head(dport, head, body=2000, t0=0.0):
    """Synthetic flow: handshake + one head-carrying packet + body."""
    return [
        PacketRecord(t0, CLIENT, dport, SERVER, 80, wrap(0), 0, SYN, 0,
                     65535, 54),
        PacketRecord(t0 + 0.02, SERVER, 80, CLIENT, dport, wrap(0), 1,
                     SYN | ACK, 0, 65535, 54),
        PacketRecord(t0 + 0.03, SERVER, 80, CLIENT, dport, wrap(1), 1, ACK,
                     len(head), 65535, 54 + len(head), payload=head),
        PacketRecord(t0 + 0.04, SERVER, 80, CLIENT, dport, wrap(1 + len(head)),
                     1, ACK, body, 65535, 54 + body),
    ]


def head_206(start, end, total):
    return (f"HTTP/1.1 206 Partial Content\r\n"
            f"Content-Length: {end - start + 1}\r\n"
            f"Content-Range: bytes {start}-{end}/{total}\r\n\r\n").encode()


class TestSyntheticLadders:
    def test_distinct_totals_are_distinct_renditions(self):
        records = (flow_with_head(50000, head_206(0, 999, 1_000_000))
                   + flow_with_head(50001, head_206(0, 999, 2_000_000), t0=1.0)
                   + flow_with_head(50002, head_206(0, 999, 4_000_000), t0=2.0))
        trace = build_download_trace(records, CLIENT, SERVER)
        obs = detect_renditions(trace, duration=100.0)
        assert obs.count == 3
        assert obs.rates_bps == pytest.approx(
            [1_000_000 * 8 / 100, 2_000_000 * 8 / 100, 4_000_000 * 8 / 100])

    def test_same_total_groups_flows(self):
        records = (flow_with_head(50000, head_206(0, 999, 1_000_000))
                   + flow_with_head(50001, head_206(1000, 1999, 1_000_000),
                                    t0=1.0))
        trace = build_download_trace(records, CLIENT, SERVER)
        obs = detect_renditions(trace)
        assert obs.count == 1
        assert obs.renditions[0].flows == 2

    def test_tolerance_merges_near_totals(self):
        records = (flow_with_head(50000, head_206(0, 999, 1_000_000))
                   + flow_with_head(50001, head_206(0, 999, 1_010_000),
                                    t0=1.0))
        trace = build_download_trace(records, CLIENT, SERVER)
        assert detect_renditions(trace, tolerance=0.02).count == 1
        assert detect_renditions(trace, tolerance=0.001).count == 2

    def test_plain_200_uses_content_length(self):
        head = b"HTTP/1.1 200 OK\r\nContent-Length: 5000000\r\n\r\n"
        trace = build_download_trace(flow_with_head(50000, head), CLIENT,
                                     SERVER)
        obs = detect_renditions(trace, duration=50.0)
        assert obs.count == 1
        assert obs.renditions[0].total_bytes == 5_000_000

    def test_headless_flows_ignored(self):
        records = flow_with_head(50000, b"")[0:2] + [
            PacketRecord(0.05, SERVER, 80, CLIENT, 50000, wrap(1), 1, ACK,
                         1000, 65535, 1054),
        ]
        trace = build_download_trace(records, CLIENT, SERVER)
        assert detect_renditions(trace).count == 0

    def test_without_duration_rates_are_none(self):
        records = flow_with_head(50000, head_206(0, 9, 100))
        trace = build_download_trace(records, CLIENT, SERVER)
        obs = detect_renditions(trace)
        assert obs.rates_bps == []
        assert obs.renditions[0].rate_estimate_bps is None


class TestEndToEndNetflix:
    def nf_video(self):
        ladder = tuple(zip(("a", "b", "c", "d", "e"), NETFLIX_LADDER_BPS))
        return Video(video_id="r", duration=2400.0,
                     encoding_rate_bps=NETFLIX_LADDER_BPS[-1],
                     resolution="1080p", container="silverlight",
                     variants=ladder)

    def observe(self, application):
        from repro.analysis import analyze_session

        config = SessionConfig(profile=ACADEMIC, service=Service.NETFLIX,
                               application=application,
                               capture_duration=60.0, seed=1)
        result = run_session(self.nf_video(), config)
        analysis = analyze_session(result, use_true_rate=True)
        return detect_renditions(analysis.trace, duration=2400.0)

    def test_pc_prefetches_full_ladder(self):
        obs = self.observe(Application.FIREFOX)
        assert obs.count == 5
        assert obs.rates_bps == pytest.approx(list(NETFLIX_LADDER_BPS),
                                              rel=0.01)

    def test_ipad_prefetches_a_subset(self):
        obs = self.observe(Application.IOS)
        assert 1 <= obs.count <= 3
