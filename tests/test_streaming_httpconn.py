"""Unit tests for the client-side HTTP response stream."""

import pytest

from repro.streaming import HttpResponseStream


class FakeConn:
    """A scripted socket: a queue of byte chunks (bytes or virtual ints)."""

    def __init__(self, chunks):
        self._chunks = list(chunks)

    def _take(self, max_bytes, materialize):
        if not self._chunks:
            return b"" if materialize else 0
        head = self._chunks[0]
        if isinstance(head, bytes):
            take = head[:max_bytes]
            rest = head[len(take):]
            if rest:
                self._chunks[0] = rest
            else:
                self._chunks.pop(0)
            return take if materialize else len(take)
        # virtual bytes
        take = min(head, max_bytes)
        if head - take:
            self._chunks[0] = head - take
        else:
            self._chunks.pop(0)
        return bytes(take) if materialize else take

    def recv(self, max_bytes):
        return self._take(max_bytes, materialize=True)

    def recv_discard(self, max_bytes):
        return self._take(max_bytes, materialize=False)


def response_bytes(length, extra_headers=""):
    return (f"HTTP/1.1 200 OK\r\nContent-Length: {length}\r\n"
            f"{extra_headers}\r\n").encode()


class TestHttpResponseStream:
    def test_single_response_counted(self):
        conn = FakeConn([response_bytes(1000), 1000])
        got = []
        stream = HttpResponseStream(on_body_bytes=got.append)
        consumed = stream.take(conn, 1 << 20)
        assert consumed == 1000
        assert sum(got) == 1000
        assert stream.responses_completed == 1
        assert not stream.in_body

    def test_head_split_across_reads(self):
        head = response_bytes(500)
        conn = FakeConn([head[:10], head[10:], 500])
        stream = HttpResponseStream(on_body_bytes=lambda n: None)
        assert stream.take(conn, 1 << 20) == 500

    def test_budget_limits_body_not_head(self):
        conn = FakeConn([response_bytes(10_000), 10_000])
        stream = HttpResponseStream(on_body_bytes=lambda n: None)
        assert stream.take(conn, 4000) == 4000
        assert stream.body_remaining == 6000
        assert stream.take(conn, 10_000) == 6000
        assert stream.responses_completed == 1

    def test_sequential_responses_on_one_connection(self):
        conn = FakeConn([response_bytes(100), 100,
                         response_bytes(200), 200])
        completed = []
        stream = HttpResponseStream(
            on_body_bytes=lambda n: None,
            on_complete=lambda resp: completed.append(resp.content_length),
        )
        assert stream.take(conn, 1 << 20) == 300
        assert completed == [100, 200]
        assert stream.total_body_bytes == 300

    def test_surplus_head_bytes_after_body(self):
        """Body and the next response head arriving in one chunk."""
        first_head = response_bytes(50)
        second_head = response_bytes(70)
        conn = FakeConn([first_head + b"x" * 50 + second_head + b"y" * 70])
        completed = []
        stream = HttpResponseStream(
            on_body_bytes=lambda n: None,
            on_complete=lambda resp: completed.append(resp.content_length),
        )
        assert stream.take(conn, 1 << 20) == 120
        assert completed == [50, 70]

    def test_on_response_callback(self):
        conn = FakeConn([response_bytes(10), 10])
        seen = []
        stream = HttpResponseStream(
            on_body_bytes=lambda n: None,
            on_response=lambda resp: seen.append(resp.status),
        )
        stream.take(conn, 1 << 20)
        assert seen == [200]

    def test_empty_socket_returns_zero(self):
        stream = HttpResponseStream(on_body_bytes=lambda n: None)
        assert stream.take(FakeConn([]), 100) == 0

    def test_zero_length_body(self):
        conn = FakeConn([response_bytes(0) + response_bytes(10), 10])
        completed = []
        stream = HttpResponseStream(
            on_body_bytes=lambda n: None,
            on_complete=lambda resp: completed.append(resp.content_length),
        )
        assert stream.take(conn, 1 << 20) == 10
        assert completed == [0, 10]
