#!/usr/bin/env python3
"""Quickstart: stream one video, capture its traffic, analyze it.

Reproduces the core loop of the paper's methodology in ~40 lines:

1. build a YouTube-Flash video and stream it through the simulated
   Research network (Section 4.2's setup);
2. capture the packets (they can also be written as a real pcap file);
3. run the measurement pipeline: ON/OFF detection, buffering phase,
   block sizes, accumulation ratio, strategy classification.

Run:  python examples/quickstart.py
"""

from repro.analysis import analyze_session, bytes_human, median
from repro.simnet import RESEARCH
from repro.streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    run_session,
)
from repro.workloads import MBPS, Video


def main() -> None:
    video = Video(
        video_id="quickstart",
        duration=300.0,                 # a five-minute clip
        encoding_rate_bps=1.0 * MBPS,   # 360p-ish
        resolution="360p",
        container="flv",                # YouTube's default on PCs in 2011
    )

    config = SessionConfig(
        profile=RESEARCH,               # 100 Mbps access, 20 ms RTT
        service=Service.YOUTUBE,
        application=Application.FIREFOX,
        container=Container.FLASH,
        capture_duration=120.0,
        seed=42,
    )

    print(f"Streaming {video} through the {config.profile.name} network ...")
    result = run_session(video, config)
    analysis = analyze_session(result)

    print(f"\ncaptured packets : {len(result.records)}")
    print(f"downloaded       : {bytes_human(result.downloaded)}")
    print(f"strategy         : {analysis.strategy}")
    print(f"buffering amount : {bytes_human(analysis.buffering_bytes)} "
          f"(~{analysis.buffering_playback_s:.0f} s of playback)")
    blocks = analysis.block_sizes
    print(f"steady-state     : {len(blocks)} blocks, median "
          f"{bytes_human(median(blocks))}")
    print(f"accumulation     : {analysis.accumulation_ratio:.2f} "
          f"(download rate / encoding rate)")
    print(f"rate recovered   : {analysis.rate_estimate.method} -> "
          f"{analysis.encoding_rate_bps / 1e6:.2f} Mbps")

    # the capture is byte-exact pcap if you want to inspect it elsewhere
    path = "/tmp/quickstart_session.pcap"
    n = result.capture.write_pcap(path)
    print(f"\nwrote {n} packets to {path} (open with wireshark/tcpdump)")


if __name__ == "__main__":
    main()
