#!/usr/bin/env python3
"""Capacity planning for a link carrying video-streaming traffic.

Uses the Section 6 model: with Poisson session arrivals, the aggregate
rate has mean ``lam*E[e]E[L]`` and variance ``lam*E[e]E[L]E[G]`` (Eqs (3),
(4)), so a link provisioned at ``E[R] + alpha*sqrt(Var)`` carries the load
with headroom for variability.  The what-ifs show the paper's two planning
conclusions:

* migrating between streaming strategies changes **nothing** — mean and
  variance are strategy-invariant;
* raising encoding rates (e.g. a default-resolution bump) scales the mean
  linearly but makes the traffic relatively smoother (CV falls by
  1/sqrt(scale)).

Run:  python examples/network_dimensioning.py
"""

from repro.analysis import format_table
from repro.model import (
    ConstantRate,
    OnOffRate,
    PopulationMoments,
    concurrent_sessions_quantile,
    constant_strategy,
    encoding_rate_migration,
    mean_concurrent_sessions,
    plan_for,
    short_onoff_strategy,
    simulate_aggregate,
)
from repro.workloads import make_youflash


def main() -> None:
    catalog = make_youflash(seed=1, scale=0.05)   # a YouTube-like population
    lam = 2.0            # sessions per second on this link
    peak = 8e6           # end-to-end bandwidth per session (G)
    alpha = 3.0          # tolerance multiplier on sqrt(Var)

    moments = PopulationMoments.from_catalog(catalog, download_rate_bps=peak)
    plan = plan_for(lam, moments, alpha=alpha)

    print("Link dimensioning for Poisson video sessions")
    print(f"  arrival rate          : {lam:.1f} sessions/s")
    print(f"  mean aggregate rate   : {plan.mean_bps / 1e6:8.1f} Mbps   (Eq 3)")
    print(f"  std deviation         : {plan.variance_bps2 ** 0.5 / 1e6:8.1f} Mbps   (Eq 4)")
    print(f"  provisioned capacity  : {plan.capacity_bps / 1e6:8.1f} Mbps   "
          f"(E[R] + {alpha:.0f} sqrt(V))")
    print(f"  headroom share        : {plan.headroom_share:8.1%}")
    print(f"  smoothness (CV)       : {plan.smoothness_cv:8.3f}")

    # sanity: Monte-Carlo of actual ON-OFF sessions hits the same moments
    print("\nModel vs Monte-Carlo (strategy invariance):")
    rows = []
    for name, factory in (
        ("No ON-OFF (bulk)", constant_strategy),
        ("Short ON-OFF (Flash-like)", short_onoff_strategy()),
        ("Long ON-OFF (Chrome-like)",
         short_onoff_strategy(block_bytes=5 * 1024 * 1024,
                              buffering_playback_s=60.0)),
    ):
        sample = simulate_aggregate(catalog, lam, horizon=4000.0,
                                    strategy=factory, peak_bps=peak, seed=3)
        rows.append((name, f"{sample.mean_bps / 1e6:.1f}",
                     f"{sample.std_bps / 1e6:.1f}"))
    rows.append(("model (Eqs 3-4)", f"{plan.mean_bps / 1e6:.1f}",
                 f"{plan.variance_bps2 ** 0.5 / 1e6:.1f}"))
    print(format_table(["Scenario", "Mean (Mbps)", "Std (Mbps)"], rows))

    # what-if: the default resolution doubles every encoding rate
    effect = encoding_rate_migration(lam, moments, rate_scale=2.0,
                                     alpha=alpha)
    print("\nWhat-if — default resolution bump (encoding rates x2):")
    print(f"  mean rate             : x{effect.mean_ratio:.2f}")
    print(f"  required capacity     : x{effect.capacity_ratio:.2f}")
    print(f"  smoothness (CV)       : x{effect.smoothness_ratio:.3f} "
          "(smoother!)")

    # the flip side: bandwidth is strategy-invariant, but *server load*
    # (concurrent connections) is not — throttled downloads live longer
    mean_size_bits = moments.mean_size_bits
    bulk = ConstantRate(mean_size_bits, peak)
    paced = OnOffRate(mean_size_bits, peak,
                      period_s=0.42, duty=1.25 * moments.mean_rate_bps / peak)
    print("\nServer load (M/G/inf concurrent sessions) per strategy:")
    for name, process in (("bulk (No ON-OFF)", bulk),
                          ("paced (Short ON-OFF)", paced)):
        mean_n = mean_concurrent_sessions(lam, process.duration)
        q99 = concurrent_sessions_quantile(lam, process.duration, q=0.99)
        print(f"  {name:22s}: E[D]={process.duration:6.1f} s  "
              f"E[N]={mean_n:7.1f}  p99={q99}")
    print("  -> the flip side of Section 2's observation: the reduced\n"
          "     per-session rate lets more videos share the same capacity,\n"
          "     but each connection now lives ~8x longer, so servers sized\n"
          "     by connection state (not bandwidth) see the difference.")


if __name__ == "__main__":
    main()
