#!/usr/bin/env python3
"""Watch the congestion window do (and not do) its job.

The paper's Figure 9 hinges on a TCP detail: after an application-layer
OFF period the congestion window *should* shrink back (RFC 5681 §4.1),
forcing the sender to re-probe the path — but YouTube's servers never do,
so every 64 kB block leaves as one un-clocked burst.  This example traces
the server's congestion window through a Flash session, with and without
the idle reset, using the built-in ``trace_cwnd`` instrumentation.

Run:  python examples/tcp_dynamics.py
"""

from repro.simnet import RESEARCH, build_client_server
from repro.streaming import VideoServer
from repro.streaming.client import GreedyPlayer
from repro.streaming.params import FLASH_CLIENT
from repro.tcp import TcpConfig
from repro.workloads import MBPS, Video


def run_trace(reset_after_idle: bool):
    """One Flash session at 0.25 Mbps (OFF ~1.7 s, beyond the RTO)."""
    video = Video(video_id="dyn", duration=900.0,
                  encoding_rate_bps=0.25 * MBPS, resolution="240p",
                  container="flv")
    net, client_host, server_host, _path = build_client_server(RESEARCH,
                                                               seed=2)
    server = VideoServer(
        server_host, net.scheduler, {video.video_id: video},
        tcp_config=TcpConfig(recv_buffer=256 * 1024, trace_cwnd=True,
                             reset_cwnd_after_idle=reset_after_idle),
    )
    # grab the server-side connection as it is accepted
    holder = {}
    original = server._on_accept

    def tap_accept(conn):
        holder["conn"] = conn
        original(conn)

    server._listener.on_accept = tap_accept

    player = GreedyPlayer(client_host, net.scheduler, server_host.ip, video,
                          policy=FLASH_CLIENT, rng=net.rng.stream("p"))
    player.start()
    net.run_until(30.0)
    return holder["conn"].cwnd_series


def sparkline(series, t0=0.0, t1=30.0, width=60, peak=None):
    """Render a cwnd time series as a one-line text chart."""
    marks = " .:-=+*#%@"
    peak = peak or max(series.values)
    cells = []
    for i in range(width):
        t = t0 + (t1 - t0) * i / (width - 1)
        try:
            value = series.value_at(t)
        except ValueError:
            value = 0.0
        cells.append(marks[min(len(marks) - 1,
                               int(value / peak * (len(marks) - 1)))])
    return "".join(cells)


def main() -> None:
    stock = run_trace(reset_after_idle=False)
    reset = run_trace(reset_after_idle=True)
    peak = max(stock.max(), reset.max())
    print("Server congestion window, 0-30 s of a 0.25 Mbps Flash session")
    print("(each column = 0.5 s; darker = larger cwnd; the buffering burst")
    print(" ends ~7 s in, then one 64 kB block fires every ~1.7 s)\n")
    print(f"  stock (no reset) : |{sparkline(stock, peak=peak)}|"
          f"  final cwnd {stock.values[-1] / 1024:.0f} kB")
    print(f"  RFC 5681 reset   : |{sparkline(reset, peak=peak)}|"
          f"  final cwnd {reset.values[-1] / 1024:.0f} kB")
    print(
        "\nWithout the reset the window stays inflated across OFF periods,\n"
        "so each block is one back-to-back burst (Figure 9's missing ACK\n"
        "clock).  With the reset, every ON period restarts from the small\n"
        "initial window and slow-starts again."
    )


if __name__ == "__main__":
    main()
