#!/usr/bin/env python3
"""Surviving a mid-session link outage: stall detection, Range resume.

The paper measures streaming over clean links; this example injects the
faults a production client actually meets and shows the resilience layer
at work:

1. stream a Netflix (native iPad) session cleanly, as the baseline;
2. replay it with a 10 s access-link outage in steady state, under three
   policies: fail-fast (stall watchdog but zero retries),
   reconnect-and-resume (HTTP Range from the last contiguous byte),
   reconnect-and-restart (first byte again);
3. print the QoE ledger each run produces — stalls, rebuffers, retries,
   recovery time, and the bytes the restarting client re-downloads.

Run:  python examples/fault_recovery.py
"""

from repro.analysis import bytes_human, recovery_time, summarize_resilience
from repro.simnet import RESIDENCE, FaultSchedule
from repro.streaming import (
    DEFAULT_RETRY,
    NO_RETRY,
    RESTART_RETRY,
    Application,
    Service,
    SessionConfig,
    run_session,
)
from repro.workloads import MBPS, Video

OUTAGE_AT_S = 20.0
OUTAGE_DURATION_S = 10.0


def stream(retry_policy, faults=None):
    video = Video(
        video_id="fault-demo",
        duration=90.0,
        encoding_rate_bps=1.0 * MBPS,
        resolution="480p",
        container="silverlight",
        variants=(("235p", 0.5 * MBPS), ("480p", 1.0 * MBPS),
                  ("720p", 1.75 * MBPS)),
    )
    config = SessionConfig(
        profile=RESIDENCE.with_loss(0.0),  # the outage is the only fault
        service=Service.NETFLIX,
        application=Application.IOS,
        capture_duration=120.0,
        seed=7,
        retry_policy=retry_policy,
        faults=faults,
    )
    return run_session(video, config)


def describe(label, result):
    s = summarize_resilience(result)
    rec = recovery_time(result)
    print(f"\n--- {label} ---")
    print(f"downloaded    : {bytes_human(result.downloaded)}")
    if s.failed:
        print(f"outcome       : FAILED ({s.fail_reason})")
    else:
        print("outcome       : recovered" if result.fault_log else
              "outcome       : clean run")
    print(f"stalls        : {s.stall_count} "
          f"({s.stall_time_s:.1f} s, ratio {s.rebuffer_ratio:.1%})")
    print(f"reconnects    : {s.retry_count}")
    print(f"re-downloaded : {bytes_human(s.wasted_redownloaded_bytes)}")
    if rec is not None:
        print(f"recovery time : {rec:.1f} s after the fault hit")


def main() -> None:
    print(f"Baseline, then a {OUTAGE_DURATION_S:.0f} s access-link outage "
          f"at t={OUTAGE_AT_S:.0f} s ...")
    clean = stream(DEFAULT_RETRY)
    describe("clean baseline", clean)

    outage = FaultSchedule().outage(OUTAGE_AT_S, OUTAGE_DURATION_S)
    describe("outage, retries disabled (watchdog fails the session)",
             stream(NO_RETRY, outage))
    resumed = stream(DEFAULT_RETRY, outage)
    describe("outage, reconnect + Range resume", resumed)
    describe("outage, reconnect + restart from byte 0",
             stream(RESTART_RETRY, outage))

    delta = resumed.downloaded - clean.downloaded
    print(f"\nThe resuming client delivered the same media as the clean "
          f"run (delta {delta:+d} bytes) without re-downloading anything; "
          "the restarting client paid again for every byte in flight when "
          "the link died.")


if __name__ == "__main__":
    main()
