#!/usr/bin/env python3
"""How much bandwidth do abandoned video sessions waste — and what helps?

Section 6.2 of the paper: most viewers quit early (60 % of YouTube videos
are watched for less than 20 % of their duration), so bytes downloaded
ahead of the watch point are wasted.  The waste is controlled by two
player parameters: the buffering amount B' (in playback seconds) and the
accumulation ratio k.  This example:

1. estimates the wasted-bandwidth rate for a realistic viewer population
   (Eq (9)), both in closed form and by Monte-Carlo;
2. sweeps (B', k) to show how the YouTube Flash defaults (40 s, 1.25)
   compare with leaner settings;
3. prints the paper's 53.3 s rule of thumb: Flash videos shorter than
   that are always fetched completely, watched or not.

Run:  python examples/interruption_waste.py
"""

import random

from repro.analysis import format_table
from repro.model import (
    critical_duration,
    simulate_wasted_bandwidth,
    waste_sweep,
    wasted_bandwidth_exact,
)
from repro.workloads import EmpiricalInterruptionModel, make_youflash


def main() -> None:
    catalog = make_youflash(seed=2, scale=0.1)
    lam = 2.0
    viewers = EmpiricalInterruptionModel()   # Finamore/Gill/Huang calibrated
    rng = random.Random(11)

    sessions = []
    for video in catalog:
        outcome = viewers.sample(rng, video.duration)
        sessions.append((video.encoding_rate_bps, video.duration,
                         outcome.beta))

    closed = wasted_bandwidth_exact(lam, sessions, 40.0, 1.25)
    empirical = simulate_wasted_bandwidth(
        catalog, lam, horizon=20000.0,
        buffering_playback_s=40.0, accumulation_ratio=1.25,
        beta_sampler=lambda r, L: viewers.sample(r, L).beta, seed=5)

    useful = lam * sum(r * d * min(b, 1.0) for r, d, b in sessions) / len(sessions)
    print("Wasted bandwidth under realistic viewer abandonment")
    print(f"  watched traffic        : {useful / 1e6:7.1f} Mbps")
    print(f"  wasted (Eq 9, closed)  : {closed / 1e6:7.1f} Mbps")
    print(f"  wasted (Monte-Carlo)   : {empirical / 1e6:7.1f} Mbps")
    print(f"  waste share            : {closed / useful:7.1%} of useful traffic")

    print("\nSweep — player parameters vs wasted bandwidth:")
    points = waste_sweep(lam, sessions,
                         buffering_values=[5.0, 20.0, 40.0, 80.0],
                         accumulation_values=[1.0, 1.25, 1.5])
    rows = [
        (f"{p.buffering_playback_s:.0f}", f"{p.accumulation_ratio:.2f}",
         f"{p.wasted_bps / 1e6:.1f}", f"{p.wasted_share:.0%}")
        for p in points
    ]
    print(format_table(
        ["B' (s of playback)", "k", "Wasted (Mbps)", "Share of useful"],
        rows))

    threshold = critical_duration(40.0, 1.25, 0.2)
    print(
        f"\nRule of thumb (Eq 7): with B'=40 s and k=1.25, any video shorter\n"
        f"than {threshold:.1f} s is fully downloaded before a viewer who\n"
        "watches only 20 % walks away — its whole tail is wasted.\n"
        "Shrinking the buffering amount and the accumulation ratio is the\n"
        "lever the paper recommends for interruption-heavy workloads."
    )


if __name__ == "__main__":
    main()
