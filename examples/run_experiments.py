#!/usr/bin/env python3
"""Run paper experiments through the registry API.

The experiment registry (`repro.experiments.REGISTRY`) describes every
table/figure reproduction as an `ExperimentSpec` — CLI name, human title,
paper reference, tags — and `spec.run()` executes it through the session
engine, which fans independent sessions out over a worker pool and
memoizes completed results in a content-addressed cache.  This example:

1. lists the registry, grouped by tag;
2. runs the Netflix-tagged figures at a tiny scale with `jobs=2` and an
   on-disk cache;
3. runs them again to show the rerun is served from the cache
   (identical reports, zero sessions simulated).

Run:  python examples/run_experiments.py
"""

import tempfile
import time

from repro.experiments import REGISTRY, Scale, iter_experiments
from repro.runner import RunStats

#: Keep the demo snappy: one session per cell, short captures.
TINY = Scale(name="tiny", sessions_per_cell=1, capture_duration=60.0,
             catalog_scale=0.02, mc_horizon=2000.0)


def main() -> None:
    print(f"{len(REGISTRY)} experiments registered:\n")
    for spec in iter_experiments():
        tags = ", ".join(spec.tags)
        print(f"  {spec.name:<20} {spec.paper:<14} {spec.title}  [{tags}]")

    chosen = [spec for spec in iter_experiments() if "netflix" in spec.tags]
    print(f"\nRunning {', '.join(s.name for s in chosen)} "
          f"(tag 'netflix') at tiny scale with jobs=2 ...\n")

    with tempfile.TemporaryDirectory() as cache_dir:
        for label in ("cold cache", "warm cache"):
            for spec in chosen:
                stats = RunStats()
                started = time.perf_counter()
                result = spec.run(TINY, seed=0, jobs=2, cache=cache_dir,
                                  stats=stats)
                elapsed = time.perf_counter() - started
                print(f"[{label}] {spec.name}: {elapsed:.1f}s, "
                      f"{stats.cache_hits} hits / "
                      f"{stats.cache_misses} simulated")
                if label == "warm cache":
                    assert stats.cache_misses == 0, "expected pure cache hits"
            if label == "cold cache":
                print()

    print("\nWarm-cache reruns simulated nothing; reports are identical "
          "by construction (results are keyed by video+config+code).")


if __name__ == "__main__":
    main()
