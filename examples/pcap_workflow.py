#!/usr/bin/env python3
"""The pcap workflow: capture, write, re-read, re-analyze.

The analysis pipeline was built to run on tcpdump output, so it consumes
libpcap files — including ones produced by this simulator byte-for-byte.
This example streams a session, writes the capture as a real pcap file,
parses it back through the full Ethernet/IPv4/TCP stack (checksums,
32-bit sequence wrap, window scaling), and shows that the analysis of the
re-parsed trace is identical.  To analyze *re-collected real traces*,
point ``records_from_pcap`` at your own capture.

Run:  python examples/pcap_workflow.py
"""

import os
import tempfile

from repro.analysis import analyze_records, analyze_session
from repro.pcap import records_from_pcap
from repro.simnet import CLIENT_IP, RESEARCH, SERVER_IP
from repro.streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    run_session,
)
from repro.workloads import MBPS, Video


def main() -> None:
    video = Video(video_id="pcapdemo", duration=240.0,
                  encoding_rate_bps=0.8 * MBPS, resolution="360p",
                  container="flv")
    config = SessionConfig(
        profile=RESEARCH, service=Service.YOUTUBE,
        application=Application.CHROME, container=Container.FLASH,
        capture_duration=60.0, seed=3,
    )
    result = run_session(video, config)

    path = os.path.join(tempfile.gettempdir(), "repro_session.pcap")
    n = result.capture.write_pcap(path)
    size = os.path.getsize(path)
    print(f"wrote {n} packets ({size / 1e6:.1f} MB) to {path}")

    # the round trip: parse the pcap bytes back and re-run the pipeline
    records = records_from_pcap(path)
    from_pcap = analyze_records(records, CLIENT_IP, SERVER_IP,
                                duration=video.duration)
    direct = analyze_session(result)

    print("\n                      direct capture    re-parsed pcap")
    print(f"strategy            : {str(direct.strategy):>14s}    "
          f"{str(from_pcap.strategy):>14s}")
    print(f"buffering bytes     : {direct.buffering_bytes:>14d}    "
          f"{from_pcap.buffering_bytes:>14d}")
    print(f"steady-state blocks : {len(direct.block_sizes):>14d}    "
          f"{len(from_pcap.block_sizes):>14d}")
    print(f"accumulation ratio  : {direct.accumulation_ratio:>14.3f}    "
          f"{from_pcap.accumulation_ratio:>14.3f}")
    print(f"recovered rate      : "
          f"{direct.encoding_rate_bps / 1e6:>10.3f} Mbps    "
          f"{from_pcap.encoding_rate_bps / 1e6:>10.3f} Mbps "
          f"({from_pcap.rate_estimate.method})")

    assert direct.strategy == from_pcap.strategy
    assert direct.buffering_bytes == from_pcap.buffering_bytes
    assert direct.block_sizes == from_pcap.block_sizes
    print("\nround trip exact: the pipeline runs unchanged on pcap input.")
    os.unlink(path)


if __name__ == "__main__":
    main()
