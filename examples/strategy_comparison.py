#!/usr/bin/env python3
"""What happens to the network when users switch browsers or devices?

The paper's warning (Sections 1 and 8): the streaming strategy — and hence
the traffic shape — depends on the application and container, so a mass
migration (Flash -> HTML5, PCs -> mobiles) changes what the network
carries.  This example streams the *same* video through every applicable
client and compares the resulting traffic side by side.

Run:  python examples/strategy_comparison.py
"""

from repro.analysis import analyze_session, format_table, median
from repro.simnet import RESEARCH
from repro.streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    run_session,
)
from repro.workloads import MBPS, Video

MB = 1024 * 1024


def main() -> None:
    # one 8-minute, 2 Mbps video — available as webM (HTML5) and FLV (Flash)
    webm = Video(video_id="demo", duration=480.0,
                 encoding_rate_bps=2.0 * MBPS, resolution="360p",
                 container="webm",
                 variants=(("240p", 0.8 * MBPS), ("720p", 3.6 * MBPS)))
    flv = Video(video_id="demo", duration=480.0,
                encoding_rate_bps=2.0 * MBPS, resolution="360p",
                container="flv")

    cases = [
        ("Flash / any browser", flv, Application.FIREFOX, Container.FLASH),
        ("HTML5 / IE", webm, Application.INTERNET_EXPLORER, Container.HTML5),
        ("HTML5 / Firefox", webm, Application.FIREFOX, Container.HTML5),
        ("HTML5 / Chrome", webm, Application.CHROME, Container.HTML5),
        ("HTML5 / Android", webm, Application.ANDROID, Container.HTML5),
        ("HTML5 / iPad", webm, Application.IOS, Container.HTML5),
    ]

    rows = []
    for label, video, application, container in cases:
        config = SessionConfig(
            profile=RESEARCH, service=Service.YOUTUBE,
            application=application, container=container,
            capture_duration=120.0, seed=7,
        )
        result = run_session(video, config)
        analysis = analyze_session(result, use_true_rate=True)
        blocks = analysis.block_sizes
        offs = analysis.onoff.off_durations()
        rows.append((
            label,
            str(analysis.strategy),
            f"{analysis.buffering_bytes / MB:.1f}",
            f"{median(blocks) / 1024:.0f}" if blocks else "-",
            f"{median(offs):.1f}" if offs else "-",
            f"{result.downloaded / MB:.0f}",
            result.connections_opened,
        ))

    print(format_table(
        ["Client", "Strategy", "Buffering(MB)", "MedBlock(kB)", "MedOFF(s)",
         "Downloaded(MB)", "Conns"],
        rows,
        title="One video, six clients — the traffic the network sees "
              "(120 s sessions, Research network)",
    ))
    print(
        "\nTakeaway: the same video produces anything from a bulk transfer\n"
        "(Firefox) to minute-scale bursts (Chrome/Android) purely based on\n"
        "the client — a population-level migration changes the aggregate\n"
        "traffic structure even though the content is identical."
    )


if __name__ == "__main__":
    main()
