"""Minimal HTTP/1.1 plus container metadata for video streaming."""

from .codec import (
    HEADER_LEN as CONTAINER_HEADER_LEN,
    INVALID_FRAME_RATE,
    CodecError,
    ContainerMetadata,
    build_flv_header,
    build_webm_header,
    parse_container_header,
    sniff_container,
)
from .messages import (
    Headers,
    HttpError,
    HttpRequest,
    HttpResponse,
    parse_request,
    parse_response_head,
)
from .range import (
    RangeError,
    format_content_range,
    format_range,
    parse_content_range,
    parse_range,
)

__all__ = [
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "HttpError",
    "parse_request",
    "parse_response_head",
    "RangeError",
    "format_range",
    "parse_range",
    "format_content_range",
    "parse_content_range",
    "ContainerMetadata",
    "CodecError",
    "build_flv_header",
    "build_webm_header",
    "parse_container_header",
    "sniff_container",
    "CONTAINER_HEADER_LEN",
    "INVALID_FRAME_RATE",
]
