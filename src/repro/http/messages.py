"""Minimal HTTP/1.1 messages for video delivery.

Only what the streaming strategies of the paper require: GET requests (with
optional ``Range`` headers, as used by the iPad player and Netflix), and
responses with ``Content-Length`` / ``Content-Range`` (the HTML5
encoding-rate estimation of Section 5 divides the Content-Length by the
video duration).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

CRLF = b"\r\n"
HEAD_END = b"\r\n\r\n"


class HttpError(ValueError):
    """Malformed HTTP message."""


class Headers:
    """Case-insensitive, order-preserving header collection."""

    def __init__(self, items: Optional[List[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = list(items or [])

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        lower = name.lower()
        for key, value in self._items:
            if key.lower() == lower:
                return value
        return default

    def set(self, name: str, value: str) -> None:
        lower = name.lower()
        for i, (key, _v) in enumerate(self._items):
            if key.lower() == lower:
                self._items[i] = (name, value)
                return
        self._items.append((name, value))

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def serialize(self) -> bytes:
        return b"".join(
            f"{key}: {value}".encode("ascii") + CRLF for key, value in self._items
        )

    @classmethod
    def parse(cls, lines: List[bytes]) -> "Headers":
        items = []
        for line in lines:
            if b":" not in line:
                raise HttpError(f"bad header line {line!r}")
            key, _sep, value = line.partition(b":")
            items.append((key.decode("ascii").strip(), value.decode("ascii").strip()))
        return cls(items)


class HttpRequest:
    """An HTTP request (head only; video requests carry no body)."""

    def __init__(self, method: str, path: str,
                 headers: Optional[Headers] = None, version: str = "HTTP/1.1"):
        self.method = method
        self.path = path
        self.version = version
        self.headers = headers if headers is not None else Headers()

    def serialize(self) -> bytes:
        head = f"{self.method} {self.path} {self.version}".encode("ascii") + CRLF
        return head + self.headers.serialize() + CRLF

    @property
    def range_header(self) -> Optional[str]:
        return self.headers.get("Range")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HttpRequest({self.method} {self.path})"


class HttpResponse:
    """An HTTP response head; the body is streamed separately."""

    def __init__(self, status: int, reason: str = "",
                 headers: Optional[Headers] = None, version: str = "HTTP/1.1"):
        self.status = status
        self.reason = reason or {200: "OK", 206: "Partial Content",
                                 404: "Not Found", 416: "Range Not Satisfiable",
                                 503: "Service Unavailable",
                                 }.get(status, "")
        self.version = version
        self.headers = headers if headers is not None else Headers()

    def serialize_head(self) -> bytes:
        line = f"{self.version} {self.status} {self.reason}".encode("ascii") + CRLF
        return line + self.headers.serialize() + CRLF

    @property
    def content_length(self) -> Optional[int]:
        value = self.headers.get("Content-Length")
        return int(value) if value is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HttpResponse({self.status} {self.reason})"


def _split_head(buffer: bytes) -> Optional[Tuple[List[bytes], int]]:
    end = buffer.find(HEAD_END)
    if end < 0:
        return None
    lines = buffer[:end].split(CRLF)
    return lines, end + len(HEAD_END)


def parse_request(buffer: bytes) -> Optional[Tuple[HttpRequest, int]]:
    """Parse a request head from ``buffer``.

    Returns ``(request, bytes_consumed)`` or ``None`` if the head is not
    yet complete.
    """
    split = _split_head(buffer)
    if split is None:
        return None
    lines, consumed = split
    parts = lines[0].decode("ascii").split(" ")
    if len(parts) != 3:
        raise HttpError(f"bad request line {lines[0]!r}")
    method, path, version = parts
    return HttpRequest(method, path, Headers.parse(lines[1:]), version), consumed


def parse_response_head(buffer: bytes) -> Optional[Tuple[HttpResponse, int]]:
    """Parse a response head; ``None`` while incomplete."""
    split = _split_head(buffer)
    if split is None:
        return None
    lines, consumed = split
    parts = lines[0].decode("ascii").split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise HttpError(f"bad status line {lines[0]!r}")
    version = parts[0]
    status = int(parts[1])
    reason = parts[2] if len(parts) == 3 else ""
    return HttpResponse(status, reason, Headers.parse(lines[1:]), version), consumed
