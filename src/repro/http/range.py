"""HTTP byte-range parsing and formatting (RFC 7233 subset).

The native iPad YouTube application and Netflix request video content in
explicit byte ranges across many successive TCP connections (Section 5.1.3
and 5.2); this module implements the ``Range`` / ``Content-Range`` headers
they use.
"""

from __future__ import annotations

from typing import Optional, Tuple


class RangeError(ValueError):
    """Unsatisfiable or malformed byte range."""


def format_range(start: int, end: int) -> str:
    """``Range`` header value for the inclusive byte span [start, end]."""
    if start < 0 or end < start:
        raise RangeError(f"invalid range {start}-{end}")
    return f"bytes={start}-{end}"


def parse_range(value: str, total: int) -> Tuple[int, int]:
    """Resolve a ``Range`` header against a ``total``-byte resource.

    Returns the inclusive ``(start, end)`` pair.  Supports the three RFC
    forms ``bytes=a-b``, ``bytes=a-`` and ``bytes=-n`` (final n bytes).
    """
    if total <= 0:
        raise RangeError(f"resource has no content (total={total})")
    if not value.startswith("bytes="):
        raise RangeError(f"unsupported range unit in {value!r}")
    spec = value[len("bytes="):]
    if "," in spec:
        raise RangeError("multi-range requests not supported")
    first, _sep, last = spec.partition("-")
    first = first.strip()
    last = last.strip()
    if first == "" and last == "":
        raise RangeError(f"empty range spec {value!r}")
    if first == "":
        # suffix form: final N bytes
        n = int(last)
        if n <= 0:
            raise RangeError(f"bad suffix length in {value!r}")
        start = max(0, total - n)
        end = total - 1
    else:
        start = int(first)
        end = int(last) if last else total - 1
    if start >= total:
        raise RangeError(f"range {value!r} starts beyond resource of {total} bytes")
    end = min(end, total - 1)
    if end < start:
        raise RangeError(f"range {value!r} is inverted")
    return start, end


def format_content_range(start: int, end: int, total: int) -> str:
    """``Content-Range`` header value for a 206 response."""
    if not 0 <= start <= end < total:
        raise RangeError(f"invalid content range {start}-{end}/{total}")
    return f"bytes {start}-{end}/{total}"


def parse_content_range(value: str) -> Tuple[int, int, Optional[int]]:
    """Parse ``Content-Range``; total is ``None`` for ``*``."""
    if not value.startswith("bytes "):
        raise RangeError(f"unsupported content-range {value!r}")
    span, _sep, total_part = value[len("bytes "):].partition("/")
    first, _sep2, last = span.partition("-")
    try:
        start = int(first)
        end = int(last)
    except ValueError:
        raise RangeError(f"bad content-range span in {value!r}") from None
    total = None if total_part.strip() == "*" else int(total_part)
    if end < start or (total is not None and end >= total):
        raise RangeError(f"inconsistent content-range {value!r}")
    return start, end, total
