"""Container-format metadata headers (FLV-like and webM-like).

Section 5 of the paper extracts the video encoding rate from the header of
the streamed file when the container is Flash (FLV carries ``videodatarate``
in its onMetaData block), but cannot do so for HTML5 because the webM files
observed in 2011 carried an *invalid frame-rate entry*; the encoding rate of
HTML5 videos is instead estimated as ``Content-Length / duration``.

We reproduce both behaviours with compact, parseable stand-ins:

* :func:`build_flv_header` emits a blob whose metadata (encoding rate,
  duration, frame rate) parses back exactly;
* :func:`build_webm_header` emits a blob whose frame-rate field is the
  invalid sentinel and whose rate field is zeroed, forcing analysers down
  the Content-Length/duration path, exactly as the paper experienced.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

FLV_MAGIC = b"FLV\x01"
WEBM_MAGIC = b"wEBM"      # stand-in for the EBML magic
HEADER_STRUCT = struct.Struct("!4sdddI")  # magic, rate, duration, fps, size
HEADER_LEN = HEADER_STRUCT.size

#: The "invalid entry for the frame rate" the paper found in webM headers.
INVALID_FRAME_RATE = -1.0


class CodecError(ValueError):
    """Malformed container header."""


@dataclass
class ContainerMetadata:
    """Metadata recovered from a container header."""

    container: str                       # "flv" or "webm"
    encoding_rate_bps: Optional[float]   # None when the header lies
    duration: Optional[float]
    frame_rate: Optional[float]
    header_size: int = HEADER_LEN

    @property
    def has_valid_rate(self) -> bool:
        return self.encoding_rate_bps is not None and self.encoding_rate_bps > 0


def build_flv_header(encoding_rate_bps: float, duration: float,
                     frame_rate: float = 25.0) -> bytes:
    """An FLV-like header carrying trustworthy metadata."""
    if encoding_rate_bps <= 0 or duration <= 0:
        raise CodecError(
            f"rate and duration must be positive "
            f"(rate={encoding_rate_bps!r}, duration={duration!r})"
        )
    return HEADER_STRUCT.pack(FLV_MAGIC, encoding_rate_bps, duration,
                              frame_rate, HEADER_LEN)


def build_webm_header(duration: float) -> bytes:
    """A webM-like header with the 2011 invalid-frame-rate defect.

    The rate field is zero and the frame rate is the invalid sentinel, so
    no parser can recover the encoding rate from the header alone.
    """
    if duration <= 0:
        raise CodecError(f"duration must be positive, got {duration!r}")
    return HEADER_STRUCT.pack(WEBM_MAGIC, 0.0, duration,
                              INVALID_FRAME_RATE, HEADER_LEN)


def parse_container_header(data: bytes) -> ContainerMetadata:
    """Parse the leading container header of a video byte stream.

    Raises :class:`CodecError` when the magic is unknown or the blob is
    shorter than a header.
    """
    if len(data) < HEADER_LEN:
        raise CodecError(
            f"need {HEADER_LEN} bytes of header, got {len(data)}"
        )
    magic, rate, duration, fps, size = HEADER_STRUCT.unpack(data[:HEADER_LEN])
    if magic == FLV_MAGIC:
        return ContainerMetadata(
            container="flv",
            encoding_rate_bps=rate,
            duration=duration,
            frame_rate=fps,
            header_size=size,
        )
    if magic == WEBM_MAGIC:
        # the frame-rate entry is invalid and the rate field is unusable:
        # report what a careful parser could actually trust
        return ContainerMetadata(
            container="webm",
            encoding_rate_bps=None,
            duration=duration,
            frame_rate=None if fps == INVALID_FRAME_RATE else fps,
            header_size=size,
        )
    raise CodecError(f"unknown container magic {magic!r}")


def sniff_container(data: bytes) -> Optional[str]:
    """Return ``"flv"``/``"webm"`` if ``data`` starts with a known magic."""
    if data[:4] == FLV_MAGIC:
        return "flv"
    if data[:4] == WEBM_MAGIC:
        return "webm"
    return None
