"""Exporters: the human profile summary and the JSONL trace dump.

Two consumers, two formats:

* :func:`summarize` renders the profile the ``repro profile`` CLI
  prints — a flame-style per-phase table (span paths aggregated by
  call count / total / mean / share of wall time), followed by counter,
  gauge and histogram tables and the busiest event names.
* :func:`write_jsonl` streams every record as one JSON object per line
  (``{"kind": "span", ...}``), the lowest-common-denominator trace
  format every ad-hoc analysis tool can slurp.

This module depends only on the recorder — deliberately not on
:mod:`repro.analysis` — so telemetry stays importable from every layer
of the stack, including the ones analysis itself builds on.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .recorder import (
    EventRecord,
    HistogramSummary,
    Recorder,
    SessionTelemetry,
    SpanRecord,
)

__all__ = [
    "aggregate_spans",
    "chrome_trace_events",
    "format_hot_spans",
    "hot_spans",
    "percentile_row",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
]

#: Percentiles reported for every histogram in the profile summary.
PERCENTILES = (50, 95, 99)


def percentile_row(hist: HistogramSummary,
                   qs: Sequence[float] = PERCENTILES) -> List[str]:
    """Formatted percentile cells for one histogram (``"-"`` when empty).

    >>> h = HistogramSummary()
    >>> percentile_row(h)
    ['-', '-', '-']
    >>> h.observe(2.0)
    >>> percentile_row(h)
    ['2', '2', '2']
    """
    cells = []
    for q in qs:
        value = hist.percentile(q)
        cells.append("-" if value is None else f"{value:g}")
    return cells

TelemetryLike = Union[Recorder, SessionTelemetry]


def _as_snapshot(telemetry: TelemetryLike) -> SessionTelemetry:
    if isinstance(telemetry, SessionTelemetry):
        return telemetry
    return telemetry.snapshot()


def aggregate_spans(
    spans: Sequence[SpanRecord],
) -> List[Tuple[str, int, float]]:
    """Collapse raw span records into ``(path, calls, total_seconds)`` rows.

    Rows come back sorted as a depth-first tree walk (parents before
    children, siblings by total time descending), ready for indented
    display.

    >>> rows = aggregate_spans([
    ...     SpanRecord("a", 0.0, 2.0), SpanRecord("a/b", 0.0, 1.5),
    ...     SpanRecord("a/b", 2.0, 0.5)])
    >>> [(p, n, t) for p, n, t in rows]
    [('a', 1, 2.0), ('a/b', 2, 2.0)]
    """
    totals: Dict[str, Tuple[int, float]] = {}
    for span in spans:
        count, total = totals.get(span.path, (0, 0.0))
        totals[span.path] = (count + 1, total + span.duration)

    # Depth-first ordering: group children under their parent path,
    # siblings sorted by total descending then name.
    children: Dict[str, List[str]] = {}
    for path in list(totals):
        parent = path.rsplit("/", 1)[0] if "/" in path else ""
        children.setdefault(parent, []).append(path)
        # A child can exist without its parent having a span of its own
        # (e.g. merged session spans under a since-closed engine span);
        # materialize intermediate nodes so the walk reaches everything.
        while parent and parent not in totals:
            totals[parent] = (0, 0.0)
            grand = parent.rsplit("/", 1)[0] if "/" in parent else ""
            children.setdefault(grand, []).append(parent)
            parent = grand

    rows: List[Tuple[str, int, float]] = []

    def walk(path: str) -> None:
        if path:
            count, total = totals[path]
            rows.append((path, count, total))
        kids = sorted(set(children.get(path, ())),
                      key=lambda p: (-totals[p][1], p))
        for kid in kids:
            walk(kid)

    walk("")
    return rows


def hot_spans(
    telemetry: TelemetryLike, top: int = 10,
) -> List[Tuple[str, int, float, float]]:
    """The ``top`` hottest span paths by *cumulative* time.

    Returns ``(path, calls, total_seconds, mean_seconds)`` rows sorted by
    total descending (ties by path).  Unlike :func:`aggregate_spans` this
    is a flat ranking, not a tree walk — the view you want when hunting
    where the wall clock actually went.

    >>> rows = hot_spans(SessionTelemetry(spans=[
    ...     SpanRecord("a", 0.0, 2.0), SpanRecord("a/b", 0.0, 1.5),
    ...     SpanRecord("a/b", 2.0, 0.5)], counters={}, gauges={},
    ...     histograms={}, events=[]), top=1)
    >>> [(p, n, t) for p, n, t, _mean in rows]
    [('a', 1, 2.0)]
    """
    snap = _as_snapshot(telemetry)
    totals: Dict[str, Tuple[int, float]] = {}
    for span in snap.spans:
        count, total = totals.get(span.path, (0, 0.0))
        totals[span.path] = (count + 1, total + span.duration)
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))
    return [
        (path, count, total, total / count if count else 0.0)
        for path, (count, total) in ranked[: max(0, top)]
    ]


def format_hot_spans(telemetry: TelemetryLike, top: int = 10) -> str:
    """Render :func:`hot_spans` as a fixed-width table."""
    rows = hot_spans(telemetry, top)
    if not rows:
        return "no spans recorded"
    grand = sum(total for _, _, total, _ in rows)
    table_rows = [
        (path, str(count), _format_seconds(total).strip(),
         _format_seconds(mean).strip(),
         f"{100.0 * total / grand:5.1f}%" if grand > 0 else "  0.0%")
        for path, count, total, mean in rows
    ]
    lines = [f"hot spans (top {len(rows)} by cumulative time)"]
    lines += _table(("span", "calls", "total", "mean", "share"), table_rows)
    return "\n".join(lines)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.2f}s"
    return f"{seconds * 1e3:7.1f}ms"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]],
           align_left: int = 1) -> List[str]:
    """Minimal fixed-width table (first ``align_left`` columns left-aligned)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.ljust(widths[i]) if i < align_left
                         else cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def summarize(telemetry: TelemetryLike, title: Optional[str] = None,
              max_events: int = 10) -> str:
    """Render the profile: span tree, counters, gauges, histograms, events.

    The span table is "flame-style": one row per distinct span path,
    indented by depth, with the share of the root spans' total wall time
    in the last column.  Under parallel execution a child row sums
    CPU-seconds across workers, so its share can legitimately exceed
    100% of the (wall-clock) root — that surplus *is* the speedup.
    """
    snap = _as_snapshot(telemetry)
    lines: List[str] = []
    if title:
        lines += [title, "=" * len(title), ""]

    span_rows = aggregate_spans(snap.spans)
    root_total = sum(total for path, _, total in span_rows if "/" not in path)
    if span_rows:
        rendered = []
        for path, count, total in span_rows:
            depth = path.count("/")
            name = path.rsplit("/", 1)[-1]
            share = (100.0 * total / root_total) if root_total > 0 else 0.0
            mean = total / count if count else 0.0
            rendered.append((
                "  " * depth + name,
                str(count),
                _format_seconds(total).strip(),
                _format_seconds(mean).strip(),
                f"{share:5.1f}%",
            ))
        lines += ["Phases (wall clock)"]
        lines += _table(["phase", "calls", "total", "mean", "share"], rendered)
        lines.append("")

    if snap.counters:
        rows = [(name, f"{value:g}")
                for name, value in sorted(snap.counters.items())]
        lines += ["Counters"]
        lines += _table(["counter", "value"], rows)
        lines.append("")

    if snap.gauges:
        rows = [(name, f"{value:g}")
                for name, value in sorted(snap.gauges.items())]
        lines += ["Gauges"]
        lines += _table(["gauge", "value"], rows)
        lines.append("")

    if snap.histograms:
        rows = [
            (name, str(h.count), f"{h.mean:g}",
             "-" if h.min is None else f"{h.min:g}",
             *percentile_row(h),
             "-" if h.max is None else f"{h.max:g}")
            for name, h in sorted(snap.histograms.items())
        ]
        lines += ["Histograms"]
        lines += _table(["histogram", "count", "mean", "min",
                         "p50", "p95", "p99", "max"], rows)
        lines.append("")

    if snap.events:
        by_name: Dict[str, int] = {}
        for event in snap.events:
            by_name[event.name] = by_name.get(event.name, 0) + 1
        top = sorted(by_name.items(), key=lambda kv: (-kv[1], kv[0]))
        rows = [(name, str(count)) for name, count in top[:max_events]]
        lines += [f"Events ({len(snap.events)} total, "
                  f"{len(by_name)} distinct)"]
        lines += _table(["event", "count"], rows)
        lines.append("")

    if len(lines) == 0 or (title and len(lines) == 3):
        lines.append("(no telemetry recorded)")
    return "\n".join(lines).rstrip()


def _event_to_json(event: EventRecord) -> dict:
    record: dict = {"kind": "event", "name": event.name}
    if event.t is not None:
        record["t"] = event.t
    if event.fields:
        record["fields"] = dict(event.fields)
    return record


def write_jsonl(telemetry: TelemetryLike, path) -> int:
    """Dump every record as one JSON object per line; returns line count.

    Record kinds: ``span`` (path/start/duration, wall clock), ``event``
    (name/simulated t/fields), ``counter``, ``gauge`` and ``histogram``.
    Lines are sorted within each kind exactly as recorded/merged, so a
    dump of a deterministic run is itself deterministic apart from span
    timings.
    """
    snap = _as_snapshot(telemetry)
    written = 0
    with open(path, "w", encoding="utf-8") as f:
        for span in snap.spans:
            f.write(json.dumps({"kind": "span", "path": span.path,
                                "start": span.start,
                                "duration": span.duration}) + "\n")
            written += 1
        for event in snap.events:
            f.write(json.dumps(_event_to_json(event)) + "\n")
            written += 1
        for name, value in sorted(snap.counters.items()):
            f.write(json.dumps({"kind": "counter", "name": name,
                                "value": value}) + "\n")
            written += 1
        for name, value in sorted(snap.gauges.items()):
            f.write(json.dumps({"kind": "gauge", "name": name,
                                "value": value}) + "\n")
            written += 1
        for name, hist in sorted(snap.histograms.items()):
            f.write(json.dumps({
                "kind": "histogram", "name": name, "count": hist.count,
                "total": hist.total, "min": hist.min, "max": hist.max,
                "p50": hist.percentile(50), "p95": hist.percentile(95),
                "p99": hist.percentile(99),
            }) + "\n")
            written += 1
    return written


def chrome_trace_events(telemetry: TelemetryLike) -> List[dict]:
    """The span tree as Chrome trace-viewer complete events.

    One ``{"ph": "X"}`` event per span record, timestamps and durations
    in microseconds rebased to the earliest span start, so the trace
    opens at t=0 in ``chrome://tracing`` or Perfetto.  The event name is
    the last segment of the span path (the full path travels in
    ``args.path``); everything runs on pid/tid 0 because span records
    are already merged across workers by the time they reach an export.

    >>> events = chrome_trace_events(SessionTelemetry(spans=[
    ...     SpanRecord("a", 10.0, 2.0), SpanRecord("a/b", 10.5, 1.0)],
    ...     counters={}, gauges={}, histograms={}, events=[]))
    >>> [(e["name"], e["ts"], e["dur"]) for e in events]
    [('a', 0, 2000000), ('b', 500000, 1000000)]
    """
    snap = _as_snapshot(telemetry)
    if not snap.spans:
        return []
    base = min(span.start for span in snap.spans)
    events = []
    for span in sorted(snap.spans, key=lambda s: (s.start, s.path)):
        events.append({
            "name": span.path.rsplit("/", 1)[-1],
            "cat": "span",
            "ph": "X",
            "ts": round((span.start - base) * 1e6),
            "dur": round(span.duration * 1e6),
            "pid": 0,
            "tid": 0,
            "args": {"path": span.path},
        })
    return events


def write_chrome_trace(telemetry: TelemetryLike, path) -> int:
    """Dump the span tree as a Chrome trace-viewer JSON array.

    Writes the :func:`chrome_trace_events` list as one JSON array —
    the plain-array flavor of the trace-event format, loadable by
    ``chrome://tracing`` and Perfetto directly.  Returns the event
    count.
    """
    events = chrome_trace_events(telemetry)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(events, f)
        f.write("\n")
    return len(events)
