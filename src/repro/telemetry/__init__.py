"""Telemetry: span tracing, metrics and structured events for the engine.

The paper's own method is phase-level traffic instrumentation; this
package applies the same idea to the reproduction itself.  Hot paths —
the worker pool, ``run_session``, the TCP endpoints, the event scheduler,
the players — emit spans (wall-clock timed regions), counters/gauges/
histograms and structured events into an ambient :class:`Recorder`.

Three properties define the design (see ``docs/ARCHITECTURE.md``):

* **Off by default, zero-cost when off.**  The ambient recorder is a
  no-op :class:`NullRecorder`; instrumented code checks ``rec.enabled``
  once per scope and skips everything.  Report output is byte-identical
  with telemetry on or off.
* **Deterministic.**  Counters, histograms and events carry simulation
  values only; per-session buffers are merged in plan order by the
  engine, so ``--jobs N`` telemetry equals ``--jobs 1`` telemetry.
  Recording state is *excluded* from cache fingerprints.
* **Attached to results.**  Each session's telemetry snapshot rides on
  ``SessionResult.telemetry``, so it survives the worker-pool pickle
  round-trip and the result cache alongside the data it describes.

Typical use — the ``repro profile`` CLI does exactly this::

    from repro.telemetry import recording, summarize

    with recording() as rec:
        result = spec.run(scale, seed=0)
    print(summarize(rec, title="table1 profile"))

Public API: :class:`Recorder`, :class:`NullRecorder`,
:func:`current_recorder`, :func:`recording`, :func:`use_recorder` (the
recorder, :mod:`repro.telemetry.recorder`); :func:`summarize`,
:func:`write_jsonl`, :func:`aggregate_spans`, :func:`hot_spans` (the exporters,
:mod:`repro.telemetry.export`).
"""

from .export import (
    aggregate_spans,
    chrome_trace_events,
    format_hot_spans,
    hot_spans,
    percentile_row,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from .recorder import (
    NULL,
    EventRecord,
    HistogramSummary,
    NullRecorder,
    Recorder,
    SessionTelemetry,
    SpanRecord,
    current_recorder,
    recording,
    use_recorder,
)

__all__ = [
    "EventRecord",
    "HistogramSummary",
    "NULL",
    "NullRecorder",
    "Recorder",
    "SessionTelemetry",
    "SpanRecord",
    "aggregate_spans",
    "chrome_trace_events",
    "current_recorder",
    "format_hot_spans",
    "hot_spans",
    "percentile_row",
    "recording",
    "summarize",
    "use_recorder",
    "write_chrome_trace",
    "write_jsonl",
]
