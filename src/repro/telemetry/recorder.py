"""The recorder: spans, counters, gauges, histograms, structured events.

One :class:`Recorder` collects everything the instrumented hot paths emit.
Its design is governed by two constraints that pull in opposite
directions:

* **Zero cost when disabled.**  The ambient recorder defaults to
  :data:`NULL`, a :class:`NullRecorder` whose ``enabled`` attribute is
  ``False`` and whose methods are no-ops.  Instrumented code holds a
  reference captured once (at object construction or scope entry) and
  guards per-packet work with a single ``if rec.enabled:`` check — no
  context-variable lookup, no dict update, no allocation on the
  disabled path.
* **Determinism under parallelism.**  Counters, histograms and events
  carry only *simulation-derived* values (simulated timestamps, byte
  counts, event names), never wall-clock state, so the totals for a
  batch are a pure function of the plans.  Wall-clock time appears only
  in span durations, which profiling consumes and the determinism tests
  ignore.  Per-session recorders are snapshotted into
  :class:`SessionTelemetry` and merged **in plan order** by the engine,
  making ``jobs=N`` telemetry equal to ``jobs=1`` telemetry.

The ambient recorder is a :mod:`contextvars` variable, exactly like the
engine options: :func:`recording` installs a live recorder for a scope,
:func:`current_recorder` reads the one in effect.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "EventRecord",
    "HistogramSummary",
    "NullRecorder",
    "Recorder",
    "SessionTelemetry",
    "SpanRecord",
    "current_recorder",
    "recording",
    "use_recorder",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a named, nested, wall-clock-timed region.

    ``path`` is the slash-joined stack of span names at completion time
    (``"session/stream"``), which is what the profile exporter aggregates
    into the flame-style breakdown.  ``start`` and ``duration`` are
    wall-clock (``time.perf_counter``) values — useful for profiling,
    excluded from determinism comparisons.
    """

    path: str
    start: float
    duration: float


@dataclass(frozen=True)
class EventRecord:
    """One structured event: a name, a simulated timestamp, small fields.

    ``t`` is *simulated* time (or ``None`` for events outside any
    simulation, e.g. engine-level events), so event logs are
    deterministic and comparable across worker counts.
    """

    name: str
    t: Optional[float] = None
    fields: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, name: str, t: Optional[float] = None, **fields: Any) -> "EventRecord":
        return cls(name=name, t=t, fields=tuple(sorted(fields.items())))


@dataclass
class HistogramSummary:
    """Summary of an observed distribution: moments plus raw samples.

    Deliberately bucket-free: the instrumented values (session durations,
    downloaded bytes, block sizes) are deterministic, so exact moments
    merge exactly.  The raw samples are retained too — the instrumented
    paths observe a handful of values per session, so the list stays
    small while making exact percentiles possible.  Percentiles sort at
    query time, so merge order never affects them.
    """

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    samples: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.samples.append(value)

    def merge(self, other: "HistogramSummary") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = other.min if self.min is None else min(self.min, other.min)  # type: ignore[arg-type]
        self.max = other.max if self.max is None else max(self.max, other.max)  # type: ignore[arg-type]
        self.samples.extend(other.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile (0–100, linear interpolation between
        order statistics), or ``None`` when nothing was observed.

        >>> h = HistogramSummary()
        >>> for v in (1.0, 2.0, 3.0, 4.0):
        ...     h.observe(v)
        >>> h.percentile(50)
        2.5
        >>> h.percentile(100)
        4.0
        >>> HistogramSummary().percentile(95) is None
        True
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


@dataclass
class SessionTelemetry:
    """A recorder's immutable-by-convention snapshot.

    This is what rides on ``SessionResult.telemetry`` (and in the task
    envelopes of ``run_tasks``): plain dataclasses and dicts, so it
    pickles across the worker pool and into the result cache unchanged.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSummary] = field(default_factory=dict)
    events: List[EventRecord] = field(default_factory=list)
    spans: List[SpanRecord] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """True when nothing was recorded."""
        return not (self.counters or self.gauges or self.histograms
                    or self.events or self.spans)


class _NullSpan:
    """Shared, reusable no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Instrumented code checks ``rec.enabled`` once per scope (per span,
    per connection, per scheduler run) and skips all bookkeeping when it
    is ``False``; the methods still exist so un-guarded call sites stay
    correct, just slightly less fast.
    """

    enabled = False

    def span(self, name: str) -> _NullSpan:
        """A reusable no-op context manager."""
        return _NULL_SPAN

    def inc(self, name: str, n: float = 1) -> None:
        """Discard a counter increment."""

    def gauge(self, name: str, value: float) -> None:
        """Discard a gauge update."""

    def observe(self, name: str, value: float) -> None:
        """Discard a histogram observation."""

    def event(self, name: str, t: Optional[float] = None, **fields: Any) -> None:
        """Discard a structured event."""

    def snapshot(self) -> SessionTelemetry:
        """An empty snapshot (the null recorder never holds data)."""
        return SessionTelemetry()

    def merge(self, telemetry: SessionTelemetry) -> None:
        """Discard a merge."""


#: The process-wide disabled recorder (ambient default).
NULL = NullRecorder()


class _Span:
    """Context manager produced by :meth:`Recorder.span`."""

    __slots__ = ("_rec", "_name", "_start")

    def __init__(self, rec: "Recorder", name: str) -> None:
        self._rec = rec
        self._name = name

    def __enter__(self) -> "_Span":
        self._rec._stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = time.perf_counter() - self._start
        rec = self._rec
        path = "/".join(rec._stack)
        rec._stack.pop()
        rec.spans.append(SpanRecord(path=path, start=self._start,
                                    duration=duration))
        return False


class Recorder(NullRecorder):
    """A live recorder collecting spans, counters, gauges, histograms, events.

    Subclasses :class:`NullRecorder` only so the two are substitutable;
    every method is overridden.  Not thread-safe by design — each worker
    process and each session gets its own recorder, and merging happens
    single-threaded in plan order.
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramSummary] = {}
        self.events: List[EventRecord] = []
        self.spans: List[SpanRecord] = []
        self._stack: List[str] = []

    # -- recording -----------------------------------------------------------

    def span(self, name: str) -> _Span:
        """Time a named region; nests under any open spans.

        >>> rec = Recorder()
        >>> with rec.span("outer"):
        ...     with rec.span("inner"):
        ...         pass
        >>> [s.path for s in rec.spans]
        ['outer/inner', 'outer']
        """
        return _Span(self, name)

    def inc(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed ``value`` into the histogram summary for ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    def event(self, name: str, t: Optional[float] = None, **fields: Any) -> None:
        """Append a structured event (``t`` is *simulated* time)."""
        self.events.append(EventRecord.make(name, t, **fields))

    # -- snapshot / merge ----------------------------------------------------

    @property
    def current_path(self) -> str:
        """Slash-joined path of the currently open spans ('' at top level)."""
        return "/".join(self._stack)

    def snapshot(self) -> SessionTelemetry:
        """Copy everything recorded so far into a :class:`SessionTelemetry`."""
        return SessionTelemetry(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={k: HistogramSummary(v.count, v.total, v.min, v.max,
                                            list(v.samples))
                        for k, v in self.histograms.items()},
            events=list(self.events),
            spans=list(self.spans),
        )

    def merge(self, telemetry: SessionTelemetry) -> None:
        """Fold a snapshot into this recorder.

        Counter values add, histogram summaries combine, gauges take the
        incoming value (last write wins), events append in order, and
        span paths are re-rooted under the currently open span — so a
        session's ``session/stream`` span shows up under the engine's
        ``engine.run_sessions`` span in the merged flame view.

        Called by the engine once per result, in plan order; merging is
        therefore deterministic for any worker count.
        """
        for name, value in telemetry.counters.items():
            self.inc(name, value)
        for name, value in telemetry.gauges.items():
            self.gauges[name] = value
        for name, hist in telemetry.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = HistogramSummary()
            mine.merge(hist)
        self.events.extend(telemetry.events)
        prefix = self.current_path
        if prefix:
            self.spans.extend(
                SpanRecord(path=f"{prefix}/{s.path}", start=s.start,
                           duration=s.duration)
                for s in telemetry.spans
            )
        else:
            self.spans.extend(telemetry.spans)


# -- the ambient recorder -----------------------------------------------------

_RECORDER: contextvars.ContextVar[NullRecorder] = contextvars.ContextVar(
    "repro-telemetry-recorder", default=NULL
)


def current_recorder() -> NullRecorder:
    """The recorder in effect for this context (:data:`NULL` when disabled).

    Hot paths call this once per long-lived object (a TCP connection, a
    scheduler, a session) and keep the reference; they must not cache it
    across sessions.
    """
    return _RECORDER.get()


@contextmanager
def use_recorder(recorder: NullRecorder) -> Iterator[NullRecorder]:
    """Install ``recorder`` as the ambient recorder within a ``with`` block."""
    token = _RECORDER.set(recorder)
    try:
        yield recorder
    finally:
        _RECORDER.reset(token)


@contextmanager
def recording() -> Iterator[Recorder]:
    """Record telemetry for a scope and yield the live :class:`Recorder`.

    >>> from repro.telemetry import recording, current_recorder
    >>> current_recorder().enabled
    False
    >>> with recording() as rec:
    ...     current_recorder() is rec
    True
    >>> rec.enabled
    True
    """
    with use_recorder(Recorder()) as rec:
        yield rec  # type: ignore[misc]
