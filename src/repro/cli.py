"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze <capture.pcap>`` — run the paper's measurement pipeline on a
  pcap file (simulated or re-collected real traffic) and print the
  per-session report: strategy, buffering, blocks, accumulation ratio.
* ``stream`` — simulate one streaming session and (optionally) write the
  capture as a pcap file.
* ``experiment <name>`` — regenerate one of the paper's tables/figures.
  ``--jobs N`` fans the independent sessions out over N worker processes
  (output stays byte-identical to ``--jobs 1``); ``--cache-dir`` memoizes
  completed sessions on disk so a rerun is nearly free; ``--no-cache``
  force-disables caching even when ``$REPRO_CACHE_DIR`` is set.
* ``profile <name>`` — run one experiment with telemetry enabled and
  print the per-phase flame-style breakdown, counters, histograms and
  event summary (``--trace out.jsonl`` dumps the raw records).  The
  experiment's own output is unchanged by recording; ``--report`` prints
  it too.
* ``list`` — show the available experiments (title and paper reference
  from the registry), applications and networks.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Network Characteristics of Video Streaming "
            "Traffic' (Rao et al., CoNEXT 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser(
        "analyze", help="analyze a pcap capture of a streaming session")
    p_analyze.add_argument("pcap", help="path to a libpcap file")
    p_analyze.add_argument(
        "--client", default=None,
        help="client IP (default: the simulator's 10.0.0.1)")
    p_analyze.add_argument(
        "--server", default=None,
        help="server IP (default: the simulator's 192.0.2.1)")
    p_analyze.add_argument(
        "--duration", type=float, default=None,
        help="video duration in seconds (needed to estimate webM rates)")
    p_analyze.add_argument(
        "--gap-threshold", type=float, default=None,
        help="ON/OFF idle-gap threshold in seconds (default 0.15)")

    p_stream = sub.add_parser(
        "stream", help="simulate one streaming session")
    p_stream.add_argument(
        "--network", default="Research",
        help="Research | Residence | Academic | Home")
    p_stream.add_argument(
        "--service", default="youtube", choices=["youtube", "netflix"])
    p_stream.add_argument(
        "--application", default="firefox",
        choices=["ie", "firefox", "chrome", "ipad", "android"])
    p_stream.add_argument(
        "--container", default=None,
        choices=["flash", "flash-hd", "html5", "silverlight"],
        help="default: derived from the service/video")
    p_stream.add_argument("--rate-mbps", type=float, default=1.0,
                          help="video encoding rate")
    p_stream.add_argument("--duration", type=float, default=300.0,
                          help="video duration in seconds")
    p_stream.add_argument("--capture", type=float, default=120.0,
                          help="capture length in seconds")
    p_stream.add_argument("--watch-fraction", type=float, default=1.0,
                          help="fraction watched before the viewer quits")
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument("--pcap", default=None,
                          help="write the capture to this pcap file")

    p_exp = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures")
    p_exp.add_argument("name", help="table1, fig2..fig12, table2, "
                                    "model_validation, or 'all'")
    p_exp.add_argument("--scale", default="small",
                       choices=["small", "medium", "full"])
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent sessions (default 1; "
             "output is byte-identical for any N)")
    p_exp.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="memoize completed sessions under DIR "
             "(default: $REPRO_CACHE_DIR if set, else no cache)")
    p_exp.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if $REPRO_CACHE_DIR is set")

    p_prof = sub.add_parser(
        "profile",
        help="run one experiment with telemetry on and print the "
             "per-phase/counter breakdown")
    p_prof.add_argument("name", help="an experiment name from `repro list`")
    p_prof.add_argument("--scale", default="small",
                        choices=["small", "medium", "full"])
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (counters/events are identical for any N; "
             "span totals sum CPU-seconds across workers)")
    p_prof.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="reuse/populate the result cache while profiling")
    p_prof.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if $REPRO_CACHE_DIR is set")
    p_prof.add_argument(
        "--trace", default=None, metavar="FILE.jsonl",
        help="also dump every span/event/counter as JSON lines")
    p_prof.add_argument(
        "--report", action="store_true",
        help="print the experiment's normal report before the profile "
             "(byte-identical to a run without telemetry)")

    sub.add_parser("list", help="show experiments, applications, networks")
    return parser


def _cmd_analyze(args) -> int:
    from .analysis import analyze_records, bytes_human, median
    from .pcap import records_from_pcap
    from .simnet import CLIENT_IP, SERVER_IP

    records = records_from_pcap(args.pcap)
    if not records:
        print(f"{args.pcap}: no packets", file=sys.stderr)
        return 1
    client = args.client or CLIENT_IP
    server = args.server or SERVER_IP
    kwargs = {}
    if args.gap_threshold is not None:
        kwargs["gap_threshold"] = args.gap_threshold
    analysis = analyze_records(records, client, server,
                               duration=args.duration, **kwargs)
    trace = analysis.trace
    print(f"capture          : {args.pcap}")
    print(f"packets          : {len(records)}")
    print(f"flows            : {trace.flow_count}")
    print(f"downloaded       : {bytes_human(trace.total_bytes)}")
    print(f"retransmissions  : {analysis.retransmission_rate:.2%}")
    print(f"strategy         : {analysis.strategy}")
    print(f"buffering amount : {bytes_human(analysis.buffering_bytes)}")
    blocks = analysis.block_sizes
    if blocks:
        print(f"steady blocks    : {len(blocks)}, median "
              f"{bytes_human(median(blocks))}")
    if analysis.encoding_rate_bps:
        print(f"encoding rate    : {analysis.encoding_rate_bps / 1e6:.2f} "
              f"Mbps ({analysis.rate_estimate.method})")
        ratio = analysis.accumulation_ratio
        if ratio is not None:
            print(f"accumulation     : {ratio:.2f}")
    return 0


_APPLICATIONS = {
    "ie": "INTERNET_EXPLORER",
    "firefox": "FIREFOX",
    "chrome": "CHROME",
    "ipad": "IOS",
    "android": "ANDROID",
}

_CONTAINERS = {
    "flash": "FLASH",
    "flash-hd": "FLASH_HD",
    "html5": "HTML5",
    "silverlight": "SILVERLIGHT",
}


def _cmd_stream(args) -> int:
    from .analysis import analyze_session, bytes_human, median
    from .simnet import get_profile
    from .streaming import (
        Application,
        Container,
        Service,
        SessionConfig,
        run_session,
    )
    from .workloads import NETFLIX_LADDER_BPS, Video

    service = Service.NETFLIX if args.service == "netflix" else Service.YOUTUBE
    application = Application[_APPLICATIONS[args.application]]
    container = (Container[_CONTAINERS[args.container]]
                 if args.container else None)
    if service is Service.NETFLIX:
        ladder = ("480p-lo", "480p", "720p-lo", "720p", "1080p")
        video = Video(
            video_id="cli", duration=args.duration,
            encoding_rate_bps=NETFLIX_LADDER_BPS[-1], resolution="1080p",
            container="silverlight",
            variants=tuple(zip(ladder, NETFLIX_LADDER_BPS)),
        )
    else:
        wants_html5 = container is Container.HTML5 or (
            container is None and args.application in ("ipad", "android"))
        video = Video(
            video_id="cli", duration=args.duration,
            encoding_rate_bps=args.rate_mbps * 1e6, resolution="360p",
            container="webm" if wants_html5 else "flv",
        )
    config = SessionConfig(
        profile=get_profile(args.network),
        service=service,
        application=application,
        container=container,
        capture_duration=args.capture,
        seed=args.seed,
        watch_fraction=args.watch_fraction,
    )
    result = run_session(video, config)
    analysis = analyze_session(result, use_true_rate=True)
    print(f"network          : {config.profile.name}")
    print(f"client           : {service} / {application}")
    print(f"video            : {video}")
    print(f"downloaded       : {bytes_human(result.downloaded)} over "
          f"{result.connections_opened} connection(s)")
    print(f"strategy         : {analysis.strategy}")
    print(f"buffering amount : {bytes_human(analysis.buffering_bytes)}")
    blocks = analysis.block_sizes
    if blocks:
        print(f"steady blocks    : {len(blocks)}, median "
              f"{bytes_human(median(blocks))}")
    ratio = analysis.accumulation_ratio
    if ratio is not None:
        print(f"accumulation     : {ratio:.2f}")
    if result.interrupted:
        print(f"interrupted at   : {result.playback_position_s:.0f} s "
              f"watched; {bytes_human(result.unused_bytes)} wasted")
    if args.pcap:
        n = result.capture.write_pcap(args.pcap)
        print(f"pcap written     : {args.pcap} ({n} packets)")
    return 0


def _resolve_cache(args):
    """The result cache selected by ``--cache-dir``/``--no-cache``/env."""
    from .runner import ResultCache

    if args.no_cache:
        return None
    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not root:
        return None
    return ResultCache(os.path.expanduser(root))


def _cmd_experiment(args) -> int:
    from .analysis import format_table
    from .experiments import REGISTRY, SCALES
    from .runner import RunStats

    scale = SCALES[args.scale]
    names = list(REGISTRY) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"know {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    cache = _resolve_cache(args)
    summary = []
    for name in names:
        spec = REGISTRY[name]
        stats = RunStats()
        started = time.perf_counter()
        result = spec.run(scale, seed=args.seed, jobs=args.jobs,
                          cache=cache, stats=stats)
        elapsed = time.perf_counter() - started
        print(result.report())
        print()
        summary.append((spec, elapsed, stats))
    if len(summary) > 1:
        rows = [
            (spec.name, spec.paper, f"{elapsed:.1f}", stats.sessions,
             stats.cache_hits, stats.cache_misses)
            for spec, elapsed, stats in summary
        ]
        print(format_table(
            ["Experiment", "Paper", "Wall(s)", "Units", "Hits", "Misses"],
            rows,
            title=f"Campaign summary — scale={scale.name} jobs={args.jobs} "
                  f"cache={'on' if cache else 'off'}",
        ))
        total_s = sum(elapsed for _, elapsed, _ in summary)
        units = sum(stats.sessions for _, _, stats in summary)
        hits = sum(stats.cache_hits for _, _, stats in summary)
        misses = sum(stats.cache_misses for _, _, stats in summary)
        print(f"total: {units} units (hits {hits}, misses {misses}) "
              f"in {total_s:.1f}s")
    return 0


def _cmd_profile(args) -> int:
    from .experiments import REGISTRY, SCALES
    from .runner import RunStats
    from .telemetry import recording, summarize, write_jsonl

    if args.name not in REGISTRY:
        print(f"unknown experiment {args.name!r}; know {', '.join(REGISTRY)}",
              file=sys.stderr)
        return 2
    spec = REGISTRY[args.name]
    scale = SCALES[args.scale]
    cache = _resolve_cache(args)
    stats = RunStats()
    started = time.perf_counter()
    with recording() as rec:
        result = spec.run(scale, seed=args.seed, jobs=args.jobs,
                          cache=cache, stats=stats)
    elapsed = time.perf_counter() - started
    if args.report:
        print(result.report())
        print()
    title = (f"{spec.name} ({spec.paper}) — scale={scale.name} "
             f"seed={args.seed} jobs={args.jobs} "
             f"cache={'on' if cache else 'off'} wall={elapsed:.2f}s")
    print(summarize(rec, title=title))
    if args.trace:
        n = write_jsonl(rec, args.trace)
        print(f"\ntrace written      : {args.trace} ({n} records)")
    return 0


def _cmd_list() -> int:
    from .analysis import format_table
    from .experiments import REGISTRY
    from .simnet import PROFILES

    rows = [
        (spec.name, spec.paper, spec.title, ", ".join(spec.tags))
        for spec in REGISTRY.values()
    ]
    print(format_table(["Experiment", "Paper", "Title", "Tags"], rows,
                       title="Experiments"))
    print()
    print("networks    :", ", ".join(PROFILES))
    print("applications:", ", ".join(_APPLICATIONS))
    print("containers  :", ", ".join(_CONTAINERS))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "list":
        return _cmd_list()
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
