"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze <capture.pcap>`` — run the paper's measurement pipeline on a
  pcap file (simulated or re-collected real traffic) and print the
  per-session report: strategy, buffering, blocks, accumulation ratio.
* ``stream`` — simulate one streaming session and (optionally) write the
  capture as a pcap file.
* ``experiment <name>`` — regenerate one of the paper's tables/figures.
  ``--jobs N`` fans the independent sessions out over N worker processes
  (output stays byte-identical to ``--jobs 1``); ``--cache-dir`` memoizes
  completed sessions on disk so a rerun is nearly free; ``--no-cache``
  force-disables caching even when ``$REPRO_CACHE_DIR`` is set.
* ``profile <name>`` — run one experiment with telemetry enabled and
  print the per-phase flame-style breakdown, counters, histograms and
  event summary (``--trace out.jsonl`` dumps the raw records,
  ``--trace-chrome out.json`` exports the span tree for
  ``chrome://tracing`` / Perfetto).  The experiment's own output is
  unchanged by recording; ``--report`` prints it too.
* ``worker`` — the executing half of a distributed campaign: a
  long-lived process that leases shards one at a time from a shared
  queue directory, runs them through its own supervised pool, and lands
  the artifacts in the shared store.  Start any number, on any hosts
  that see the queue/store paths; kill any of them freely — an expired
  lease re-leases to a surviving worker after the TTL.
* ``dash <name>`` — run an experiment under worker supervision with the
  live multi-line health dashboard: one lane per worker (heartbeat age,
  units/s, RSS, current unit) plus straggler/missed-beat flags.
* ``report`` — render a campaign's run ledger (written by
  ``--health``/``dash`` under ``--cache-dir``) into a self-contained
  markdown or HTML report: timeline, per-worker utilization, unit
  latency percentiles, failures and health suspicions.
* ``bench`` — run a named experiment suite at a chosen scale and write a
  schema-versioned ``BENCH_<gitsha>.json`` perf snapshot (wall time,
  sessions/sec, peak RSS, cache hits/misses, telemetry span totals);
  ``bench --compare A.json B.json`` diffs two snapshots and exits
  non-zero on wall-time regressions beyond ``--threshold``.
* ``list`` — show the available experiments (title and paper reference
  from the registry), applications and networks; ``--json`` emits the
  experiment registry as machine-readable JSON.

The ``experiment`` command doubles as the campaign observatory:
``--progress`` keeps a live status line on stderr, ``--health`` turns
on the engine health plane (heartbeats, straggler detection, run
ledger), and ``--flows`` / ``--metrics`` export per-session flow
records and metric time-series (format chosen by file suffix:
``.jsonl``, ``.csv``, ``.prom``).

It also scales: ``--sessions M --shards N`` re-dimensions a
sharding-aware campaign (``model_validation``) to M total sessions split
into N supervised shards with streaming reduction — memory stays
O(shards) up to 10^6 sessions, shard artifacts cache under
``--cache-dir`` so a re-run re-simulates zero shards, and
``--aggregate FILE`` exports the merged campaign statistics.

And it distributes: ``--distributed`` publishes the shards to a
lease-based work queue (``--queue-dir``, default ``<cache>/queue``)
instead of the local pool, spawns ``--workers N`` local drain-mode
workers (plus any ``repro worker`` processes started elsewhere), and
reduces artifacts as they land — with exports byte-identical to the
single-host ``--shards`` run.  ``--shard-size K`` makes many small
shards, the work-stealing granularity knob.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional


def _add_campaign_args(p: argparse.ArgumentParser) -> None:
    """The campaign flags ``experiment`` and ``dash`` share."""
    p.add_argument("--scale", default="small",
                   choices=["small", "medium", "full"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent sessions (default 1; "
             "output is byte-identical for any N)")
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="memoize completed sessions under DIR "
             "(default: $REPRO_CACHE_DIR if set, else no cache)")
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if $REPRO_CACHE_DIR is set")
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="split the campaign into N deterministic shards run through "
             "the supervised pool with streaming reduction (memory stays "
             "O(shards); shard artifacts cache under --cache-dir)")
    p.add_argument(
        "--sessions", type=int, default=None, metavar="M",
        help="re-dimension the campaign to M total sessions (sharding-"
             "aware experiments only, e.g. model_validation; implies "
             "--shards 1 unless given)")
    p.add_argument(
        "--shard-size", type=int, default=None, metavar="K",
        help="size-based sharding: split into ceil(M/K) shards of K "
             "sessions each instead of a fixed count — many small "
             "shards are the work-stealing knob for --distributed "
             "(exclusive with --shards)")
    p.add_argument(
        "--distributed", action="store_true",
        help="run the shard batch over the lease-based work queue "
             "instead of the local pool: publish shards, reduce "
             "artifacts as they land (requires --cache-dir; exports "
             "are byte-identical to a single-host --shards run)")
    p.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help="shard-queue directory shared by the coordinator and "
             "every worker (default: <cache-dir>/queue)")
    p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="local `repro worker --drain` processes the coordinator "
             "spawns and respawns (0 = external fleet only: start "
             "workers yourself, on this host or others)")
    p.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECS",
        help="shard lease time-to-live; a worker silent this long is "
             "presumed dead and its shard re-leases (default 30)")
    p.add_argument(
        "--resume", action="store_true",
        help="continue a previous campaign: reuse its journal (requires "
             "--cache-dir) and re-simulate only incomplete units; exports "
             "stay byte-identical to an uninterrupted run")
    p.add_argument(
        "--max-attempts", type=int, default=1, metavar="N",
        help="run each unit up to N times before quarantining it "
             "(default 1 = fail fast; >1 enables worker supervision)")
    p.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECS",
        help="per-unit wall-clock deadline; a worker exceeding it is "
             "killed and the unit retried (enables worker supervision)")
    p.add_argument(
        "--degrade", action="store_true",
        help="complete the campaign even when units are quarantined, "
             "reporting them instead of aborting (exit code 3)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Network Characteristics of Video Streaming "
            "Traffic' (Rao et al., CoNEXT 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser(
        "analyze", help="analyze a pcap capture of a streaming session")
    p_analyze.add_argument("pcap", help="path to a libpcap file")
    p_analyze.add_argument(
        "--client", default=None,
        help="client IP (default: the simulator's 10.0.0.1)")
    p_analyze.add_argument(
        "--server", default=None,
        help="server IP (default: the simulator's 192.0.2.1)")
    p_analyze.add_argument(
        "--duration", type=float, default=None,
        help="video duration in seconds (needed to estimate webM rates)")
    p_analyze.add_argument(
        "--gap-threshold", type=float, default=None,
        help="ON/OFF idle-gap threshold in seconds (default 0.15)")

    p_stream = sub.add_parser(
        "stream", help="simulate one streaming session")
    p_stream.add_argument(
        "--network", default="Research",
        help="Research | Residence | Academic | Home")
    p_stream.add_argument(
        "--service", default="youtube", choices=["youtube", "netflix"])
    p_stream.add_argument(
        "--application", default="firefox",
        choices=["ie", "firefox", "chrome", "ipad", "android"])
    p_stream.add_argument(
        "--container", default=None,
        choices=["flash", "flash-hd", "html5", "silverlight"],
        help="default: derived from the service/video")
    p_stream.add_argument("--rate-mbps", type=float, default=1.0,
                          help="video encoding rate")
    p_stream.add_argument("--duration", type=float, default=300.0,
                          help="video duration in seconds")
    p_stream.add_argument("--capture", type=float, default=120.0,
                          help="capture length in seconds")
    p_stream.add_argument("--watch-fraction", type=float, default=1.0,
                          help="fraction watched before the viewer quits")
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument("--pcap", default=None,
                          help="write the capture to this pcap file")

    p_exp = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures")
    p_exp.add_argument("name", help="table1, fig2..fig12, table2, "
                                    "model_validation, or 'all'")
    _add_campaign_args(p_exp)
    p_exp.add_argument(
        "--aggregate", default=None, metavar="FILE",
        help="export the campaign's merged aggregate statistics (moments "
             "and percentiles per metric); format from the suffix "
             "(.jsonl, .csv, .prom/.txt)")
    p_exp.add_argument(
        "--progress", action="store_true",
        help="live single-line progress on stderr (done/total, rate, ETA, "
             "cache hits; default off)")
    p_exp.add_argument(
        "--health", action="store_true",
        help="watch the supervised workers: heartbeats, straggler "
             "detection and (with a cache dir) a run ledger for "
             "`repro report` — report-only, results are unchanged")
    p_exp.add_argument(
        "--flows", default=None, metavar="FILE",
        help="export per-session flow records; format from the suffix "
             "(.jsonl, .csv, .prom/.txt)")
    p_exp.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="export per-session metric time-series; format from the "
             "suffix (.jsonl, .csv, .prom/.txt)")
    p_exp.add_argument(
        "--failures", default=None, metavar="FILE",
        help="export quarantined-unit failures (keys, errors, tracebacks) "
             "in the format implied by the suffix")

    p_worker = sub.add_parser(
        "worker",
        help="drain a distributed shard queue (the executing half of "
             "`repro experiment --distributed`)")
    p_worker.add_argument(
        "--queue-dir", required=True, metavar="DIR",
        help="shard-queue directory (or redis:// URL) shared with the "
             "coordinator")
    p_worker.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared artifact-store root — the coordinator's "
             "--cache-dir (default: $REPRO_CACHE_DIR)")
    p_worker.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="identity in leases, done markers and run ledgers "
             "(default: <hostname>-<pid>)")
    p_worker.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECS",
        help="lease time-to-live; must match the coordinator's "
             "(default 30)")
    p_worker.add_argument(
        "--poll", type=float, default=0.5, metavar="SECS",
        help="idle sleep between claim attempts (default 0.5)")
    p_worker.add_argument(
        "--drain", action="store_true",
        help="exit once every published shard is done or failed "
             "(default: keep polling for future work)")
    p_worker.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="stop after claiming N shards (canary/test workers)")
    p_worker.add_argument(
        "--max-attempts", type=int, default=1, metavar="N",
        help="supervised retries per shard before reporting it failed "
             "(default 1 = fail fast)")
    p_worker.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECS",
        help="per-shard wall-clock deadline inside this worker's "
             "supervised pool")
    p_worker.add_argument(
        "--verbose", action="store_true",
        help="log every claim/completion/steal to stderr")

    p_dash = sub.add_parser(
        "dash",
        help="run an experiment with the live worker-health dashboard")
    p_dash.add_argument("name", help="an experiment name from `repro list`, "
                                     "or 'all'")
    _add_campaign_args(p_dash)
    p_dash.add_argument(
        "--beat-interval", type=float, default=None, metavar="SECS",
        help="worker heartbeat period (default 1s); missed-beat "
             "suspicion after two silent intervals")

    p_report = sub.add_parser(
        "report",
        help="render a campaign run ledger into markdown or HTML")
    p_report.add_argument(
        "name", nargs="?", default=None,
        help="experiment whose ledger to load (with --cache-dir); "
             "alternatively pass --ledger FILE")
    p_report.add_argument("--scale", default="small",
                          choices=["small", "medium", "full"])
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache root the campaign ran under "
             "(default: $REPRO_CACHE_DIR if set)")
    p_report.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="load this ledger file directly instead of resolving "
             "name/scale/seed under the cache dir")
    p_report.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report here (.html/.htm renders HTML, anything "
             "else markdown); default: print markdown to stdout")
    p_report.add_argument(
        "--bench", nargs="?", const=".", default=None, metavar="DIR",
        help="append the BENCH_*.json perf trajectory found under DIR "
             "(default: the cwd)")

    p_prof = sub.add_parser(
        "profile",
        help="run one experiment with telemetry on and print the "
             "per-phase/counter breakdown")
    p_prof.add_argument("name", help="an experiment name from `repro list`")
    p_prof.add_argument("--scale", default="small",
                        choices=["small", "medium", "full"])
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (counters/events are identical for any N; "
             "span totals sum CPU-seconds across workers)")
    p_prof.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="reuse/populate the result cache while profiling")
    p_prof.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if $REPRO_CACHE_DIR is set")
    p_prof.add_argument(
        "--trace", default=None, metavar="FILE.jsonl",
        help="also dump every span/event/counter as JSON lines")
    p_prof.add_argument(
        "--trace-chrome", default=None, metavar="FILE.json",
        help="dump the span tree as a Chrome trace-viewer JSON array "
             "(load in chrome://tracing or Perfetto)")
    p_prof.add_argument(
        "--report", action="store_true",
        help="print the experiment's normal report before the profile "
             "(byte-identical to a run without telemetry)")
    p_prof.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="also print the N hottest span paths ranked by cumulative "
             "time (a flat hot-span table, not the indented tree)")

    p_bench = sub.add_parser(
        "bench",
        help="run a perf snapshot suite and write BENCH_<gitsha>.json, "
             "or --compare two snapshots")
    p_bench.add_argument(
        "suite", nargs="*", metavar="NAME",
        help="experiment names to benchmark (default: the quick suite)")
    p_bench.add_argument("--scale", default="small",
                         choices=["small", "medium", "full"])
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes while benchmarking (recorded in the file)")
    p_bench.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="run against this result cache (hit/miss counts are recorded)")
    p_bench.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if $REPRO_CACHE_DIR is set")
    p_bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (default: BENCH_<gitsha>.json in the cwd)")
    p_bench.add_argument(
        "--compare", nargs=2, metavar=("BASE", "NEW"), default=None,
        help="diff two bench files instead of running; exits 1 on "
             "regressions beyond --threshold")
    p_bench.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRAC",
        help="relative wall-time slowdown tolerated by --compare "
             "(default 0.25 = +25%%)")
    p_bench.add_argument(
        "--report-only", action="store_true",
        help="with --compare: print the diff but always exit 0")
    p_bench.add_argument(
        "--history", nargs="?", const=".", default=None, metavar="DIR",
        help="print the per-benchmark trajectory across every committed "
             "BENCH_*.json under DIR (default: the cwd) instead of running")
    p_bench.add_argument(
        "--dist", action="store_true",
        help="also record a dist_campaign entry: the same sharded "
             "model_validation campaign through the distributed fabric "
             "at workers=1 and workers=4, over throwaway queues/stores")
    p_bench.add_argument(
        "--dist-sessions", type=int, default=6000, metavar="M",
        help="campaign size for the --dist entry (default 6000)")

    p_list = sub.add_parser(
        "list", help="show experiments, applications, networks, campaigns")
    p_list.add_argument(
        "--json", action="store_true",
        help="emit the experiment registry as JSON on stdout")
    p_list.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="also summarize campaign journals under DIR "
             "(default: $REPRO_CACHE_DIR if set)")
    return parser


def _cmd_analyze(args) -> int:
    from .analysis import analyze_records, bytes_human, median
    from .pcap import records_from_pcap
    from .simnet import CLIENT_IP, SERVER_IP

    records = records_from_pcap(args.pcap)
    if not records:
        print(f"{args.pcap}: no packets", file=sys.stderr)
        return 1
    client = args.client or CLIENT_IP
    server = args.server or SERVER_IP
    kwargs = {}
    if args.gap_threshold is not None:
        kwargs["gap_threshold"] = args.gap_threshold
    analysis = analyze_records(records, client, server,
                               duration=args.duration, **kwargs)
    trace = analysis.trace
    print(f"capture          : {args.pcap}")
    print(f"packets          : {len(records)}")
    print(f"flows            : {trace.flow_count}")
    print(f"downloaded       : {bytes_human(trace.total_bytes)}")
    print(f"retransmissions  : {analysis.retransmission_rate:.2%}")
    print(f"strategy         : {analysis.strategy}")
    print(f"buffering amount : {bytes_human(analysis.buffering_bytes)}")
    blocks = analysis.block_sizes
    if blocks:
        print(f"steady blocks    : {len(blocks)}, median "
              f"{bytes_human(median(blocks))}")
    if analysis.encoding_rate_bps:
        print(f"encoding rate    : {analysis.encoding_rate_bps / 1e6:.2f} "
              f"Mbps ({analysis.rate_estimate.method})")
        ratio = analysis.accumulation_ratio
        if ratio is not None:
            print(f"accumulation     : {ratio:.2f}")
    return 0


_APPLICATIONS = {
    "ie": "INTERNET_EXPLORER",
    "firefox": "FIREFOX",
    "chrome": "CHROME",
    "ipad": "IOS",
    "android": "ANDROID",
}

_CONTAINERS = {
    "flash": "FLASH",
    "flash-hd": "FLASH_HD",
    "html5": "HTML5",
    "silverlight": "SILVERLIGHT",
}


def _cmd_stream(args) -> int:
    from .analysis import analyze_session, bytes_human, median
    from .simnet import get_profile
    from .streaming import (
        Application,
        Container,
        Service,
        SessionConfig,
        run_session,
    )
    from .workloads import NETFLIX_LADDER_BPS, Video

    service = Service.NETFLIX if args.service == "netflix" else Service.YOUTUBE
    application = Application[_APPLICATIONS[args.application]]
    container = (Container[_CONTAINERS[args.container]]
                 if args.container else None)
    if service is Service.NETFLIX:
        ladder = ("480p-lo", "480p", "720p-lo", "720p", "1080p")
        video = Video(
            video_id="cli", duration=args.duration,
            encoding_rate_bps=NETFLIX_LADDER_BPS[-1], resolution="1080p",
            container="silverlight",
            variants=tuple(zip(ladder, NETFLIX_LADDER_BPS)),
        )
    else:
        wants_html5 = container is Container.HTML5 or (
            container is None and args.application in ("ipad", "android"))
        video = Video(
            video_id="cli", duration=args.duration,
            encoding_rate_bps=args.rate_mbps * 1e6, resolution="360p",
            container="webm" if wants_html5 else "flv",
        )
    config = SessionConfig(
        profile=get_profile(args.network),
        service=service,
        application=application,
        container=container,
        capture_duration=args.capture,
        seed=args.seed,
        watch_fraction=args.watch_fraction,
    )
    result = run_session(video, config)
    analysis = analyze_session(result, use_true_rate=True)
    print(f"network          : {config.profile.name}")
    print(f"client           : {service} / {application}")
    print(f"video            : {video}")
    print(f"downloaded       : {bytes_human(result.downloaded)} over "
          f"{result.connections_opened} connection(s)")
    print(f"strategy         : {analysis.strategy}")
    print(f"buffering amount : {bytes_human(analysis.buffering_bytes)}")
    blocks = analysis.block_sizes
    if blocks:
        print(f"steady blocks    : {len(blocks)}, median "
              f"{bytes_human(median(blocks))}")
    ratio = analysis.accumulation_ratio
    if ratio is not None:
        print(f"accumulation     : {ratio:.2f}")
    if result.interrupted:
        print(f"interrupted at   : {result.playback_position_s:.0f} s "
              f"watched; {bytes_human(result.unused_bytes)} wasted")
    if args.pcap:
        n = result.capture.write_pcap(args.pcap)
        print(f"pcap written     : {args.pcap} ({n} packets)")
    return 0


def _resolve_cache(args):
    """The result cache selected by ``--cache-dir``/``--no-cache``/env."""
    from .runner import ResultCache

    if args.no_cache:
        return None
    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not root:
        return None
    return ResultCache(os.path.expanduser(root))


def _supervision_policy(args):
    """The supervision policy the experiment flags ask for, or ``None``."""
    from .runner import RetryBudget, SupervisionPolicy

    if args.max_attempts <= 1 and args.unit_timeout is None \
            and not args.degrade:
        return None
    return SupervisionPolicy(
        unit_timeout=args.unit_timeout,
        retry=RetryBudget(max_attempts=max(1, args.max_attempts)),
        degrade=args.degrade,
    )


def _cmd_worker(args) -> int:
    """``repro worker``: drain a shard queue into the shared store."""
    import signal

    from .runner import WorkerOptions, run_worker

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        print("repro worker needs the shared store: pass --cache-dir or "
              "set $REPRO_CACHE_DIR (same root as the coordinator)",
              file=sys.stderr)
        return 2
    # the coordinator stops local workers with SIGTERM; route it through
    # the normal teardown so the held lease is abandoned immediately
    # instead of waiting out the TTL on another worker's clock
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(143))
    options = WorkerOptions(
        queue=args.queue_dir,
        cache_dir=os.path.expanduser(cache_dir),
        worker_id=args.worker_id,
        ttl=args.lease_ttl,
        poll=args.poll,
        drain=args.drain,
        max_shards=args.max_shards,
        max_attempts=args.max_attempts,
        unit_timeout=args.unit_timeout,
        verbose=args.verbose,
    )
    try:
        stats = run_worker(options)
    except KeyboardInterrupt:
        print("worker interrupted; lease abandoned", file=sys.stderr)
        return 130
    except SystemExit as exc:
        # the coordinator's routine drain-phase SIGTERM: exit quietly
        if args.verbose:
            print("worker terminated; lease abandoned", file=sys.stderr)
        return int(exc.code or 0)
    print(stats.summary())
    return 0


def _cmd_experiment(args, dashboard: bool = False) -> int:
    from .analysis import format_table
    from .experiments import REGISTRY, SCALES
    from .runner import (
        NULL_OBSERVER,
        CampaignAborted,
        CampaignJournal,
        CompositeRunObserver,
        FailureReport,
        RunStats,
        engine_options,
    )

    scale = SCALES[args.scale]
    names = list(REGISTRY) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"know {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    cache = _resolve_cache(args)
    if args.resume and cache is None:
        print("--resume needs a result cache: pass --cache-dir or set "
              "$REPRO_CACHE_DIR", file=sys.stderr)
        return 2
    supervision = _supervision_policy(args)
    health_on = dashboard or getattr(args, "health", False)
    if health_on and supervision is None:
        # heartbeats only exist under worker supervision; health without
        # an explicit policy gets the default one (1 attempt, no timeout
        # — behavior matches unsupervised runs, workers just beat)
        from .runner import SupervisionPolicy

        supervision = SupervisionPolicy()
    sharding = None
    if (args.shards is not None or args.sessions is not None
            or args.shard_size is not None or args.distributed):
        from .runner import Sharding

        if args.shards is not None and args.shard_size is not None:
            print("--shards and --shard-size are exclusive: fix the "
                  "count or the size, not both", file=sys.stderr)
            return 2
        sharding = Sharding(shards=args.shards or 1, sessions=args.sessions,
                            shard_size=args.shard_size)
    dist = None
    if args.distributed:
        if cache is None:
            print("--distributed needs a shared artifact store: pass "
                  "--cache-dir or set $REPRO_CACHE_DIR (workers and the "
                  "coordinator must see the same root)", file=sys.stderr)
            return 2
        from .runner import DistPolicy

        dist = DistPolicy(queue=args.queue_dir or str(cache.root / "queue"),
                          workers=args.workers, ttl=args.lease_ttl,
                          max_attempts=args.max_attempts,
                          unit_timeout=args.unit_timeout)
    # the observatory: progress + collection ride the engine observer
    # hook; with neither flag the observer stays NULL_OBSERVER and the
    # engine takes its zero-cost path
    observers = []
    progress = None
    collector = None
    if dashboard:
        from .obs import DashboardReporter

        progress = DashboardReporter(label="units")
        observers.append(progress)
    elif args.progress:
        from .obs import ProgressReporter

        progress = ProgressReporter()
        observers.append(progress)
    if args.flows or args.metrics or args.failures or args.aggregate:
        from .obs import CampaignCollector

        # retaining mode costs nothing on a sharded campaign: sessions
        # stay inside the shard workers, the parent only sees (and
        # merges) shard snapshots — which is all --aggregate needs
        collector = CampaignCollector()
        observers.append(collector)
    elif health_on and sharding is not None:
        from .obs import CampaignCollector

        # no exports asked for, but the ledger still wants one `merged`
        # event per shard; streaming mode folds-and-drops, and on a
        # sharded campaign the parent only ever sees shard snapshots
        collector = CampaignCollector(streaming=True)
        observers.append(collector)
    observer = (CompositeRunObserver(*observers) if observers
                else NULL_OBSERVER)
    summary = []
    reports = []
    aborted = False
    try:
        with engine_options(observer=observer, supervision=supervision):
            for name in names:
                spec = REGISTRY[name]
                stats = RunStats()
                failures = FailureReport()
                journal = None
                if cache is not None:
                    # the write-ahead ledger: fresh unless resuming, so a
                    # stale journal never misreports a new campaign
                    journal = CampaignJournal.for_campaign(
                        cache.root, name, scale.name, args.seed,
                        fresh=not args.resume)
                    if args.resume:
                        counts = journal.counts()
                        print(f"resume {name}: journal has "
                              f"{counts['done']} done, "
                              f"{counts['failed']} failed, "
                              f"{counts['quarantined']} quarantined",
                              file=sys.stderr)
                monitor = None
                ledger = None
                if health_on:
                    from .obs import HealthMonitor, HealthPolicy, RunLedger

                    if cache is not None:
                        ledger = RunLedger.for_campaign(
                            cache.root, name, scale.name, args.seed,
                            fresh=not args.resume)
                        ledger.event("campaign-started", experiment=name,
                                     jobs=args.jobs, shards=args.shards,
                                     sessions=args.sessions,
                                     shard_size=args.shard_size,
                                     resume=True if args.resume else None,
                                     distributed=True if dist else None,
                                     workers=(args.workers
                                              if dist is not None else None))
                    beat = getattr(args, "beat_interval", None)
                    policy = (HealthPolicy(interval=beat)
                              if beat is not None else None)
                    monitor = HealthMonitor(policy, ledger=ledger)
                if collector is not None:
                    collector.ledger = ledger
                started = time.perf_counter()
                try:
                    result = spec.run(scale, seed=args.seed, jobs=args.jobs,
                                      cache=cache, stats=stats,
                                      journal=journal, failures=failures,
                                      sharding=sharding, health=monitor,
                                      dist=dist)
                except CampaignAborted as exc:
                    aborted = True
                    report = f"{name}: campaign aborted — {exc.report.format()}"
                    if progress is not None:
                        reports.append(report)
                    else:
                        print(report)
                        print()
                    elapsed = time.perf_counter() - started
                    summary.append((spec, elapsed, stats))
                    continue
                except Exception:
                    # --degrade hands FailedUnit placeholders to the
                    # experiment; one whose analysis needs every unit will
                    # crash on them — that is a degraded experiment, not a
                    # bug, but only when units actually failed
                    if (supervision is None or not supervision.degrade
                            or failures.ok):
                        raise
                    report = (f"{name}: degraded — analysis needs the "
                              f"missing units\n\n{failures.format()}")
                    if progress is not None:
                        reports.append(report)
                    else:
                        print(report)
                        print()
                    elapsed = time.perf_counter() - started
                    summary.append((spec, elapsed, stats))
                    continue
                finally:
                    if journal is not None:
                        journal.close()
                    if ledger is not None:
                        ledger.event(
                            "campaign-finished", experiment=name,
                            elapsed_s=round(
                                time.perf_counter() - started, 3))
                        ledger.close()
                elapsed = time.perf_counter() - started
                report = result.report()
                if not failures.ok:
                    report += "\n\n" + failures.format()
                if progress is not None:
                    # hold reports until the stderr status line is released
                    reports.append(report)
                else:
                    print(report)
                    print()
                summary.append((spec, elapsed, stats))
    finally:
        # restore the terminal line even on Ctrl-C / CampaignAborted
        if progress is not None:
            progress.close()
    for report in reports:
        print(report)
        print()
    if collector is not None:
        if args.flows:
            n = collector.write_flows(args.flows)
            print(f"flows written  : {args.flows} ({n} records)")
        if args.metrics:
            n = collector.write_metrics(args.metrics)
            print(f"metrics written: {args.metrics} ({n} samples)")
        if args.failures:
            n = collector.write_failures(args.failures)
            print(f"failures written: {args.failures} ({n} records)")
        if args.aggregate:
            n = collector.write_aggregate(args.aggregate)
            print(f"aggregate written: {args.aggregate} ({n} records)")
    # sharded campaigns always show the engine line — shard cache hits
    # are the observable proof a re-run re-simulated nothing
    if sharding is not None or args.resume \
            or any(stats.retries or stats.failed
                   for _, _, stats in summary):
        for spec, _, stats in summary:
            print(f"engine {spec.name}: {stats.sessions} units, "
                  f"hits {stats.cache_hits}, re-simulated "
                  f"{stats.cache_misses}, retries {stats.retries}, "
                  f"failed {stats.failed}")
    if len(summary) > 1:
        rows = [
            (spec.name, spec.paper, f"{elapsed:.1f}", stats.sessions,
             stats.cache_hits, stats.cache_misses, stats.failed)
            for spec, elapsed, stats in summary
        ]
        print(format_table(
            ["Experiment", "Paper", "Wall(s)", "Units", "Hits", "Misses",
             "Failed"],
            rows,
            title=f"Campaign summary — scale={scale.name} jobs={args.jobs} "
                  f"cache={'on' if cache else 'off'}",
        ))
        total_s = sum(elapsed for _, elapsed, _ in summary)
        units = sum(stats.sessions for _, _, stats in summary)
        hits = sum(stats.cache_hits for _, _, stats in summary)
        misses = sum(stats.cache_misses for _, _, stats in summary)
        failed = sum(stats.failed for _, _, stats in summary)
        print(f"total: {units} units (hits {hits}, misses {misses}, "
              f"failed {failed}) in {total_s:.1f}s")
    if aborted:
        return 1
    if any(stats.failed for _, _, stats in summary):
        return 3  # completed, but degraded: partial results
    return 0


def _cmd_dash(args) -> int:
    """``repro dash``: the experiment runner with the live health board.

    Exactly ``repro experiment`` under the hood — same engine, caching,
    sharding and supervision flags — with the multi-line
    :class:`~repro.obs.DashboardReporter` and the health plane always
    on (a worker-lane dashboard without heartbeats would be blank).
    """
    # the observability exports stay on the experiment command; the
    # dashboard run only watches
    args.progress = False
    args.health = True
    args.flows = None
    args.metrics = None
    args.failures = None
    args.aggregate = None
    return _cmd_experiment(args, dashboard=True)


def _cmd_report(args) -> int:
    from .obs import ledger_path, load_ledger, render_report, write_report

    if args.ledger is not None:
        path = args.ledger
    else:
        root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
        if args.name is None or not root:
            print("repro report needs an experiment name plus a cache dir "
                  "(--cache-dir or $REPRO_CACHE_DIR), or --ledger FILE",
                  file=sys.stderr)
            return 2
        path = ledger_path(os.path.expanduser(root), args.name,
                           args.scale, args.seed)
    try:
        view = load_ledger(path)
    except (OSError, ValueError) as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    if args.out:
        write_report(view, args.out, bench_dir=args.bench)
        print(f"report written : {args.out}")
    else:
        print(render_report(view, bench_dir=args.bench), end="")
    return 0


def _cmd_profile(args) -> int:
    from .experiments import REGISTRY, SCALES
    from .runner import RunStats
    from .telemetry import recording, summarize, write_jsonl

    if args.name not in REGISTRY:
        print(f"unknown experiment {args.name!r}; know {', '.join(REGISTRY)}",
              file=sys.stderr)
        return 2
    spec = REGISTRY[args.name]
    scale = SCALES[args.scale]
    cache = _resolve_cache(args)
    stats = RunStats()
    started = time.perf_counter()
    with recording() as rec:
        result = spec.run(scale, seed=args.seed, jobs=args.jobs,
                          cache=cache, stats=stats)
    elapsed = time.perf_counter() - started
    if args.report:
        print(result.report())
        print()
    title = (f"{spec.name} ({spec.paper}) — scale={scale.name} "
             f"seed={args.seed} jobs={args.jobs} "
             f"cache={'on' if cache else 'off'} wall={elapsed:.2f}s")
    print(summarize(rec, title=title))
    if args.top:
        from .telemetry import format_hot_spans

        print()
        print(format_hot_spans(rec, top=args.top))
    if args.trace:
        n = write_jsonl(rec, args.trace)
        print(f"\ntrace written      : {args.trace} ({n} records)")
    if args.trace_chrome:
        from .telemetry import write_chrome_trace

        n = write_chrome_trace(rec, args.trace_chrome)
        print(f"\nchrome trace       : {args.trace_chrome} ({n} events; "
              f"open in chrome://tracing or Perfetto)")
    return 0


def _cmd_bench(args) -> int:
    from .obs import bench as obs_bench

    if args.history is not None:
        payloads = obs_bench.load_history(args.history)
        if not payloads:
            print(f"bench history: no BENCH_*.json under {args.history}",
                  file=sys.stderr)
            return 2
        print(obs_bench.format_history(payloads))
        return 0

    if args.compare:
        base_path, new_path = args.compare
        try:
            baseline = obs_bench.load_bench(base_path)
            candidate = obs_bench.load_bench(new_path)
        except (OSError, ValueError) as exc:
            print(f"bench compare: {exc}", file=sys.stderr)
            return 2
        regressions = obs_bench.compare(baseline, candidate,
                                        threshold=args.threshold)
        print(obs_bench.format_comparison(baseline, candidate,
                                          regressions, args.threshold))
        if regressions and not args.report_only:
            return 1
        return 0

    from .experiments import REGISTRY

    names = list(args.suite) or list(obs_bench.QUICK_SUITE)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"know {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    cache = _resolve_cache(args)
    writer = obs_bench.BenchWriter("repro bench", args.scale,
                                   jobs=args.jobs, seed=args.seed)
    entries, _ = obs_bench.run_suite(names, args.scale, seed=args.seed,
                                     jobs=args.jobs, cache=cache)
    for name, entry in entries.items():
        writer.add(name, entry.pop("wall_s"), **entry)
    if args.dist:
        entry = obs_bench.run_dist_bench(args.scale, seed=args.seed,
                                         sessions=args.dist_sessions)
        writer.add("dist_campaign", entry.pop("wall_s"), **entry)
        print(f"dist_campaign  : workers "
              f"{'/'.join(str(w) for w in entry['workers'])}, "
              f"speedup {entry['speedup']:.2f}x")
    if cache is not None:
        stats = cache.stats()
        print(f"cache          : {stats['entries']} entries, "
              f"{stats['bytes']} bytes")
    path = writer.write(args.out)
    for name, entry in sorted(writer.entries.items()):
        print(f"{name:<20} {entry['wall_s']:8.3f}s  "
              f"{entry.get('units_per_sec', 0):8.1f} units/s  "
              f"hits {entry.get('cache_hits', 0)}")
    print(f"bench written  : {path}")
    return 0


def _journal_summaries(args):
    """Campaign-journal summaries under the requested cache dir, if any."""
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        return None
    from .runner import list_journals

    return list_journals(cache_dir)


def _cmd_list(args) -> int:
    from .analysis import format_table
    from .experiments import REGISTRY
    from .simnet import PROFILES

    journals = _journal_summaries(args)
    if args.json:
        import json

        experiments = [
            {"name": spec.name, "title": spec.title, "paper": spec.paper,
             "tags": list(spec.tags)}
            for spec in REGISTRY.values()
        ]
        # plain registry list unless a cache dir brings journals into
        # scope — the historical shape stays stable for existing callers
        payload = (experiments if journals is None
                   else {"experiments": experiments, "campaigns": journals})
        print(json.dumps(payload, indent=2))
        return 0

    rows = [
        (spec.name, spec.paper, spec.title, ", ".join(spec.tags))
        for spec in REGISTRY.values()
    ]
    print(format_table(["Experiment", "Paper", "Title", "Tags"], rows,
                       title="Experiments"))
    print()
    print("networks    :", ", ".join(PROFILES))
    print("applications:", ", ".join(_APPLICATIONS))
    print("containers  :", ", ".join(_CONTAINERS))
    if journals is not None:
        print()
        if journals:
            rows = [
                (j["experiment"], j["scale"], j["seed"], j["done"],
                 j["failed"], j["quarantined"])
                for j in journals
            ]
            print(format_table(
                ["Campaign", "Scale", "Seed", "Done", "Failed",
                 "Quarantined"],
                rows, title="Campaign journals",
            ))
        else:
            print("campaign journals: none")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "dash":
        return _cmd_dash(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "list":
        return _cmd_list(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
