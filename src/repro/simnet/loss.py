"""Packet-loss models for simulated links.

The paper's measurement artifacts (merged blocks, under-estimated buffering
amounts in the Residence and Academic networks, Section 5.1.1) are caused by
packet loss, so links support pluggable loss processes:

* :class:`NoLoss` — lossless link.
* :class:`BernoulliLoss` — i.i.d. loss with fixed probability.
* :class:`GilbertElliottLoss` — two-state bursty loss (good/bad channel).
* :class:`DeterministicLoss` — drops an explicit set of packet indices,
  used by tests to provoke exact retransmission scenarios.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Set

from .errors import ConfigurationError


class LossModel:
    """Base class: decides, per packet, whether the link drops it."""

    def should_drop(self) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore initial state (used when a link is reused across runs)."""


class NoLoss(LossModel):
    """Never drops."""

    def should_drop(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Drop each packet independently with probability ``rate``."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"loss rate must be in [0, 1), got {rate!r}")
        self.rate = rate
        self._rng = rng

    def should_drop(self) -> bool:
        return self._rng.random() < self.rate

    def __repr__(self) -> str:
        return f"BernoulliLoss(rate={self.rate!r})"


class GilbertElliottLoss(LossModel):
    """Two-state Markov loss model.

    In the *good* state packets are dropped with probability ``loss_good``;
    in the *bad* state with probability ``loss_bad``.  Transitions
    good->bad and bad->good happen per packet with probabilities ``p_gb``
    and ``p_bg``.
    """

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        rng: random.Random,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
    ) -> None:
        for name, value in (
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = rng
        self._bad = False

    def should_drop(self) -> bool:
        if self._bad:
            if self._rng.random() < self.p_bg:
                self._bad = False
        else:
            if self._rng.random() < self.p_gb:
                self._bad = True
        loss = self.loss_bad if self._bad else self.loss_good
        return self._rng.random() < loss

    def reset(self) -> None:
        self._bad = False

    @property
    def steady_state_loss(self) -> float:
        """Long-run average loss probability of the chain."""
        denom = self.p_gb + self.p_bg
        if denom == 0.0:
            return self.loss_good
        p_bad = self.p_gb / denom
        return p_bad * self.loss_bad + (1.0 - p_bad) * self.loss_good

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p_gb={self.p_gb!r}, p_bg={self.p_bg!r}, "
            f"loss_good={self.loss_good!r}, loss_bad={self.loss_bad!r})"
        )


class DeterministicLoss(LossModel):
    """Drop exactly the packets whose 0-based index is in ``drop_indices``.

    Useful in tests: ``DeterministicLoss({3})`` drops the fourth packet the
    link ever carries, regardless of timing.
    """

    def __init__(self, drop_indices: Iterable[int]) -> None:
        self._drops: Set[int] = set(int(i) for i in drop_indices)
        self._index = 0

    def should_drop(self) -> bool:
        drop = self._index in self._drops
        self._index += 1
        return drop

    def reset(self) -> None:
        self._index = 0

    def __repr__(self) -> str:
        return f"DeterministicLoss(drop_indices={sorted(self._drops)!r})"


class PredicateLoss(LossModel):
    """Drop packet ``i`` when ``predicate(i)`` is true (0-based index)."""

    def __init__(self, predicate: Callable[[int], bool]) -> None:
        self._predicate = predicate
        self._index = 0

    def should_drop(self) -> bool:
        drop = bool(self._predicate(self._index))
        self._index += 1
        return drop

    def reset(self) -> None:
        self._index = 0
