"""Fault injection: scripted and stochastic failures against a running network.

The paper's measurement artifacts are *failure phenomena* — packet loss
merges ON-OFF blocks and corrupts buffering-amount estimates (Section
5.1.1), and user interruptions truncate sessions and waste downloaded
bytes (Section 6.2).  The loss models in :mod:`repro.simnet.loss` cover
per-packet drops; this module covers the coarser failures a production
measurement fleet meets:

* **link outages / flaps** — a :class:`~repro.simnet.link.Link` goes
  *down* for a window and blackholes every packet (the sender sees pure
  silence, exactly what TCP sees when an access link dies);
* **temporary bandwidth degradation** — the bottleneck rate drops by a
  factor for a window (cross-traffic, Wi-Fi rate adaptation);
* **server-side failures** — the server answers 503 for a window, or
  aborts (RST) every open connection at an instant (process restart,
  load-balancer failover).

Faults are described declaratively (plain frozen dataclasses), collected
in a :class:`FaultSchedule`, and armed against a concrete topology with
:meth:`FaultSchedule.apply`.  Stochastic flaps draw from a named stream of
the simulation's seeded RNG registry, so every fault pattern is exactly
reproducible for a given root seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

from .errors import ConfigurationError
from .link import Link
from .path import Path
from .scheduler import EventScheduler

#: Fault directions, relative to :func:`~repro.simnet.profiles.
#: build_client_server` topologies: ``"down"`` is the server -> client
#: (forward) link carrying video data, ``"up"`` the client -> server
#: (reverse) link carrying requests and ACKs.
DIRECTIONS = ("down", "up", "both")


@dataclass(frozen=True)
class LinkOutage:
    """The link is down (blackholes packets) during ``[start, start+duration)``."""

    start: float
    duration: float
    direction: str = "both"


@dataclass(frozen=True)
class BandwidthDegradation:
    """The link rate is multiplied by ``factor`` during the window."""

    start: float
    duration: float
    factor: float
    direction: str = "down"


@dataclass(frozen=True)
class ServerOutage:
    """The server answers 503 Service Unavailable during the window."""

    start: float
    duration: float


@dataclass(frozen=True)
class ConnectionReset:
    """The server aborts (RST) every open connection at time ``at``."""

    at: float


@dataclass(frozen=True)
class RandomFlaps:
    """Stochastic link flaps: outages with exponential inter-arrival times.

    Gaps between outages are Exponential(``mean_interval_s``); each outage
    lasts Uniform(``duration_range``).  Flaps are generated from ``start``
    until ``until`` at :meth:`FaultSchedule.apply` time, from the seeded
    RNG the caller supplies — deterministic per root seed.
    """

    mean_interval_s: float
    duration_range: Tuple[float, float]
    start: float = 0.0
    until: float = 300.0
    direction: str = "both"


FaultEvent = Union[LinkOutage, BandwidthDegradation, ServerOutage,
                   ConnectionReset, RandomFlaps]


@dataclass(frozen=True)
class FaultLogEntry:
    """One armed fault transition (for tests and reports)."""

    time: float
    kind: str          # "outage-start", "outage-end", "degrade-start", ...
    detail: str = ""


@dataclass
class FaultLog:
    """Chronological record of the fault transitions one apply() armed."""

    entries: List[FaultLogEntry] = field(default_factory=list)

    def add(self, time: float, kind: str, detail: str = "") -> None:
        self.entries.append(FaultLogEntry(time, kind, detail))

    def times(self, kind: str) -> List[float]:
        return [e.time for e in self.entries if e.kind == kind]

    def __len__(self) -> int:
        return len(self.entries)


class FaultSchedule:
    """A declarative list of faults, armed against one topology at a time.

    The schedule itself is immutable state plus builder methods; calling
    :meth:`apply` schedules the fault transitions on the network's event
    scheduler and returns a :class:`FaultLog`.  One schedule may be applied
    to many sessions (``run_sessions`` reuses the config's schedule).
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events: List[FaultEvent] = list(events)
        for event in self.events:
            self._validate(event)

    # -- builders (chainable) ------------------------------------------------

    def outage(self, start: float, duration: float,
               direction: str = "both") -> "FaultSchedule":
        self._add(LinkOutage(start, duration, direction))
        return self

    def degrade(self, start: float, duration: float, factor: float,
                direction: str = "down") -> "FaultSchedule":
        self._add(BandwidthDegradation(start, duration, factor, direction))
        return self

    def server_outage(self, start: float, duration: float) -> "FaultSchedule":
        self._add(ServerOutage(start, duration))
        return self

    def connection_reset(self, at: float) -> "FaultSchedule":
        self._add(ConnectionReset(at))
        return self

    def flaps(self, mean_interval_s: float,
              duration_range: Tuple[float, float],
              start: float = 0.0, until: float = 300.0,
              direction: str = "both") -> "FaultSchedule":
        self._add(RandomFlaps(mean_interval_s, duration_range,
                              start, until, direction))
        return self

    def _add(self, event: FaultEvent) -> None:
        self._validate(event)
        self.events.append(event)

    @staticmethod
    def _validate(event: FaultEvent) -> None:
        direction = getattr(event, "direction", None)
        if direction is not None and direction not in DIRECTIONS:
            raise ConfigurationError(
                f"fault direction must be one of {DIRECTIONS}, got {direction!r}")
        duration = getattr(event, "duration", None)
        if duration is not None and duration <= 0:
            raise ConfigurationError(f"fault duration must be positive, got {duration!r}")
        start = getattr(event, "start", getattr(event, "at", 0.0))
        if start < 0:
            raise ConfigurationError(f"fault start must be >= 0, got {start!r}")
        if isinstance(event, BandwidthDegradation) and not 0 < event.factor <= 1:
            raise ConfigurationError(
                f"degradation factor must be in (0, 1], got {event.factor!r}")
        if isinstance(event, RandomFlaps) and event.mean_interval_s <= 0:
            raise ConfigurationError(
                f"flap interval must be positive, got {event.mean_interval_s!r}")

    # -- arming --------------------------------------------------------------

    def apply(
        self,
        scheduler: EventScheduler,
        path: Path,
        *,
        server: Optional[Any] = None,
        rng: Optional[random.Random] = None,
        log: Optional[FaultLog] = None,
    ) -> FaultLog:
        """Arm every fault of this schedule against ``path`` (and ``server``).

        ``server`` is any object exposing ``set_unavailable(until)`` and
        ``abort_connections()`` (e.g. :class:`~repro.streaming.server.
        VideoServer`); it is only required when the schedule contains
        server-side faults.  ``rng`` is required for :class:`RandomFlaps`.
        """
        log = log if log is not None else FaultLog()
        for event in self.events:
            if isinstance(event, LinkOutage):
                self._arm_outage(scheduler, path, event.start, event.duration,
                                 event.direction, log)
            elif isinstance(event, BandwidthDegradation):
                self._arm_degradation(scheduler, path, event, log)
            elif isinstance(event, ServerOutage):
                self._arm_server_outage(scheduler, server, event, log)
            elif isinstance(event, ConnectionReset):
                self._arm_connection_reset(scheduler, server, event, log)
            elif isinstance(event, RandomFlaps):
                self._arm_flaps(scheduler, path, event, rng, log)
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown fault event {event!r}")
        return log

    @staticmethod
    def _links(path: Path, direction: str) -> List[Link]:
        if direction == "down":
            return [path.forward]
        if direction == "up":
            return [path.reverse]
        return [path.forward, path.reverse]

    def _arm_outage(self, scheduler: EventScheduler, path: Path, start: float,
                    duration: float, direction: str, log: FaultLog) -> None:
        links = self._links(path, direction)

        def down() -> None:
            for link in links:
                link.set_up(False)
            log.add(scheduler.clock.now(), "outage-start", direction)

        def up() -> None:
            for link in links:
                link.set_up(True)
            log.add(scheduler.clock.now(), "outage-end", direction)

        scheduler.at(start, down, label="fault:outage-start")
        scheduler.at(start + duration, up, label="fault:outage-end")

    def _arm_degradation(self, scheduler: EventScheduler, path: Path,
                         event: BandwidthDegradation, log: FaultLog) -> None:
        links = self._links(path, event.direction)

        def degrade() -> None:
            for link in links:
                link.set_rate(link.base_rate_bps * event.factor)
            log.add(scheduler.clock.now(), "degrade-start",
                    f"x{event.factor:g}")

        def restore() -> None:
            for link in links:
                link.set_rate(link.base_rate_bps)
            log.add(scheduler.clock.now(), "degrade-end", event.direction)

        scheduler.at(event.start, degrade, label="fault:degrade-start")
        scheduler.at(event.start + event.duration, restore,
                     label="fault:degrade-end")

    @staticmethod
    def _require_server(server: Optional[Any], event: FaultEvent) -> Any:
        if server is None:
            raise ConfigurationError(
                f"{type(event).__name__} requires a server; pass server= to apply()")
        return server

    def _arm_server_outage(self, scheduler: EventScheduler,
                           server: Optional[Any], event: ServerOutage,
                           log: FaultLog) -> None:
        srv = self._require_server(server, event)

        def begin() -> None:
            srv.set_unavailable(event.start + event.duration)
            log.add(scheduler.clock.now(), "server-outage-start",
                    f"{event.duration:g}s")

        scheduler.at(event.start, begin, label="fault:server-outage")
        scheduler.at(event.start + event.duration,
                     lambda: log.add(scheduler.clock.now(), "server-outage-end"),
                     label="fault:server-outage-end")

    def _arm_connection_reset(self, scheduler: EventScheduler,
                              server: Optional[Any], event: ConnectionReset,
                              log: FaultLog) -> None:
        srv = self._require_server(server, event)

        def reset() -> None:
            n = srv.abort_connections()
            log.add(scheduler.clock.now(), "connection-reset", f"{n} conns")

        scheduler.at(event.at, reset, label="fault:conn-reset")

    def _arm_flaps(self, scheduler: EventScheduler, path: Path,
                   event: RandomFlaps, rng: Optional[random.Random],
                   log: FaultLog) -> None:
        if rng is None:
            raise ConfigurationError(
                "RandomFlaps requires a seeded rng; pass rng= to apply()")
        lo, hi = event.duration_range
        t = event.start + rng.expovariate(1.0 / event.mean_interval_s)
        while t < event.until:
            duration = rng.uniform(lo, hi)
            self._arm_outage(scheduler, path, t, duration, event.direction, log)
            t += duration + rng.expovariate(1.0 / event.mean_interval_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({self.events!r})"
