"""Discrete-event network simulation substrate.

This package provides the event loop, links, hosts and measurement-network
profiles on which the from-scratch TCP implementation (:mod:`repro.tcp`) and
the streaming applications (:mod:`repro.streaming`) run.
"""

from .clock import SimClock
from .errors import (
    AddressError,
    ConfigurationError,
    DeadlockError,
    SchedulingError,
    SimulationError,
)
from .faults import (
    BandwidthDegradation,
    ConnectionReset,
    FaultLog,
    FaultSchedule,
    LinkOutage,
    RandomFlaps,
    ServerOutage,
)
from .link import Link, LinkStats
from .loss import (
    BernoulliLoss,
    DeterministicLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    PredicateLoss,
)
from .monitor import PeriodicProbe, TimeSeries
from .network import Network
from .node import Host
from .path import Path
from .profiles import (
    ACADEMIC,
    CLIENT_IP,
    HOME,
    PROFILES,
    PROFILE_ORDER,
    RESEARCH,
    RESIDENCE,
    SERVER_IP,
    NetworkProfile,
    build_client_server,
    get_profile,
)
from .rng import RngRegistry, derive_seed
from .scheduler import EventHandle, EventScheduler

__all__ = [
    "SimClock",
    "EventScheduler",
    "EventHandle",
    "Network",
    "Host",
    "Link",
    "LinkStats",
    "Path",
    "TimeSeries",
    "PeriodicProbe",
    "FaultSchedule",
    "FaultLog",
    "LinkOutage",
    "BandwidthDegradation",
    "ServerOutage",
    "ConnectionReset",
    "RandomFlaps",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "DeterministicLoss",
    "PredicateLoss",
    "RngRegistry",
    "derive_seed",
    "NetworkProfile",
    "PROFILES",
    "PROFILE_ORDER",
    "RESEARCH",
    "RESIDENCE",
    "ACADEMIC",
    "HOME",
    "CLIENT_IP",
    "SERVER_IP",
    "get_profile",
    "build_client_server",
    "SimulationError",
    "SchedulingError",
    "DeadlockError",
    "AddressError",
    "ConfigurationError",
]
