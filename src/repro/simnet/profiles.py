"""The paper's four measurement networks (Section 4.2), as simulation profiles.

The paper measures from:

1. **Research** — 100 Mbps wired behind a 500 Mbps uplink (France).
2. **Residence** — 54 Mbps Wi-Fi behind ADSL: 7.7 Mbps down / 1.2 Mbps up
   (France); median retransmission rate observed 1.02 %.
3. **Academic** — 100 Mbps wired behind a 1 Gbps uplink (USA); median
   retransmission rate observed 0.76 %.
4. **Home** — 100 Mbps wired behind a Comcast cable modem: 20 Mbps down /
   3 Mbps up (USA).

We model each network as one full-duplex bottleneck path.  ``down_bps``
is the *end-to-end available bandwidth* toward the client — for the two
high-capacity networks this is limited by the server side, not the access
link, so we use the effective rates implied by the paper's buffering-phase
slopes (tens of Mbps) rather than the raw 100 Mbps NIC speed.  Loss rates
are chosen so the simulated retransmission levels bracket the medians the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from .link import Link
from .loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from .network import Network
from .node import Host
from .path import Path
from .scheduler import EventScheduler


@dataclass(frozen=True)
class NetworkProfile:
    """Parameters of one measurement network."""

    name: str
    down_bps: float          # end-to-end available bandwidth, server -> client
    up_bps: float            # client -> server
    rtt: float               # two-way propagation delay in seconds
    loss_down: float         # Bernoulli loss probability, server -> client
    loss_up: float = 0.0     # client -> server
    buffer_bytes: int = 256 * 1024
    mss: int = 1460          # TCP maximum segment size used by endpoints
    country: str = ""
    #: When True the downstream loss is bursty (Gilbert-Elliott) with the
    #: same long-run rate: bursts defeat fast retransmit and force RTO
    #: stalls, the mechanism behind the paper's under-measured buffering
    #: amounts and merged/split blocks in the lossy networks (Section 5.1.1).
    bursty_loss: bool = False

    def build_path(self, scheduler: EventScheduler, rng, name: Optional[str] = None) -> Path:
        """Create the full-duplex bottleneck path for this profile.

        ``rng`` is a ``random.Random`` used by the loss processes; pass a
        dedicated stream so loss draws stay reproducible.
        """
        loss_ab: LossModel
        if self.loss_down <= 0:
            loss_ab = NoLoss()
        elif self.bursty_loss:
            # Gilbert-Elliott with the same long-run rate: dwell ~4 packets
            # in the bad state at 45 % loss, so loss episodes regularly
            # cluster several drops into one window and trigger RTO stalls
            # (calibrated so Residence shows ~1 % retransmissions and the
            # under-measured buffering amounts of Figure 3(a))
            loss_bad = 0.45
            p_bg = 0.25
            p_bad = min(0.5, self.loss_down / loss_bad)
            p_gb = p_bg * p_bad / (1.0 - p_bad)
            loss_ab = GilbertElliottLoss(p_gb, p_bg, rng,
                                         loss_good=0.0, loss_bad=loss_bad)
        else:
            loss_ab = BernoulliLoss(self.loss_down, rng)
        loss_ba: LossModel = (
            BernoulliLoss(self.loss_up, rng) if self.loss_up > 0 else NoLoss()
        )
        return Path(
            scheduler,
            rate_ab_bps=self.down_bps,
            rate_ba_bps=self.up_bps,
            prop_delay=self.rtt / 2.0,
            buffer_bytes=self.buffer_bytes,
            loss_ab=loss_ab,
            loss_ba=loss_ba,
            name=name or self.name,
        )

    def with_loss(self, loss_down: float, loss_up: float = 0.0) -> "NetworkProfile":
        """A copy of this profile with different loss rates (for ablations)."""
        return replace(self, loss_down=loss_down, loss_up=loss_up)

    def with_bandwidth(self, down_bps: float, up_bps: Optional[float] = None) -> "NetworkProfile":
        """A copy of this profile with a different bottleneck rate."""
        return replace(self, down_bps=down_bps, up_bps=up_bps or self.up_bps)


RESEARCH = NetworkProfile(
    name="Research",
    down_bps=100e6,
    up_bps=100e6,
    rtt=0.020,
    loss_down=0.0001,
    buffer_bytes=2 * 1024 * 1024,
    country="France",
)

RESIDENCE = NetworkProfile(
    name="Residence",
    down_bps=7.7e6,
    up_bps=1.2e6,
    rtt=0.045,
    loss_down=0.006,
    buffer_bytes=256 * 1024,
    country="France",
    bursty_loss=True,
)

ACADEMIC = NetworkProfile(
    name="Academic",
    down_bps=30e6,
    up_bps=30e6,
    rtt=0.018,
    loss_down=0.004,
    buffer_bytes=768 * 1024,
    country="USA",
    bursty_loss=True,
)

HOME = NetworkProfile(
    name="Home",
    down_bps=20e6,
    up_bps=3e6,
    rtt=0.028,
    loss_down=0.0005,
    buffer_bytes=1024 * 1024,
    country="USA",
)

PROFILES: Dict[str, NetworkProfile] = {
    p.name: p for p in (RESEARCH, RESIDENCE, ACADEMIC, HOME)
}

#: Order used throughout the paper's figures.
PROFILE_ORDER = ("Research", "Residence", "Academic", "Home")


def get_profile(name: str) -> NetworkProfile:
    """Look up a profile by name (case-insensitive)."""
    for key, profile in PROFILES.items():
        if key.lower() == name.lower():
            return profile
    raise KeyError(f"unknown network profile {name!r}; know {sorted(PROFILES)}")


CLIENT_IP = "10.0.0.1"
SERVER_IP = "192.0.2.1"


def build_client_server(
    profile: NetworkProfile, seed: int = 0
) -> Tuple[Network, Host, Host, Path]:
    """Build the canonical measurement topology for ``profile``.

    Returns ``(network, client, server, path)`` where the path's *forward*
    direction carries server -> client traffic (the download direction), so
    that ``profile.down_bps`` applies to video data.
    """
    net = Network(seed=seed)
    client = net.add_host(CLIENT_IP, name="client")
    server = net.add_host(SERVER_IP, name="server")
    path = profile.build_path(
        net.scheduler, net.rng.stream(f"loss:{profile.name}"), name=profile.name
    )
    # endpoint "a" = server so the forward (a->b) link is the download link
    net.add_path(server, client, path)
    return net, client, server, path
