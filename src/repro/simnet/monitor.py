"""Time-series probes.

Experiments sample quantities over simulated time — cumulative download
amount (Figures 2a, 6a, 7a, 10), advertised receive window (Figures 2b, 6a)
and player-buffer occupancy (Table 2).  :class:`TimeSeries` stores samples;
:class:`PeriodicProbe` drives sampling off the event scheduler.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .scheduler import EventHandle, EventScheduler


class TimeSeries:
    """A list of ``(time, value)`` samples with small analysis helpers."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    @classmethod
    def from_columns(cls, name: str, times, values) -> "TimeSeries":
        """Build a series from parallel time/value columns in one shot.

        The bulk-ingest fast path for columnar producers (flow tables,
        exporters): the iterables are copied into plain lists without the
        per-append time-order check — the caller guarantees ``times`` is
        already non-decreasing.
        """
        series = cls(name)
        series.times = list(times)
        series.values = list(values)
        return series

    def append(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r} must be appended in time order: "
                f"{t!r} < {self.times[-1]!r}"
            )
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def last(self) -> Tuple[float, float]:
        if not self.times:
            raise IndexError(f"time series {self.name!r} is empty")
        return self.times[-1], self.values[-1]

    def value_at(self, t: float) -> float:
        """Step-function value at time ``t`` (last sample at or before ``t``)."""
        if not self.times:
            raise IndexError(f"time series {self.name!r} is empty")
        if t < self.times[0]:
            raise ValueError(f"{t!r} precedes first sample {self.times[0]!r}")
        # binary search for rightmost index with times[i] <= t
        lo, hi = 0, len(self.times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.times[mid] <= t:
                lo = mid
            else:
                hi = mid - 1
        return self.values[lo]

    def window(self, t0: float, t1: float) -> "TimeSeries":
        """Samples with ``t0 <= time <= t1``."""
        out = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if t0 <= t <= t1:
                out.append(t, v)
        return out

    def deltas(self) -> List[Tuple[float, float]]:
        """Per-interval increments: ``[(t_i, v_i - v_{i-1}), ...]``."""
        out = []
        for i in range(1, len(self.times)):
            out.append((self.times[i], self.values[i] - self.values[i - 1]))
        return out

    def mean(self) -> float:
        if not self.values:
            raise IndexError(f"time series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    def max(self) -> float:
        return max(self.values)

    def min(self) -> float:
        return min(self.values)

    def binned_rate(self, bin_width: float) -> "TimeSeries":
        """Per-bin rate of change of a cumulative series.

        Interprets the samples as a non-decreasing cumulative quantity
        (e.g. bytes downloaded) and returns one sample per ``bin_width``
        interval, timestamped at the bin end, whose value is the average
        rate (units/second) over that bin.  Bins with no samples carry
        the rate 0.0 — the quantity did not advance.  This is what the
        exporters use to turn a download curve into link utilisation.
        """
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width!r}")
        out = TimeSeries(f"{self.name}:rate" if self.name else "rate")
        if len(self.times) < 2:
            return out
        t0 = self.times[0]
        span = self.times[-1] - t0
        bins = max(1, int(span / bin_width) + (1 if span % bin_width else 0))
        prev_value = self.values[0]
        for b in range(bins):
            end = t0 + (b + 1) * bin_width
            value = self.value_at(min(end, self.times[-1]))
            out.append(end, (value - prev_value) / bin_width)
            prev_value = value
        return out

    def time_average(self) -> float:
        """Step-function time average over the sampled span."""
        if len(self.times) < 2:
            raise ValueError(f"need >= 2 samples in {self.name!r} for time average")
        total = 0.0
        for i in range(1, len(self.times)):
            total += self.values[i - 1] * (self.times[i] - self.times[i - 1])
        span = self.times[-1] - self.times[0]
        return total / span if span > 0 else self.values[0]


class PeriodicProbe:
    """Sample ``fn()`` every ``period`` seconds into a :class:`TimeSeries`."""

    def __init__(
        self,
        scheduler: EventScheduler,
        period: float,
        fn: Callable[[], float],
        name: str = "probe",
        series: Optional[TimeSeries] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.scheduler = scheduler
        self.period = period
        self.fn = fn
        self.series = series if series is not None else TimeSeries(name)
        self._handle: Optional[EventHandle] = None
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._sample()

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _sample(self) -> None:
        if not self._running:
            return
        self.series.append(self.scheduler.clock.now(), float(self.fn()))
        self._handle = self.scheduler.after(
            self.period, self._sample, label=f"probe:{self.series.name}"
        )
