"""Errors raised by the discrete-event simulation substrate."""


class SimulationError(Exception):
    """Base class for all simulation errors."""


class SchedulingError(SimulationError):
    """An event was scheduled incorrectly (e.g. in the past)."""


class DeadlockError(SimulationError):
    """The simulation ran out of events before reaching a requested time
    while a caller still expected progress."""


class AddressError(SimulationError):
    """A host or port lookup failed during segment delivery."""


class ConfigurationError(SimulationError):
    """A component was constructed or wired with invalid parameters."""
