"""Simulated hosts.

A :class:`Host` owns an IP address, demultiplexes delivered TCP segments to
registered connections, and hands outbound segments to the
:class:`~repro.simnet.network.Network` for routing.  Ephemeral ports are
allocated sequentially from 49152 (the IANA dynamic range) so traces are
deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from .errors import AddressError

# (local_port, remote_ip, remote_port)
ConnKey = Tuple[int, str, int]
SegmentHandler = Callable[[Any], None]

EPHEMERAL_PORT_START = 49152


class Host:
    """One endpoint in the simulated network."""

    def __init__(self, ip: str, name: str = "") -> None:
        self.ip = ip
        self.name = name or ip
        self.network = None  # set by Network.attach
        self._connections: Dict[ConnKey, SegmentHandler] = {}
        self._listeners: Dict[int, SegmentHandler] = {}
        self._next_ephemeral = EPHEMERAL_PORT_START
        # Monomorphic demux cache: most hosts carry one flow, so remember
        # the last (key, handler) hit and skip the dict probe.
        self._last_key: Optional[ConnKey] = None
        self._last_handler: Optional[SegmentHandler] = None

    # -- port management ----------------------------------------------------

    def allocate_port(self) -> int:
        """Return a fresh ephemeral port."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def register_connection(self, key: ConnKey, handler: SegmentHandler) -> None:
        if key in self._connections:
            raise AddressError(f"{self.name}: connection {key!r} already registered")
        self._connections[key] = handler
        self._last_key = None

    def unregister_connection(self, key: ConnKey) -> None:
        self._connections.pop(key, None)
        self._last_key = None

    def listen(self, port: int, handler: SegmentHandler) -> None:
        """Register a listener receiving segments for unknown flows on ``port``
        (i.e. incoming SYNs)."""
        if port in self._listeners:
            raise AddressError(f"{self.name}: port {port} already listening")
        self._listeners[port] = handler

    def stop_listening(self, port: int) -> None:
        self._listeners.pop(port, None)

    # -- segment I/O --------------------------------------------------------

    def send_segment(self, segment: Any) -> None:
        """Hand an outbound segment to the network."""
        if self.network is None:
            raise AddressError(f"{self.name}: host not attached to a network")
        self.network.route(self, segment)

    def deliver_segment(self, segment: Any) -> None:
        """Called by the network when a segment arrives for this host."""
        key: ConnKey = (segment.dst_port, segment.src_ip, segment.src_port)
        if key == self._last_key:
            self._last_handler(segment)
            return
        handler = self._connections.get(key)
        if handler is not None:
            self._last_key = key
            self._last_handler = handler
            handler(segment)
            return
        handler = self._listeners.get(segment.dst_port)
        if handler is None:
            # A real stack would emit RST; for the simulation we silently
            # drop, which is what a capture box sees for stray packets.
            return
        handler(segment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host(ip={self.ip!r}, name={self.name!r})"
