"""Seeded random-number streams.

Every stochastic component (loss model, workload generator, arrival process)
draws from its own named stream derived from a root seed, so adding a new
random consumer never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for stream ``name`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose root seed is derived from ``name``."""
        return RngRegistry(derive_seed(self.root_seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={sorted(self._streams)})"
