"""Discrete-event scheduler.

A binary-heap event queue over the :class:`~repro.simnet.clock.SimClock`.
Events are callbacks scheduled at absolute or relative simulated times.
Cancellation is supported through :class:`EventHandle` (lazy deletion: a
cancelled event stays in the heap but is skipped when popped).

Ties are broken by insertion order so that the simulation is fully
deterministic for a given seed.

Fast path
---------

Heap entries are plain tuples ``(time, seq, callback, arg)``: because
``seq`` is unique, tuple comparison never reaches the callback, so heap
sifting runs entirely in C instead of calling ``EventHandle.__lt__``
roughly ``n log n`` times per run.  Two entry shapes share the heap:

* :meth:`EventScheduler.call_at` / :meth:`EventScheduler.call_after`
  schedule a bare callback (optionally with one argument, so hot callers
  pass the packet as ``arg`` instead of allocating a closure).  These
  events cannot be cancelled and allocate nothing but the heap tuple.
* :meth:`EventScheduler.at` / :meth:`EventScheduler.after` still return a
  cancellable :class:`EventHandle`; the handle rides in the callback slot
  of the tuple, marked by the ``_HANDLE`` sentinel in the ``arg`` slot.

:attr:`EventScheduler.pending` is O(1): an incremental live counter is
maintained at push, pop and cancel instead of scanning the heap.

OFF-period fast-forward
-----------------------

During the long OFF periods of the paper's ON/OFF cycles nothing moves:
no packet is in flight on any link and no TCP timer is armed earlier
than the next scheduled event.  :meth:`EventScheduler.try_fast_forward`
proves such a window quiescent by polling registered *quiescence probes*
(:meth:`add_quiescence_probe`; links and connections register
themselves) and, when every probe agrees, accounts the jump.  Because
the event loop already advances the clock by direct assignment between
events, the fast-forward is an *audited verification* of the jump the
loop performs anyway — it cannot perturb a timestamp, which is why the
byte-identity equivalence suite holds with :data:`FAST_FORWARD` on or
off.  Components may additionally consult
:attr:`EventScheduler.fast_forward` to replace dense idle polling with
analytic reschedules (the streaming monitor does); those are the actual
speedup and are covered by the same equivalence contract.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Any, Callable, List, Optional, Tuple

from ..telemetry import current_recorder
from .clock import SimClock
from .errors import SchedulingError

Callback = Callable[[], None]

#: Global default for the OFF-period fast-forward.  Overridable through
#: the ``REPRO_FAST_FORWARD`` environment variable (``0``/``false``/
#: ``off`` disable it); the equivalence tests flip the per-scheduler
#: :attr:`EventScheduler.fast_forward` attribute instead.
FAST_FORWARD = os.environ.get("REPRO_FAST_FORWARD", "1").lower() not in (
    "0", "false", "off")

#: Gaps shorter than this are not worth proving quiescent: the jump is
#: performed by the event loop either way, and probing has a cost.  Set
#: above the per-segment serialization spacing of the slowest profile so
#: dense trains never pay for probing, while inter-block and OFF-period
#: gaps (tens of milliseconds to seconds) always do get audited.
FAST_FORWARD_MIN_GAP_S = 5e-3

#: A quiescence probe: ``probe(until) -> bool`` — ``True`` iff the
#: component can prove it schedules nothing and changes no state before
#: simulated time ``until``.
QuiescenceProbe = Callable[[float], bool]

#: Sentinel in an entry's ``arg`` slot: the callback slot holds an
#: :class:`EventHandle` (the cancellable slow path).
_HANDLE = object()
#: Sentinel in an entry's ``arg`` slot: the callback takes no argument.
_NO_ARG = object()

#: A heap entry: ``(time, seq, callback_or_handle, arg_or_sentinel)``.
HeapEntry = Tuple[float, int, Any, Any]


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "callback", "label", "_sched")

    def __init__(self, time: float, seq: int, callback: Optional[Callback],
                 label: str, sched: Optional["EventScheduler"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self._sched = sched

    def cancel(self) -> None:
        """Cancel the event.  Idempotent; a fired event cannot be cancelled."""
        if self.callback is not None:
            self.callback = None
            if self._sched is not None:
                self._sched._live -= 1

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, label={self.label!r}, {state})"


class EventScheduler:
    """Deterministic discrete-event loop."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[HeapEntry] = []
        self._counter = itertools.count()
        self._live = 0
        self._fired = 0
        #: Per-scheduler fast-forward switch, captured from the module
        #: default at construction (tests and A/B runs flip it freely).
        self.fast_forward = FAST_FORWARD
        self._quiescence_probes: List[QuiescenceProbe] = []
        #: Accounting for :meth:`try_fast_forward`.
        self.fast_forwarded_s = 0.0
        self.fast_forward_jumps = 0
        self.fast_forward_refusals = 0
        # Horizon of the innermost run_until(); batched components must
        # not process work scheduled past it (run() lifts it to +inf).
        self._horizon = 0.0
        # Captured once: a scheduler lives inside exactly one session (or
        # test), so the recorder in effect at construction is the right
        # one for its whole lifetime, and the hot loops below pay only an
        # ``enabled`` check when telemetry is off.
        self._telemetry = current_recorder()

    # -- scheduling ---------------------------------------------------------

    def at(self, time: float, callback: Callback, label: str = "") -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        now = self.clock.now()
        if time < now:
            raise SchedulingError(f"cannot schedule at {time!r}; now is {now!r}")
        handle = EventHandle(time, next(self._counter), callback, label, self)
        heapq.heappush(self._heap, (time, handle.seq, handle, _HANDLE))
        self._live += 1
        return handle

    def after(self, delay: float, callback: Callback, label: str = "") -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.at(self.clock.now() + delay, callback, label)

    def call_at(self, time: float, callback: Callable, arg: Any = _NO_ARG) -> None:
        """Schedule a non-cancellable ``callback`` at absolute time ``time``.

        The allocation-lean fast path: no :class:`EventHandle` is created
        and none is returned.  When ``arg`` is given the event fires as
        ``callback(arg)`` — hot callers pass their per-event state (e.g.
        the packet being delivered) this way instead of binding it in a
        closure.
        """
        now = self.clock.now()
        if time < now:
            raise SchedulingError(f"cannot schedule at {time!r}; now is {now!r}")
        heapq.heappush(self._heap, (time, next(self._counter), callback, arg))
        self._live += 1

    def call_after(self, delay: float, callback: Callable,
                   arg: Any = _NO_ARG) -> None:
        """Schedule a non-cancellable ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        self.call_at(self.clock.now() + delay, callback, arg)

    def reserve_seq(self) -> int:
        """Consume and return the next insertion-order sequence number.

        Lets a caller fix an event's tie-break position *now* while
        posting the event later via :meth:`post` — the packet-train
        batching in :class:`~repro.simnet.link.Link` uses this to keep
        heap ordering bit-identical to scheduling every delivery up
        front.
        """
        return next(self._counter)

    def post(self, time: float, seq: int, callback: Callable,
             arg: Any = _NO_ARG) -> None:
        """Insert an event whose seq was taken earlier via :meth:`reserve_seq`.

        ``time`` must not be in the past (the caller guarantees it; no
        check is made — this is the hot path) and ``seq`` must be unique.
        """
        heapq.heappush(self._heap, (time, seq, callback, arg))
        self._live += 1

    # -- fast-forward -------------------------------------------------------

    def add_quiescence_probe(self, probe: QuiescenceProbe) -> None:
        """Register ``probe(until) -> bool`` for :meth:`try_fast_forward`.

        Links and TCP connections register themselves at construction;
        a probe must return ``True`` only when its component provably
        schedules nothing and mutates no observable state strictly
        before ``until``.
        """
        self._quiescence_probes.append(probe)

    def try_fast_forward(self, t: float) -> bool:
        """Prove the window ``(now, t)`` quiescent and account the jump.

        Every registered probe must agree; on success the clock is moved
        directly to ``t`` and the jump is tallied.  On refusal nothing
        changes (the caller falls back to ordinary event stepping).
        Timestamps cannot be perturbed either way — the event loop would
        assign the same clock value — so this is safe by construction;
        the probes turn that safety into a *checked* invariant and feed
        the ``fast_forwarded_s`` speedup accounting.
        """
        now = self.clock._now
        if t <= now:
            return True
        for probe in self._quiescence_probes:
            if not probe(t):
                self.fast_forward_refusals += 1
                return False
        self.fast_forwarded_s += t - now
        self.fast_forward_jumps += 1
        self.clock._now = t
        return True

    # -- execution ----------------------------------------------------------

    def _pop_live(self) -> Optional[HeapEntry]:
        """Pop entries until a live one is found; returns ``None`` when empty.

        For handle-carrying entries the handle's callback is moved into
        the returned tuple's callback slot (and cleared on the handle, so
        a later ``cancel()`` is a no-op).
        """
        heap = self._heap
        while heap:
            time_, seq, cb, arg = heapq.heappop(heap)
            if arg is _HANDLE:
                fn = cb.callback
                if fn is None:
                    continue  # cancelled: lazily deleted (already un-counted)
                cb.callback = None
                self._live -= 1
                return (time_, seq, fn, _NO_ARG)
            self._live -= 1
            return (time_, seq, cb, arg)
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when the queue is empty."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3] is _HANDLE and head[2].callback is None:
                heapq.heappop(heap)
                continue
            return head[0]
        return None

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when no events remain."""
        entry = self._pop_live()
        if entry is None:
            return False
        time_, _seq, callback, arg = entry
        self.clock.advance_to(time_)
        if arg is _NO_ARG:
            callback()
        else:
            callback(arg)
        self._fired += 1
        return True

    def run_until(self, t: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``t``; returns the number fired.

        The clock is advanced to exactly ``t`` at the end even if the queue
        drains earlier, so that probes sampling "at the horizon" see a
        consistent time.
        """
        fired = 0
        self._horizon = t
        if max_events is None:
            # Fast loop: one heap pop per event, no peek_time() cleanup
            # pass, clock advanced by direct assignment (pop order is
            # nondecreasing by heap invariant, so monotonicity holds).
            heap = self._heap
            clock = self.clock
            heappop = heapq.heappop
            fast_forward = self.fast_forward
            while heap:
                entry = heap[0]
                time_ = entry[0]
                if time_ > t:
                    break
                if fast_forward and time_ - clock._now > FAST_FORWARD_MIN_GAP_S:
                    self.try_fast_forward(time_)
                heappop(heap)
                cb = entry[2]
                arg = entry[3]
                if arg is _HANDLE:
                    fn = cb.callback
                    if fn is None:
                        continue
                    cb.callback = None
                    self._live -= 1
                    clock._now = time_
                    fn()
                else:
                    self._live -= 1
                    clock._now = time_
                    if arg is _NO_ARG:
                        cb()
                    else:
                        cb(arg)
                fired += 1
            self._fired += fired
        else:
            while fired < max_events:
                nxt = self.peek_time()
                if nxt is None or nxt > t:
                    break
                self.step()
                fired += 1
        if self.clock.now() < t:
            self.clock.advance_to(t)
        if fired and self._telemetry.enabled:
            self._telemetry.inc("scheduler.events", fired)
        return fired

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is empty (or ``max_events`` fire)."""
        fired = 0
        self._horizon = float("inf")
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        if fired and self._telemetry.enabled:
            self._telemetry.inc("scheduler.events", fired)
        return fired

    def run_while(self, predicate: Callable[[], bool], horizon: float) -> int:
        """Run while ``predicate()`` is true, never past ``horizon``."""
        fired = 0
        while predicate():
            nxt = self.peek_time()
            if nxt is None or nxt > horizon:
                break
            self.step()
            fired += 1
        return fired

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    @property
    def fired(self) -> int:
        """Total number of events fired so far."""
        return self._fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventScheduler(now={self.clock.now():.6f}, pending={self.pending})"
