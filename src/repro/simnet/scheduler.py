"""Discrete-event scheduler.

A binary-heap event queue over the :class:`~repro.simnet.clock.SimClock`.
Events are callbacks scheduled at absolute or relative simulated times.
Cancellation is supported through :class:`EventHandle` (lazy deletion: a
cancelled event stays in the heap but is skipped when popped).

Ties are broken by insertion order so that the simulation is fully
deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from ..telemetry import current_recorder
from .clock import SimClock
from .errors import SchedulingError

Callback = Callable[[], None]


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "callback", "label")

    def __init__(self, time: float, seq: int, callback: Optional[Callback], label: str):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label

    def cancel(self) -> None:
        """Cancel the event.  Idempotent; a fired event cannot be cancelled."""
        self.callback = None

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, label={self.label!r}, {state})"


class EventScheduler:
    """Deterministic discrete-event loop."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[EventHandle] = []
        self._counter = itertools.count()
        self._fired = 0
        # Captured once: a scheduler lives inside exactly one session (or
        # test), so the recorder in effect at construction is the right
        # one for its whole lifetime, and the hot loops below pay only an
        # ``enabled`` check when telemetry is off.
        self._telemetry = current_recorder()

    # -- scheduling ---------------------------------------------------------

    def at(self, time: float, callback: Callback, label: str = "") -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        now = self.clock.now()
        if time < now:
            raise SchedulingError(f"cannot schedule at {time!r}; now is {now!r}")
        handle = EventHandle(time, next(self._counter), callback, label)
        heapq.heappush(self._heap, handle)
        return handle

    def after(self, delay: float, callback: Callback, label: str = "") -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.at(self.clock.now() + delay, callback, label)

    # -- execution ----------------------------------------------------------

    def _pop_live(self) -> Optional[EventHandle]:
        while self._heap:
            handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                return handle
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when no events remain."""
        handle = self._pop_live()
        if handle is None:
            return False
        self.clock.advance_to(handle.time)
        callback, handle.callback = handle.callback, None
        assert callback is not None
        callback()
        self._fired += 1
        return True

    def run_until(self, t: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``t``; returns the number fired.

        The clock is advanced to exactly ``t`` at the end even if the queue
        drains earlier, so that probes sampling "at the horizon" see a
        consistent time.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            nxt = self.peek_time()
            if nxt is None or nxt > t:
                break
            self.step()
            fired += 1
        if self.clock.now() < t:
            self.clock.advance_to(t)
        if fired and self._telemetry.enabled:
            self._telemetry.inc("scheduler.events", fired)
        return fired

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is empty (or ``max_events`` fire)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        if fired and self._telemetry.enabled:
            self._telemetry.inc("scheduler.events", fired)
        return fired

    def run_while(self, predicate: Callable[[], bool], horizon: float) -> int:
        """Run while ``predicate()`` is true, never past ``horizon``."""
        fired = 0
        while predicate():
            nxt = self.peek_time()
            if nxt is None or nxt > horizon:
                break
            self.step()
            fired += 1
        return fired

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for h in self._heap if not h.cancelled)

    @property
    def fired(self) -> int:
        """Total number of events fired so far."""
        return self._fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventScheduler(now={self.clock.now():.6f}, pending={self.pending})"
