"""The simulated network: hosts wired together by paths.

Routing is host-pair based: every pair of communicating hosts shares one
:class:`~repro.simnet.path.Path`.  This matches the paper's measurement
setups, where a client behind one access network talks to a streaming
server across a single bottleneck.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .errors import AddressError, ConfigurationError
from .node import Host
from .path import Path
from .rng import RngRegistry
from .scheduler import EventScheduler


class Network:
    """Container for hosts, paths and the shared event scheduler."""

    def __init__(self, scheduler: Optional[EventScheduler] = None, seed: int = 0) -> None:
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        self.rng = RngRegistry(seed)
        self._hosts: Dict[str, Host] = {}
        self._paths: Dict[Tuple[str, str], Tuple[Path, str]] = {}
        # (src_ip, dst_ip) -> bound Link.transmit.  Safe to cache because
        # add_path() refuses to replace an installed path and faults mutate
        # Link objects in place; this turns per-segment routing into one
        # dict hit.
        self._transmit_cache: Dict[Tuple[str, str], Any] = {}

    @property
    def clock(self):
        return self.scheduler.clock

    def now(self) -> float:
        return self.scheduler.clock.now()

    # -- topology -----------------------------------------------------------

    def add_host(self, ip: str, name: str = "") -> Host:
        if ip in self._hosts:
            raise ConfigurationError(f"host with ip {ip!r} already exists")
        host = Host(ip, name)
        host.network = self
        self._hosts[ip] = host
        return host

    def host(self, ip: str) -> Host:
        try:
            return self._hosts[ip]
        except KeyError:
            raise AddressError(f"no host with ip {ip!r}") from None

    def add_path(self, a: Host, b: Host, path: Path) -> Path:
        """Install ``path`` between hosts ``a`` (endpoint a) and ``b``."""
        if (a.ip, b.ip) in self._paths:
            raise ConfigurationError(f"path {a.ip!r}<->{b.ip!r} already exists")
        # a path object may be reused across runs on one topology: clear any
        # loss-model position / outage / degraded-rate state left behind so
        # repeated sessions draw identical loss processes
        path.reset()
        path.forward.connect(b.deliver_segment)
        path.reverse.connect(a.deliver_segment)
        self._paths[(a.ip, b.ip)] = (path, "a")
        self._paths[(b.ip, a.ip)] = (path, "b")
        return path

    def path_between(self, src_ip: str, dst_ip: str) -> Tuple[Path, str]:
        try:
            return self._paths[(src_ip, dst_ip)]
        except KeyError:
            raise AddressError(f"no path from {src_ip!r} to {dst_ip!r}") from None

    # -- forwarding ---------------------------------------------------------

    def transmit_fn(self, src_ip: str, dst_ip: str) -> Any:
        """The bound ``Link.transmit`` carrying ``src_ip -> dst_ip`` traffic.

        Cached per (src, dst) pair; connections hold on to it so each
        segment skips the host/network/path resolution hops.  Links are
        mutated in place (never replaced), so the binding stays valid.
        """
        key = (src_ip, dst_ip)
        transmit = self._transmit_cache.get(key)
        if transmit is None:
            path, endpoint = self.path_between(src_ip, dst_ip)
            transmit = self._transmit_cache[key] = path.link_from(endpoint).transmit
        return transmit

    def route(self, src: Host, segment: Any) -> None:
        """Forward ``segment`` from ``src`` toward ``segment.dst_ip``."""
        self.transmit_fn(src.ip, segment.dst_ip)(segment)

    # -- execution shortcuts --------------------------------------------------

    def run_until(self, t: float, max_events: Optional[int] = None) -> int:
        return self.scheduler.run_until(t, max_events=max_events)

    def run(self, max_events: Optional[int] = None) -> int:
        return self.scheduler.run(max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(hosts={sorted(self._hosts)}, "
            f"paths={len(self._paths) // 2}, now={self.now():.3f})"
        )
