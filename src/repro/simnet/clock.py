"""Simulation clock.

The clock is a mutable cell owned by the :class:`~repro.simnet.scheduler.
EventScheduler`; components hold a reference to it and read the current
simulated time through :meth:`now`.  Time is a float number of seconds since
the beginning of the simulation.
"""

from __future__ import annotations

from .errors import SchedulingError


class SimClock:
    """Monotonic simulated-time clock.

    Only the event scheduler should advance the clock; every other component
    treats it as read-only.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise SchedulingError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to time ``t``.

        Raises :class:`SchedulingError` if ``t`` is in the past; the
        simulation is strictly monotonic.
        """
        if t < self._now:
            raise SchedulingError(
                f"cannot move clock backwards from {self._now!r} to {t!r}"
            )
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now!r})"
