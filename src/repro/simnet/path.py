"""Full-duplex path: a pair of directed links between two hosts.

The paper's measurement setups are all "client behind an access link"
topologies, so a single bottleneck path per host pair is sufficient.  The
two directions can be asymmetric (e.g. the Residence ADSL profile downloads
at 7.7 Mbps and uploads at 1.2 Mbps).
"""

from __future__ import annotations

from typing import Any, Optional

from .link import Link
from .loss import LossModel
from .scheduler import EventScheduler


class Path:
    """Two directed :class:`Link` objects joining hosts ``a`` and ``b``."""

    def __init__(
        self,
        scheduler: EventScheduler,
        *,
        rate_ab_bps: float,
        rate_ba_bps: float,
        prop_delay: float,
        buffer_bytes: int = 256 * 1024,
        loss_ab: Optional[LossModel] = None,
        loss_ba: Optional[LossModel] = None,
        name: str = "path",
    ) -> None:
        self.name = name
        self.forward = Link(
            scheduler,
            rate_ab_bps,
            prop_delay,
            buffer_bytes=buffer_bytes,
            loss_model=loss_ab,
            name=f"{name}:a->b",
        )
        self.reverse = Link(
            scheduler,
            rate_ba_bps,
            prop_delay,
            buffer_bytes=buffer_bytes,
            loss_model=loss_ba,
            name=f"{name}:b->a",
        )

    def link_from(self, endpoint: str) -> Link:
        """Return the directed link leaving endpoint ``"a"`` or ``"b"``."""
        if endpoint == "a":
            return self.forward
        if endpoint == "b":
            return self.reverse
        raise ValueError(f"endpoint must be 'a' or 'b', got {endpoint!r}")

    def reset(self) -> None:
        """Reset both directions' loss/fault state (see :meth:`Link.reset`)."""
        self.forward.reset()
        self.reverse.reset()

    @property
    def rtt_floor(self) -> float:
        """Two-way propagation delay, ignoring serialization and queueing."""
        return self.forward.prop_delay + self.reverse.prop_delay

    def add_tap(self, tap) -> None:
        """Attach a sender-side sniffer to both directions."""
        self.forward.add_tap(tap)
        self.reverse.add_tap(tap)

    def add_client_side_tap(self, tap) -> None:
        """Attach a sniffer with the vantage point of endpoint ``b`` (the
        client in :func:`~repro.simnet.profiles.build_client_server`):
        downstream (a->b) packets are seen on *arrival*, upstream (b->a)
        packets when *sent*.  This reproduces the timestamps a tcpdump on
        the client machine records — in particular the SYN -> SYN-ACK gap
        measures the full round-trip time."""
        self.forward.add_delivery_tap(tap)
        self.reverse.add_tap(tap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Path(name={self.name!r}, fwd={self.forward!r}, rev={self.reverse!r})"
