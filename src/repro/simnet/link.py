"""Directed link with finite rate, propagation delay and a drop-tail buffer.

The link models the access bottleneck of the paper's four measurement
networks.  A packet handed to :meth:`Link.transmit`:

1. is dropped if the (virtual) transmit queue already holds more than
   ``buffer_bytes``;
2. otherwise waits for the transmitter to become free, is serialized at
   ``rate_bps``, may be dropped by the configured :class:`LossModel`, and is
   finally delivered ``prop_delay`` seconds after serialization finishes.

The queue is *virtual*: instead of an explicit FIFO we track the time at
which the transmitter becomes idle, ``_busy_until``.  While the rate has
not changed since the oldest queued packet was enqueued, the backlog in
bytes at time ``t`` is exactly ``(busy_until - t) * rate / 8``; a small
per-packet deque prices the backlog at each packet's *enqueue-time* rate
when a mid-flight :meth:`set_rate` would otherwise misprice it.

Packet-train batching
---------------------

Back-to-back deliveries of an uninterrupted train are held in a deque
and only the head occupies the scheduler heap; each delivery posts the
next entry with a sequence number *reserved at transmit time*
(:meth:`EventScheduler.reserve_seq`), so the heap pops in bit-identical
order to scheduling every delivery individually — results stay
byte-identical while the heap stays shallow.  Loss models compose with
batching because drop decisions are made at transmit time in both
paths: a dropped packet simply never joins the train, consuming neither
a scheduler event nor a sequence number, exactly like the unbatched
path.  Fault injectors flip ``up``/``rate`` but never touch scheduled
deliveries, so they are safe with batching too.  The module-level
:data:`BATCH_DELIVERIES` switch turns the fast path off globally, which
the equivalence tests use to prove the two paths agree.

Vectorized packet trains
------------------------

Two further fast paths build on the train, both toggled by
:data:`VECTOR_TRAINS` (env ``REPRO_VECTOR_TRAINS``) and both covered by
the same byte-identity equivalence suite:

* **Burst enqueue** — :meth:`Link.transmit_train` accepts a whole burst
  of equal-size segments and computes their serialization finish times
  in one shot (``numpy.add.accumulate`` when numpy is importable and the
  ``REPRO_NO_NUMPY`` env var is unset, a plain Python loop otherwise;
  ``add.accumulate`` is strictly sequential, so both produce bit-equal
  IEEE-754 results).  Loss draws stay per-packet scalar calls so the RNG
  stream is untouched, and any burst that could hit the drop-tail check
  or a mixed-rate queue falls back to per-packet :meth:`transmit`.
* **Batched delivery** — :meth:`Link._deliver_train` processes a prefix
  of the train under a single scheduler event instead of re-posting one
  event per packet.  The batch stops strictly before the earliest *live
  cancellable* event in the heap (timers, monitor ticks, pacing pushes —
  their callbacks may observe state the batch mutates) and before the
  ``run_until`` horizon; plain tuple events are exclusively link
  deliveries, whose processing commutes with the batch.  Each delivery
  inside the batch runs at its exact reserved ``(time, seq)`` with the
  clock pinned to its timestamp, so captures and protocol state are
  byte-identical to one-event-per-packet stepping.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from .errors import ConfigurationError
from .loss import LossModel, NoLoss
from .scheduler import EventScheduler, _HANDLE

try:  # numpy is optional; the pure-python fallback is bit-identical
    if os.environ.get("REPRO_NO_NUMPY", "").lower() in ("1", "true", "on"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

# A wire packet is anything exposing its on-the-wire size in bytes.
DeliverFn = Callable[[Any], None]
TapFn = Callable[[float, Any], None]

#: Global default for the packet-train delivery fast path.  Tests flip
#: this to prove batched and unbatched runs are byte-identical, and the
#: CI fast-path gate disables it (``REPRO_BATCH_DELIVERIES=0``) to time
#: the scalar event-per-packet reference path; there is no reason to
#: disable it otherwise.
BATCH_DELIVERIES = os.environ.get("REPRO_BATCH_DELIVERIES", "1").lower() not in (
    "0", "false", "off")

#: Global default for the vectorized packet-train paths (burst enqueue
#: and batched delivery).  Overridable through the
#: ``REPRO_VECTOR_TRAINS`` environment variable; the equivalence tests
#: flip it per run to prove byte-identity against the scalar paths.
VECTOR_TRAINS = os.environ.get("REPRO_VECTOR_TRAINS", "1").lower() not in (
    "0", "false", "off")


class LinkStats:
    """Counters kept by each link."""

    __slots__ = (
        "packets_in",
        "packets_delivered",
        "packets_lost",
        "packets_dropped_queue",
        "packets_blackholed",
        "bytes_delivered",
    )

    def __init__(self) -> None:
        self.packets_in = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        self.packets_dropped_queue = 0
        self.packets_blackholed = 0
        self.bytes_delivered = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkStats({self.as_dict()!r})"


class Link:
    """One direction of a network path."""

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        prop_delay: float,
        *,
        buffer_bytes: int = 256 * 1024,
        loss_model: Optional[LossModel] = None,
        name: str = "link",
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"rate_bps must be positive, got {rate_bps!r}")
        if prop_delay < 0:
            raise ConfigurationError(f"prop_delay must be >= 0, got {prop_delay!r}")
        if buffer_bytes <= 0:
            raise ConfigurationError(f"buffer_bytes must be positive, got {buffer_bytes!r}")
        self.scheduler = scheduler
        self.rate_bps = float(rate_bps)
        self.base_rate_bps = float(rate_bps)
        self.prop_delay = float(prop_delay)
        self.buffer_bytes = int(buffer_bytes)
        self.loss_model = loss_model if loss_model is not None else NoLoss()
        self.name = name
        self.deliver: Optional[DeliverFn] = None
        self.stats = LinkStats()
        self.up = True
        self._busy_until = 0.0
        self._taps: List[TapFn] = []
        self._delivery_taps: List[TapFn] = []
        # Per-packet backlog accounting: (finish_time, size, rate, epoch).
        # The epoch stamps which set_rate() generation a packet was
        # enqueued under, so backlog_bytes() knows when the closed-form
        # virtual-queue formula is still exact.
        self._queue: Deque[Tuple[float, int, float, int]] = deque()
        self._queued_bytes = 0
        self._rate_epoch = 0
        # Delivery train: (deliver_at, reserved_seq, packet).  Only the
        # head entry occupies the scheduler heap.
        self._train: Deque[Tuple[float, int, Any]] = deque()
        self._batch = BATCH_DELIVERIES
        self._vector = VECTOR_TRAINS
        # True while _deliver_train() is draining the train: a transmit
        # re-entering this link then must not post a head event (the
        # batch posts exactly one for whatever remains when it ends).
        self._in_batch = False
        # Monomorphic receiver cache for the inline fast paths: the last
        # flow key seen and its connection's _fast_inorder_data /
        # _fast_pure_ack (None when the receiver has no fast path).  A
        # stale entry is harmless — the fast paths' own guards reject
        # closed connections and the generic demux then takes over.
        self._fast_key = None
        self._fast_data_fn = None
        self._fast_ack_fn = None
        self._fast_conn = None
        scheduler.add_quiescence_probe(self.quiescent)

    # -- fault state --------------------------------------------------------

    def set_up(self, up: bool) -> None:
        """Bring the link up or down.  A down link blackholes every packet
        handed to it (link outage / flap): the sender learns nothing, which
        is exactly what TCP sees when a last-mile link dies."""
        self.up = bool(up)

    def set_rate(self, rate_bps: float) -> None:
        """Change the serialization rate (temporary bandwidth degradation)."""
        if rate_bps <= 0:
            raise ConfigurationError(f"rate_bps must be positive, got {rate_bps!r}")
        self.rate_bps = float(rate_bps)
        self._rate_epoch += 1

    def reset(self) -> None:
        """Restore fault-free initial state for reuse across runs.

        Clears the loss model's internal state (burst position, packet
        index), brings the link back up, restores the nominal rate and
        abandons any in-flight delivery train (its pending scheduler
        event, if any, belongs to the previous run's scheduler), so
        repeated sessions on one topology see identical loss processes.
        """
        self.loss_model.reset()
        self.up = True
        self.rate_bps = self.base_rate_bps
        self._rate_epoch += 1
        self._train.clear()
        self._in_batch = False
        self._fast_key = None
        self._fast_data_fn = None
        self._fast_ack_fn = None
        self._fast_conn = None

    # -- wiring -------------------------------------------------------------

    def connect(self, deliver: DeliverFn) -> None:
        """Set the far-end delivery callback."""
        self.deliver = deliver

    def add_tap(self, tap: TapFn) -> None:
        """Register a sender-side sniffer: ``tap(send_time, packet)`` fires
        for every packet that survives the queue, including ones later lost
        downstream (what a capture box at the transmitter sees)."""
        self._taps.append(tap)

    def add_delivery_tap(self, tap: TapFn) -> None:
        """Register a receiver-side sniffer: ``tap(arrival_time, packet)``
        fires only for packets actually delivered (what tcpdump at the far
        end of the link sees — lost packets never appear)."""
        self._delivery_taps.append(tap)

    # -- quiescence ---------------------------------------------------------

    def quiescent(self, until: float) -> bool:
        """Quiescence probe for the scheduler's OFF-period fast-forward.

        The link is provably idle only when no delivery train is pending
        and the transmitter has finished serializing: a packet in flight
        means the window ``(now, until)`` is not an OFF period, so the
        fast-forward must refuse it (its delivery event still fires at
        the exact scheduled time either way — refusal costs nothing but
        the accounting).
        """
        if self._train:
            return False
        return self._busy_until <= self.scheduler.clock._now

    # -- queue state --------------------------------------------------------

    def backlog_bytes(self, now: Optional[float] = None) -> float:
        """Bytes currently queued (including the packet in serialization).

        Each queued packet is priced at the rate in force when it was
        *enqueued*: after a mid-flight :meth:`set_rate` degradation the
        already-queued bytes do not shrink just because the conversion
        factor changed.  When the rate has not changed since the oldest
        queued packet, this reduces to the exact closed-form
        ``(busy_until - t) * rate / 8``.
        """
        t = self.scheduler.clock.now() if now is None else now
        queue = self._queue
        while queue and queue[0][0] <= t:
            self._queued_bytes -= queue.popleft()[1]
        if not queue:
            return 0.0
        head_finish, head_size, head_rate, head_epoch = queue[0]
        if head_epoch == self._rate_epoch:
            # Rate unchanged since the oldest queued packet: use the
            # historical closed-form arithmetic (bit-for-bit).
            return max(0.0, self._busy_until - t) * self.rate_bps / 8.0
        # Mixed-rate queue: whole bytes of every queued packet, minus the
        # part of the head already serialized at the head's own rate.
        backlog = float(self._queued_bytes)
        head_start = head_finish - head_size * 8.0 / head_rate
        if t > head_start:
            backlog -= (t - head_start) * head_rate / 8.0
        return max(0.0, backlog)

    def serialization_delay(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.rate_bps

    # -- transmission -------------------------------------------------------

    def transmit(self, packet: Any) -> bool:
        """Enqueue ``packet`` for transmission.

        Returns ``True`` if accepted, ``False`` if dropped at the queue.
        ``packet`` must expose ``wire_size`` (bytes on the wire).
        """
        if self.deliver is None:
            raise ConfigurationError(f"link {self.name!r} has no delivery callback")
        scheduler = self.scheduler
        now = scheduler.clock._now
        stats = self.stats
        stats.packets_in += 1
        if not self.up:
            stats.packets_blackholed += 1
            return True  # swallowed by the outage; the sender cannot tell
        size = packet.wire_size
        # drop-tail check, inlining backlog_bytes() (one call per packet)
        queue = self._queue
        while queue and queue[0][0] <= now:
            self._queued_bytes -= queue.popleft()[1]
        if queue:
            head = queue[0]
            if head[3] == self._rate_epoch:
                backlog = max(0.0, self._busy_until - now) * self.rate_bps / 8.0
            else:
                backlog = float(self._queued_bytes)
                head_start = head[0] - head[1] * 8.0 / head[2]
                if now > head_start:
                    backlog -= (now - head_start) * head[2] / 8.0
                backlog = max(0.0, backlog)
            if backlog + size > self.buffer_bytes:
                stats.packets_dropped_queue += 1
                return False
        elif size > self.buffer_bytes:
            stats.packets_dropped_queue += 1
            return False
        busy = self._busy_until
        start = busy if busy > now else now
        rate = self.rate_bps
        finish = start + size * 8.0 / rate
        self._busy_until = finish
        queue.append((finish, size, rate, self._rate_epoch))
        self._queued_bytes += size
        if self._taps:
            send_time = finish  # moment the last bit leaves the sender
            for tap in self._taps:
                tap(send_time, packet)
        if self._batch:
            # Drop decisions are made here, at transmit time, exactly as
            # the unbatched path does — RNG draw order, the drop set and
            # the surviving packets' reserved seqs are all unchanged.
            loss_model = self.loss_model
            if type(loss_model) is not NoLoss and loss_model.should_drop():
                stats.packets_lost += 1
                return True  # consumed link capacity, vanished downstream
            # Reserve the delivery's tie-break seq now, but only keep the
            # train's head in the scheduler heap.
            train = self._train
            train.append((finish + self.prop_delay, scheduler.reserve_seq(), packet))
            if len(train) == 1 and not self._in_batch:
                scheduler.post(train[0][0], train[0][1], self._deliver_next)
            return True
        if self.loss_model.should_drop():
            stats.packets_lost += 1
            return True  # consumed link capacity, then vanished downstream
        scheduler.call_at(finish + self.prop_delay, self._deliver, packet)
        return True

    def transmit_train(self, packets: List[Any]) -> None:
        """Enqueue a burst of equal-size packets, vectorizing the math.

        Byte-identical to calling :meth:`transmit` once per packet: the
        serialization finish times follow the same float recurrence
        (``numpy.add.accumulate`` is strictly sequential, so the numpy
        and pure-python legs produce bit-equal results), loss draws stay
        per-packet scalar calls in the same RNG order, and sequence
        numbers are reserved packet by packet.  Bursts that could differ
        from the scalar path — drop-tail pressure, a mixed-rate queue
        after ``set_rate``, a down link — fall back to per-packet
        :meth:`transmit`.
        """
        n = len(packets)
        if n == 0:
            return
        if self.deliver is None:
            raise ConfigurationError(f"link {self.name!r} has no delivery callback")
        scheduler = self.scheduler
        now = scheduler.clock._now
        stats = self.stats
        if not self.up:
            stats.packets_in += n
            stats.packets_blackholed += n
            return
        size = packets[0].wire_size
        queue = self._queue
        while queue and queue[0][0] <= now:
            self._queued_bytes -= queue.popleft()[1]
        rate = self.rate_bps
        busy = self._busy_until
        start = busy if busy > now else now
        delta = size * 8.0 / rate
        # The backlog the drop-tail check sees is largest just before the
        # final packet; if even that fits (at the uniform current rate),
        # no per-packet drop decision can differ from the scalar path.
        worst = (start + (n - 1) * delta - now) * rate / 8.0
        if (
            (queue and queue[0][3] != self._rate_epoch)
            or worst + size > self.buffer_bytes
        ):
            for packet in packets:
                self.transmit(packet)
            return
        stats.packets_in += n
        if _np is not None and n >= 8:
            finishes = _np.empty(n + 1)
            finishes[0] = start
            finishes[1:] = delta
            _np.add.accumulate(finishes, out=finishes)
            finish_list = finishes[1:].tolist()
        else:
            finish_list = []
            f = start
            for _ in range(n):
                f = f + delta
                finish_list.append(f)
        self._busy_until = finish_list[-1]
        self._queued_bytes += size * n
        epoch = self._rate_epoch
        qappend = queue.append
        taps = self._taps
        loss_model = self.loss_model
        draw = None if type(loss_model) is NoLoss else loss_model.should_drop
        batch = self._batch
        train = self._train
        tappend = train.append
        reserve = scheduler.reserve_seq
        prop = self.prop_delay
        for i in range(n):
            packet = packets[i]
            finish = finish_list[i]
            qappend((finish, size, rate, epoch))
            if taps:
                for tap in taps:
                    tap(finish, packet)
            if draw is not None and draw():
                stats.packets_lost += 1
                continue
            if batch:
                tappend((finish + prop, reserve(), packet))
                if len(train) == 1 and not self._in_batch:
                    scheduler.post(train[0][0], train[0][1], self._deliver_next)
            else:
                scheduler.call_at(finish + prop, self._deliver, packet)

    def _resolve_fast(self, packet: Any) -> None:
        """(Re)fill the monomorphic receiver cache for ``packet``'s flow.

        Resolves the registered handler exactly like
        :meth:`Host.deliver_segment` and caches the owning connection's
        ``_fast_inorder_data`` / ``_fast_pure_ack`` (or ``None`` for
        receivers without them).
        """
        key = (packet.dst_port, packet.src_ip, packet.src_port)
        conns = getattr(getattr(self.deliver, "__self__", None),
                        "_connections", None)
        conn = None
        data_fn = None
        ack_fn = None
        if conns is not None:
            handler = conns.get(key)
            if handler is None:
                # Flow not registered (yet) — a SYN racing its
                # connection's registration, say.  Don't cache the
                # negative: the very next packet may find it.
                self._fast_key = None
                self._fast_data_fn = None
                self._fast_ack_fn = None
                self._fast_conn = None
                return
            conn = getattr(handler, "__self__", None)
            data_fn = getattr(conn, "_fast_inorder_data", None)
            ack_fn = getattr(conn, "_fast_pure_ack", None)
        self._fast_key = key
        self._fast_data_fn = data_fn
        self._fast_ack_fn = ack_fn
        self._fast_conn = conn

    def _deliver_next(self) -> None:
        """Deliver the train's head and re-post the next reserved entry.

        The body of :meth:`_deliver` is inlined here — this runs once per
        delivered packet on the loss-free fast path.  With
        :data:`VECTOR_TRAINS` on, multi-entry trains are drained in one
        event by :meth:`_deliver_train`, and even single deliveries try
        the receiver's inline in-order fast path — pure inlining of the
        demux + receive chain, with no event reordering involved.
        """
        train = self._train
        if self._vector and len(train) > 1:
            self._deliver_train()
            return
        _t, _seq, packet = train.popleft()
        if train:
            nxt = train[0]
            self.scheduler.post(nxt[0], nxt[1], self._deliver_next)
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += packet.wire_size
        if self._delivery_taps:
            now = self.scheduler.clock._now
            for tap in self._delivery_taps:
                tap(now, packet)
        if self._vector:
            # duck-typed: only TCP-segment-shaped packets (flow 4-tuple
            # plus payload length) can take the inline receive path
            try:
                key = (packet.dst_port, packet.src_ip, packet.src_port)
                plen = packet.payload_len
            except AttributeError:
                key = None
            if key is not None:
                if key != self._fast_key:
                    self._resolve_fast(packet)
                fn = self._fast_data_fn if plen else self._fast_ack_fn
                if fn is not None and fn(packet):
                    packet.release()
                    return
        self.deliver(packet)
        # The receiver is done with the segment (processing is synchronous
        # and the columnar taps copy fields out); pooled segments can be
        # recycled for the sender's next build.
        if getattr(packet, "poolable", False):
            packet.release()

    def _deliver_train(self) -> None:
        """Deliver a train prefix under the single already-fired head event.

        Each entry runs at its exact reserved ``(time, seq)`` with the
        clock pinned to its timestamp, so everything it computes or
        records is bit-equal to one-event-per-packet stepping.  The
        batch must stop strictly before the earliest *live cancellable*
        heap event — timers, monitor ticks and pacing pushes may observe
        state (player bytes, delivery counters) the batch mutates —
        and before the ``run_until`` horizon.  Plain tuple events are
        exclusively link-delivery posts, whose processing commutes with
        the batch: the segments they carry were fully built at transmit
        time and the states they touch are disjoint.  Delayed-ACK timers
        armed *by* the batch tighten the bound as they appear; a
        delivery that needs the generic receive path ends the batch (its
        processing may arm arbitrary timers).  Afterwards the clock is
        restored to the head event's time: the remaining heap events
        re-pin it as they fire, and restoring keeps it below every
        remaining entry so strict-monotonic stepping stays valid.
        """
        scheduler = self.scheduler
        train = self._train
        t0 = train[0][0]
        bound_t = scheduler._horizon
        if bound_t < t0:
            bound_t = t0
        bound_seq = float("inf")  # horizon bound is time-only
        for entry in scheduler._heap:
            if entry[3] is _HANDLE and entry[2].callback is not None:
                if entry[0] < bound_t or (
                    entry[0] == bound_t and entry[1] < bound_seq
                ):
                    bound_t = entry[0]
                    bound_seq = entry[1]
        clock = scheduler.clock
        stats = self.stats
        taps = self._delivery_taps
        tap1 = taps[0] if len(taps) == 1 else None
        deliver = self.deliver
        # Flow key and fast fns unpacked into locals: the loop below runs
        # once per delivered packet, and comparing fields beats building
        # a tuple per packet.  Delivery counters accumulate in locals and
        # flush after the batch — nothing inside a batch reads link stats.
        key = self._fast_key
        key0, key1, key2 = key if key is not None else (None, None, None)
        data_fn = self._fast_data_fn
        ack_fn = self._fast_ack_fn
        n_delivered = 0
        n_bytes = 0
        self._in_batch = True
        try:
            while True:
                t, _seq, packet = train.popleft()
                clock._now = t
                n_delivered += 1
                n_bytes += packet.wire_size
                if tap1 is not None:
                    tap1(t, packet)
                elif taps:
                    for tap in taps:
                        tap(t, packet)
                try:
                    dst_port = packet.dst_port
                    src_ip = packet.src_ip
                    src_port = packet.src_port
                    plen = packet.payload_len
                except AttributeError:
                    # not TCP-segment-shaped: no inline path for it
                    deliver(packet)
                    if getattr(packet, "poolable", False):
                        packet.release()
                    break
                if (dst_port != key0 or src_ip != key1
                        or src_port != key2):
                    self._resolve_fast(packet)
                    key = self._fast_key
                    key0, key1, key2 = key if key is not None else (
                        None, None, None)
                    data_fn = self._fast_data_fn
                    ack_fn = self._fast_ack_fn
                fn = data_fn if plen else ack_fn
                if fn is None:
                    handled = 0
                else:
                    handled = fn(packet)
                if not handled:
                    deliver(packet)
                    if getattr(packet, "poolable", False):
                        packet.release()
                    break  # generic processing may have armed arbitrary timers
                packet.release()
                if handled == 2:
                    # A timer armed *by* the fast delivery tightens the
                    # bound: the data path can arm only the delayed-ACK
                    # timer, the pure-ACK path only the retransmit and
                    # persist timers (via the _try_send it triggers).
                    conn = self._fast_conn
                    if plen:
                        timers = (conn._delack_timer,)
                    else:
                        timers = (conn._rexmit_timer, conn._persist_timer)
                    for timer in timers:
                        if timer is not None and timer.callback is not None:
                            if timer.time < bound_t or (
                                timer.time == bound_t and timer.seq < bound_seq
                            ):
                                bound_t = timer.time
                                bound_seq = timer.seq
                if not train:
                    break
                nxt = train[0]
                if nxt[0] > bound_t or (nxt[0] == bound_t and nxt[1] >= bound_seq):
                    break
        finally:
            self._in_batch = False
            stats.packets_delivered += n_delivered
            stats.bytes_delivered += n_bytes
        if train:
            nxt = train[0]
            scheduler.post(nxt[0], nxt[1], self._deliver_next)
        clock._now = t0

    def _deliver(self, packet: Any) -> None:
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += int(packet.wire_size)
        if self._delivery_taps:
            now = self.scheduler.clock.now()
            for tap in self._delivery_taps:
                tap(now, packet)
        self.deliver(packet)
        if getattr(packet, "poolable", False):
            packet.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link(name={self.name!r}, rate={self.rate_bps / 1e6:.1f}Mbps, "
            f"delay={self.prop_delay * 1e3:.1f}ms)"
        )
