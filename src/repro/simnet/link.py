"""Directed link with finite rate, propagation delay and a drop-tail buffer.

The link models the access bottleneck of the paper's four measurement
networks.  A packet handed to :meth:`Link.transmit`:

1. is dropped if the (virtual) transmit queue already holds more than
   ``buffer_bytes``;
2. otherwise waits for the transmitter to become free, is serialized at
   ``rate_bps``, may be dropped by the configured :class:`LossModel`, and is
   finally delivered ``prop_delay`` seconds after serialization finishes.

The queue is *virtual*: instead of an explicit FIFO we track the time at
which the transmitter becomes idle, ``_busy_until``.  While the rate has
not changed since the oldest queued packet was enqueued, the backlog in
bytes at time ``t`` is exactly ``(busy_until - t) * rate / 8``; a small
per-packet deque prices the backlog at each packet's *enqueue-time* rate
when a mid-flight :meth:`set_rate` would otherwise misprice it.

Packet-train batching
---------------------

Back-to-back deliveries of an uninterrupted train are held in a deque
and only the head occupies the scheduler heap; each delivery posts the
next entry with a sequence number *reserved at transmit time*
(:meth:`EventScheduler.reserve_seq`), so the heap pops in bit-identical
order to scheduling every delivery individually — results stay
byte-identical while the heap stays shallow.  Loss models compose with
batching because drop decisions are made at transmit time in both
paths: a dropped packet simply never joins the train, consuming neither
a scheduler event nor a sequence number, exactly like the unbatched
path.  Fault injectors flip ``up``/``rate`` but never touch scheduled
deliveries, so they are safe with batching too.  The module-level
:data:`BATCH_DELIVERIES` switch turns the fast path off globally, which
the equivalence tests use to prove the two paths agree.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from .errors import ConfigurationError
from .loss import LossModel, NoLoss
from .scheduler import EventScheduler

# A wire packet is anything exposing its on-the-wire size in bytes.
DeliverFn = Callable[[Any], None]
TapFn = Callable[[float, Any], None]

#: Global default for the packet-train delivery fast path.  Tests flip
#: this to prove batched and unbatched runs are byte-identical; there is
#: no reason to disable it otherwise.
BATCH_DELIVERIES = True


class LinkStats:
    """Counters kept by each link."""

    __slots__ = (
        "packets_in",
        "packets_delivered",
        "packets_lost",
        "packets_dropped_queue",
        "packets_blackholed",
        "bytes_delivered",
    )

    def __init__(self) -> None:
        self.packets_in = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        self.packets_dropped_queue = 0
        self.packets_blackholed = 0
        self.bytes_delivered = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkStats({self.as_dict()!r})"


class Link:
    """One direction of a network path."""

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        prop_delay: float,
        *,
        buffer_bytes: int = 256 * 1024,
        loss_model: Optional[LossModel] = None,
        name: str = "link",
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"rate_bps must be positive, got {rate_bps!r}")
        if prop_delay < 0:
            raise ConfigurationError(f"prop_delay must be >= 0, got {prop_delay!r}")
        if buffer_bytes <= 0:
            raise ConfigurationError(f"buffer_bytes must be positive, got {buffer_bytes!r}")
        self.scheduler = scheduler
        self.rate_bps = float(rate_bps)
        self.base_rate_bps = float(rate_bps)
        self.prop_delay = float(prop_delay)
        self.buffer_bytes = int(buffer_bytes)
        self.loss_model = loss_model if loss_model is not None else NoLoss()
        self.name = name
        self.deliver: Optional[DeliverFn] = None
        self.stats = LinkStats()
        self.up = True
        self._busy_until = 0.0
        self._taps: List[TapFn] = []
        self._delivery_taps: List[TapFn] = []
        # Per-packet backlog accounting: (finish_time, size, rate, epoch).
        # The epoch stamps which set_rate() generation a packet was
        # enqueued under, so backlog_bytes() knows when the closed-form
        # virtual-queue formula is still exact.
        self._queue: Deque[Tuple[float, int, float, int]] = deque()
        self._queued_bytes = 0
        self._rate_epoch = 0
        # Delivery train: (deliver_at, reserved_seq, packet).  Only the
        # head entry occupies the scheduler heap.
        self._train: Deque[Tuple[float, int, Any]] = deque()
        self._batch = BATCH_DELIVERIES

    # -- fault state --------------------------------------------------------

    def set_up(self, up: bool) -> None:
        """Bring the link up or down.  A down link blackholes every packet
        handed to it (link outage / flap): the sender learns nothing, which
        is exactly what TCP sees when a last-mile link dies."""
        self.up = bool(up)

    def set_rate(self, rate_bps: float) -> None:
        """Change the serialization rate (temporary bandwidth degradation)."""
        if rate_bps <= 0:
            raise ConfigurationError(f"rate_bps must be positive, got {rate_bps!r}")
        self.rate_bps = float(rate_bps)
        self._rate_epoch += 1

    def reset(self) -> None:
        """Restore fault-free initial state for reuse across runs.

        Clears the loss model's internal state (burst position, packet
        index), brings the link back up, restores the nominal rate and
        abandons any in-flight delivery train (its pending scheduler
        event, if any, belongs to the previous run's scheduler), so
        repeated sessions on one topology see identical loss processes.
        """
        self.loss_model.reset()
        self.up = True
        self.rate_bps = self.base_rate_bps
        self._rate_epoch += 1
        self._train.clear()

    # -- wiring -------------------------------------------------------------

    def connect(self, deliver: DeliverFn) -> None:
        """Set the far-end delivery callback."""
        self.deliver = deliver

    def add_tap(self, tap: TapFn) -> None:
        """Register a sender-side sniffer: ``tap(send_time, packet)`` fires
        for every packet that survives the queue, including ones later lost
        downstream (what a capture box at the transmitter sees)."""
        self._taps.append(tap)

    def add_delivery_tap(self, tap: TapFn) -> None:
        """Register a receiver-side sniffer: ``tap(arrival_time, packet)``
        fires only for packets actually delivered (what tcpdump at the far
        end of the link sees — lost packets never appear)."""
        self._delivery_taps.append(tap)

    # -- queue state --------------------------------------------------------

    def backlog_bytes(self, now: Optional[float] = None) -> float:
        """Bytes currently queued (including the packet in serialization).

        Each queued packet is priced at the rate in force when it was
        *enqueued*: after a mid-flight :meth:`set_rate` degradation the
        already-queued bytes do not shrink just because the conversion
        factor changed.  When the rate has not changed since the oldest
        queued packet, this reduces to the exact closed-form
        ``(busy_until - t) * rate / 8``.
        """
        t = self.scheduler.clock.now() if now is None else now
        queue = self._queue
        while queue and queue[0][0] <= t:
            self._queued_bytes -= queue.popleft()[1]
        if not queue:
            return 0.0
        head_finish, head_size, head_rate, head_epoch = queue[0]
        if head_epoch == self._rate_epoch:
            # Rate unchanged since the oldest queued packet: use the
            # historical closed-form arithmetic (bit-for-bit).
            return max(0.0, self._busy_until - t) * self.rate_bps / 8.0
        # Mixed-rate queue: whole bytes of every queued packet, minus the
        # part of the head already serialized at the head's own rate.
        backlog = float(self._queued_bytes)
        head_start = head_finish - head_size * 8.0 / head_rate
        if t > head_start:
            backlog -= (t - head_start) * head_rate / 8.0
        return max(0.0, backlog)

    def serialization_delay(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.rate_bps

    # -- transmission -------------------------------------------------------

    def transmit(self, packet: Any) -> bool:
        """Enqueue ``packet`` for transmission.

        Returns ``True`` if accepted, ``False`` if dropped at the queue.
        ``packet`` must expose ``wire_size`` (bytes on the wire).
        """
        if self.deliver is None:
            raise ConfigurationError(f"link {self.name!r} has no delivery callback")
        scheduler = self.scheduler
        now = scheduler.clock._now
        stats = self.stats
        stats.packets_in += 1
        if not self.up:
            stats.packets_blackholed += 1
            return True  # swallowed by the outage; the sender cannot tell
        size = packet.wire_size
        # drop-tail check, inlining backlog_bytes() (one call per packet)
        queue = self._queue
        while queue and queue[0][0] <= now:
            self._queued_bytes -= queue.popleft()[1]
        if queue:
            head = queue[0]
            if head[3] == self._rate_epoch:
                backlog = max(0.0, self._busy_until - now) * self.rate_bps / 8.0
            else:
                backlog = float(self._queued_bytes)
                head_start = head[0] - head[1] * 8.0 / head[2]
                if now > head_start:
                    backlog -= (now - head_start) * head[2] / 8.0
                backlog = max(0.0, backlog)
            if backlog + size > self.buffer_bytes:
                stats.packets_dropped_queue += 1
                return False
        elif size > self.buffer_bytes:
            stats.packets_dropped_queue += 1
            return False
        busy = self._busy_until
        start = busy if busy > now else now
        rate = self.rate_bps
        finish = start + size * 8.0 / rate
        self._busy_until = finish
        queue.append((finish, size, rate, self._rate_epoch))
        self._queued_bytes += size
        if self._taps:
            send_time = finish  # moment the last bit leaves the sender
            for tap in self._taps:
                tap(send_time, packet)
        if self._batch:
            # Drop decisions are made here, at transmit time, exactly as
            # the unbatched path does — RNG draw order, the drop set and
            # the surviving packets' reserved seqs are all unchanged.
            loss_model = self.loss_model
            if type(loss_model) is not NoLoss and loss_model.should_drop():
                stats.packets_lost += 1
                return True  # consumed link capacity, vanished downstream
            # Reserve the delivery's tie-break seq now, but only keep the
            # train's head in the scheduler heap.
            train = self._train
            train.append((finish + self.prop_delay, scheduler.reserve_seq(), packet))
            if len(train) == 1:
                scheduler.post(train[0][0], train[0][1], self._deliver_next)
            return True
        if self.loss_model.should_drop():
            stats.packets_lost += 1
            return True  # consumed link capacity, then vanished downstream
        scheduler.call_at(finish + self.prop_delay, self._deliver, packet)
        return True

    def _deliver_next(self) -> None:
        """Deliver the train's head and re-post the next reserved entry.

        The body of :meth:`_deliver` is inlined here — this runs once per
        delivered packet on the loss-free fast path.
        """
        train = self._train
        _t, _seq, packet = train.popleft()
        if train:
            nxt = train[0]
            self.scheduler.post(nxt[0], nxt[1], self._deliver_next)
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += packet.wire_size
        if self._delivery_taps:
            now = self.scheduler.clock._now
            for tap in self._delivery_taps:
                tap(now, packet)
        self.deliver(packet)
        # The receiver is done with the segment (processing is synchronous
        # and the columnar taps copy fields out); pooled segments can be
        # recycled for the sender's next build.
        if getattr(packet, "poolable", False):
            packet.release()

    def _deliver(self, packet: Any) -> None:
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += int(packet.wire_size)
        if self._delivery_taps:
            now = self.scheduler.clock.now()
            for tap in self._delivery_taps:
                tap(now, packet)
        self.deliver(packet)
        if getattr(packet, "poolable", False):
            packet.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link(name={self.name!r}, rate={self.rate_bps / 1e6:.1f}Mbps, "
            f"delay={self.prop_delay * 1e3:.1f}ms)"
        )
