"""Directed link with finite rate, propagation delay and a drop-tail buffer.

The link models the access bottleneck of the paper's four measurement
networks.  A packet handed to :meth:`Link.transmit`:

1. is dropped if the (virtual) transmit queue already holds more than
   ``buffer_bytes``;
2. otherwise waits for the transmitter to become free, is serialized at
   ``rate_bps``, may be dropped by the configured :class:`LossModel`, and is
   finally delivered ``prop_delay`` seconds after serialization finishes.

The queue is *virtual*: instead of an explicit FIFO we track the time at
which the transmitter becomes idle, ``_busy_until``; the backlog in bytes at
time ``t`` is ``(busy_until - t) * rate / 8``.  This is exact for a FIFO
drop-tail queue and avoids per-packet bookkeeping.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from .errors import ConfigurationError
from .loss import LossModel, NoLoss
from .scheduler import EventScheduler

# A wire packet is anything exposing its on-the-wire size in bytes.
DeliverFn = Callable[[Any], None]
TapFn = Callable[[float, Any], None]


class LinkStats:
    """Counters kept by each link."""

    __slots__ = (
        "packets_in",
        "packets_delivered",
        "packets_lost",
        "packets_dropped_queue",
        "packets_blackholed",
        "bytes_delivered",
    )

    def __init__(self) -> None:
        self.packets_in = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        self.packets_dropped_queue = 0
        self.packets_blackholed = 0
        self.bytes_delivered = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkStats({self.as_dict()!r})"


class Link:
    """One direction of a network path."""

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        prop_delay: float,
        *,
        buffer_bytes: int = 256 * 1024,
        loss_model: Optional[LossModel] = None,
        name: str = "link",
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"rate_bps must be positive, got {rate_bps!r}")
        if prop_delay < 0:
            raise ConfigurationError(f"prop_delay must be >= 0, got {prop_delay!r}")
        if buffer_bytes <= 0:
            raise ConfigurationError(f"buffer_bytes must be positive, got {buffer_bytes!r}")
        self.scheduler = scheduler
        self.rate_bps = float(rate_bps)
        self.base_rate_bps = float(rate_bps)
        self.prop_delay = float(prop_delay)
        self.buffer_bytes = int(buffer_bytes)
        self.loss_model = loss_model if loss_model is not None else NoLoss()
        self.name = name
        self.deliver: Optional[DeliverFn] = None
        self.stats = LinkStats()
        self.up = True
        self._busy_until = 0.0
        self._taps: List[TapFn] = []
        self._delivery_taps: List[TapFn] = []

    # -- fault state --------------------------------------------------------

    def set_up(self, up: bool) -> None:
        """Bring the link up or down.  A down link blackholes every packet
        handed to it (link outage / flap): the sender learns nothing, which
        is exactly what TCP sees when a last-mile link dies."""
        self.up = bool(up)

    def set_rate(self, rate_bps: float) -> None:
        """Change the serialization rate (temporary bandwidth degradation)."""
        if rate_bps <= 0:
            raise ConfigurationError(f"rate_bps must be positive, got {rate_bps!r}")
        self.rate_bps = float(rate_bps)

    def reset(self) -> None:
        """Restore fault-free initial state for reuse across runs.

        Clears the loss model's internal state (burst position, packet
        index), brings the link back up and restores the nominal rate, so
        repeated sessions on one topology see identical loss processes.
        """
        self.loss_model.reset()
        self.up = True
        self.rate_bps = self.base_rate_bps

    # -- wiring -------------------------------------------------------------

    def connect(self, deliver: DeliverFn) -> None:
        """Set the far-end delivery callback."""
        self.deliver = deliver

    def add_tap(self, tap: TapFn) -> None:
        """Register a sender-side sniffer: ``tap(send_time, packet)`` fires
        for every packet that survives the queue, including ones later lost
        downstream (what a capture box at the transmitter sees)."""
        self._taps.append(tap)

    def add_delivery_tap(self, tap: TapFn) -> None:
        """Register a receiver-side sniffer: ``tap(arrival_time, packet)``
        fires only for packets actually delivered (what tcpdump at the far
        end of the link sees — lost packets never appear)."""
        self._delivery_taps.append(tap)

    # -- queue state --------------------------------------------------------

    def backlog_bytes(self, now: Optional[float] = None) -> float:
        """Bytes currently queued (including the packet in serialization)."""
        t = self.scheduler.clock.now() if now is None else now
        waiting = max(0.0, self._busy_until - t)
        return waiting * self.rate_bps / 8.0

    def serialization_delay(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.rate_bps

    # -- transmission -------------------------------------------------------

    def transmit(self, packet: Any) -> bool:
        """Enqueue ``packet`` for transmission.

        Returns ``True`` if accepted, ``False`` if dropped at the queue.
        ``packet`` must expose ``wire_size`` (bytes on the wire).
        """
        if self.deliver is None:
            raise ConfigurationError(f"link {self.name!r} has no delivery callback")
        now = self.scheduler.clock.now()
        self.stats.packets_in += 1
        if not self.up:
            self.stats.packets_blackholed += 1
            return True  # swallowed by the outage; the sender cannot tell
        size = int(packet.wire_size)
        if self.backlog_bytes(now) + size > self.buffer_bytes:
            self.stats.packets_dropped_queue += 1
            return False
        start = max(now, self._busy_until)
        finish = start + self.serialization_delay(size)
        self._busy_until = finish
        send_time = finish  # moment the last bit leaves the sender
        for tap in self._taps:
            tap(send_time, packet)
        if self.loss_model.should_drop():
            self.stats.packets_lost += 1
            return True  # consumed link capacity, then vanished downstream
        deliver_at = finish + self.prop_delay
        self.scheduler.at(
            deliver_at, lambda p=packet: self._deliver(p), label=f"{self.name}:deliver"
        )
        return True

    def _deliver(self, packet: Any) -> None:
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += int(packet.wire_size)
        now = self.scheduler.clock.now()
        for tap in self._delivery_taps:
            tap(now, packet)
        assert self.deliver is not None
        self.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link(name={self.name!r}, rate={self.rate_bps / 1e6:.1f}Mbps, "
            f"delay={self.prop_delay * 1e3:.1f}ms)"
        )
