"""TCP header serialization, including options and window scaling.

Real 2011 streaming sessions advertise multi-megabyte receive windows, which
only fit the 16-bit window field through the window-scale option (RFC 1323).
The writer emits MSS + window-scale options on SYN segments and scales the
window on all others; the reader tracks the negotiated shift per direction —
exactly what tcpdump-based analyses (like the paper's Figure 2b) must do.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from .ipv4 import checksum, ip_to_bytes

HEADER_LEN = 20

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10

OPT_END = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_WSCALE = 3


class TcpWireError(ValueError):
    """Malformed TCP segment."""


@dataclass
class WireSegment:
    """A parsed on-the-wire TCP segment."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window_raw: int          # the 16-bit field, unscaled
    payload: bytes
    mss: Optional[int] = None
    wscale: Optional[int] = None

    def scaled_window(self, shift: int) -> int:
        """Actual window in bytes given the negotiated scale shift."""
        if self.flags & SYN:
            return self.window_raw  # scale never applies to the SYN itself
        return self.window_raw << shift


def _build_options(mss: Optional[int], wscale: Optional[int]) -> bytes:
    options = b""
    if mss is not None:
        options += struct.pack("!BBH", OPT_MSS, 4, mss)
    if wscale is not None:
        options += struct.pack("!BBB", OPT_WSCALE, 3, wscale) + bytes([OPT_NOP])
    return options


def _parse_options(raw: bytes) -> Tuple[Optional[int], Optional[int]]:
    mss = None
    wscale = None
    i = 0
    while i < len(raw):
        kind = raw[i]
        if kind == OPT_END:
            break
        if kind == OPT_NOP:
            i += 1
            continue
        if i + 1 >= len(raw):
            raise TcpWireError("truncated TCP option")
        length = raw[i + 1]
        if length < 2 or i + length > len(raw):
            raise TcpWireError(f"bad TCP option length {length}")
        body = raw[i + 2 : i + length]
        if kind == OPT_MSS and len(body) == 2:
            (mss,) = struct.unpack("!H", body)
        elif kind == OPT_WSCALE and len(body) == 1:
            wscale = body[0]
        i += length
    return mss, wscale


def pseudo_header(src_ip: str, dst_ip: str, tcp_len: int) -> bytes:
    return ip_to_bytes(src_ip) + ip_to_bytes(dst_ip) + struct.pack("!BBH", 0, 6, tcp_len)


def pack(
    src_ip: str,
    dst_ip: str,
    src_port: int,
    dst_port: int,
    *,
    seq: int,
    ack: int,
    flags: int,
    window: int,
    payload: bytes = b"",
    mss: Optional[int] = None,
    wscale: Optional[int] = None,
) -> bytes:
    """Serialize one TCP segment (with checksum over the pseudo-header).

    ``window`` is the raw 16-bit field value; callers apply scaling.
    """
    if not 0 <= window <= 0xFFFF:
        raise TcpWireError(f"window field out of range: {window}")
    options = _build_options(mss, wscale)
    if len(options) % 4:
        options += bytes([OPT_END] * (4 - len(options) % 4))
    data_offset_words = (HEADER_LEN + len(options)) // 4
    header = struct.pack(
        "!HHIIBBHHH",
        src_port,
        dst_port,
        seq & 0xFFFFFFFF,
        ack & 0xFFFFFFFF,
        data_offset_words << 4,
        flags,
        window,
        0,  # checksum placeholder
        0,  # urgent pointer
    )
    segment = header + options + payload
    csum = checksum(pseudo_header(src_ip, dst_ip, len(segment)) + segment)
    return segment[:16] + struct.pack("!H", csum) + segment[18:]


def unpack(src_ip: str, dst_ip: str, segment: bytes, *,
           verify_checksum: bool = True) -> WireSegment:
    """Parse a TCP segment; checksum verified against the pseudo-header."""
    if len(segment) < HEADER_LEN:
        raise TcpWireError(f"segment too short: {len(segment)} bytes")
    (src_port, dst_port, seq, ack, offset_flags, flags, window, _csum, _urg) = (
        struct.unpack("!HHIIBBHHH", segment[:HEADER_LEN])
    )
    data_offset = (offset_flags >> 4) * 4
    if data_offset < HEADER_LEN or data_offset > len(segment):
        raise TcpWireError(f"bad data offset {data_offset}")
    if verify_checksum:
        if checksum(pseudo_header(src_ip, dst_ip, len(segment)) + segment) != 0:
            raise TcpWireError("TCP checksum mismatch")
    mss, wscale = _parse_options(segment[HEADER_LEN:data_offset])
    return WireSegment(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        window_raw=window,
        payload=segment[data_offset:],
        mss=mss,
        wscale=wscale,
    )
