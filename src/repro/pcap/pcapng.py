"""Minimal pcapng (pcap-next-generation) reader.

The paper's tooling consumed classic libpcap files (tcpdump/windump), but a
*re-collected* trace in 2026 most likely comes out of Wireshark/dumpcap as
pcapng.  This module reads the subset needed to feed the analysis pipeline:

* Section Header Blocks (SHB) — byte order, section boundaries;
* Interface Description Blocks (IDB) — link type and timestamp resolution;
* Enhanced Packet Blocks (EPB) — the packets;
* Simple Packet Blocks (SPB) — accepted, stamped at 0 (no timestamps);
* all other block types are skipped.

Writing stays classic pcap (:mod:`repro.pcap.pcapfile`): universally read,
and the simulator has no use for pcapng's extra metadata.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Optional, Tuple

from .pcapfile import PcapError

SHB_TYPE = 0x0A0D0D0A
IDB_TYPE = 0x00000001
SPB_TYPE = 0x00000003
EPB_TYPE = 0x00000006
BYTE_ORDER_MAGIC = 0x1A2B3C4D

OPT_ENDOFOPT = 0
OPT_IF_TSRESOL = 9


@dataclass
class _Interface:
    link_type: int
    ticks_per_second: float


class PcapngReader:
    """Iterate ``(timestamp, captured_bytes, original_length)`` records.

    Matches :class:`~repro.pcap.pcapfile.PcapReader`'s iteration contract,
    so :func:`repro.pcap.capture.records_from_pcap` can consume either
    format transparently.
    """

    def __init__(self, fileobj: BinaryIO) -> None:
        self._file = fileobj
        self._endian = "<"
        self._interfaces: List[_Interface] = []
        self.linktype: Optional[int] = None
        self.snaplen = 0
        header = fileobj.read(12)
        if len(header) < 12:
            raise PcapError("truncated pcapng section header")
        (block_type,) = struct.unpack("<I", header[:4])
        if block_type != SHB_TYPE:
            raise PcapError(f"not a pcapng file (first block 0x{block_type:08x})")
        (magic,) = struct.unpack("<I", header[8:12])
        if magic == BYTE_ORDER_MAGIC:
            self._endian = "<"
        elif magic == struct.unpack("<I", struct.pack(">I", BYTE_ORDER_MAGIC))[0]:
            self._endian = ">"
        else:
            raise PcapError(f"bad pcapng byte-order magic 0x{magic:08x}")
        (total_length,) = struct.unpack(self._endian + "I", header[4:8])
        # consume the rest of the SHB
        self._read_exact(total_length - 12)

    def _read_exact(self, n: int) -> bytes:
        data = self._file.read(n)
        if len(data) < n:
            raise PcapError("truncated pcapng block")
        return data

    def _parse_idb(self, body: bytes) -> None:
        if len(body) < 8:
            raise PcapError("truncated interface description block")
        link_type, _reserved, snaplen = struct.unpack(
            self._endian + "HHI", body[:8])
        ticks = 1e6  # default: microsecond resolution
        options = body[8:]
        i = 0
        while i + 4 <= len(options):
            code, length = struct.unpack(self._endian + "HH",
                                         options[i:i + 4])
            if code == OPT_ENDOFOPT:
                break
            value = options[i + 4:i + 4 + length]
            if code == OPT_IF_TSRESOL and length >= 1:
                resol = value[0]
                if resol & 0x80:
                    ticks = float(2 ** (resol & 0x7F))
                else:
                    ticks = float(10 ** resol)
            i += 4 + length + (-length % 4)
        self._interfaces.append(_Interface(link_type, ticks))
        if self.linktype is None:
            self.linktype = link_type
            self.snaplen = snaplen

    def __iter__(self) -> Iterator[Tuple[float, bytes, int]]:
        while True:
            head = self._file.read(8)
            if not head:
                return
            if len(head) < 8:
                raise PcapError("truncated pcapng block header")
            block_type, total_length = struct.unpack(self._endian + "II", head)
            if total_length < 12 or total_length % 4:
                raise PcapError(f"bad pcapng block length {total_length}")
            body = self._read_exact(total_length - 12)
            trailer = self._read_exact(4)
            (trailer_length,) = struct.unpack(self._endian + "I", trailer)
            if trailer_length != total_length:
                raise PcapError("pcapng block length trailer mismatch")
            if block_type == IDB_TYPE:
                self._parse_idb(body)
            elif block_type == EPB_TYPE:
                yield self._parse_epb(body)
            elif block_type == SPB_TYPE:
                yield self._parse_spb(body)
            elif block_type == SHB_TYPE:
                # a new section: interfaces reset
                self._interfaces.clear()
            # anything else (name resolution, statistics, ...) is skipped

    def _parse_epb(self, body: bytes) -> Tuple[float, bytes, int]:
        if len(body) < 20:
            raise PcapError("truncated enhanced packet block")
        iface_id, ts_high, ts_low, captured, original = struct.unpack(
            self._endian + "IIIII", body[:20])
        if iface_id >= len(self._interfaces):
            raise PcapError(f"EPB references unknown interface {iface_id}")
        data = body[20:20 + captured]
        if len(data) < captured:
            raise PcapError("enhanced packet block shorter than captured length")
        ticks = self._interfaces[iface_id].ticks_per_second
        timestamp = ((ts_high << 32) | ts_low) / ticks
        return timestamp, data, original

    def _parse_spb(self, body: bytes) -> Tuple[float, bytes, int]:
        if len(body) < 4:
            raise PcapError("truncated simple packet block")
        (original,) = struct.unpack(self._endian + "I", body[:4])
        data = body[4:4 + min(original, len(body) - 4)]
        return 0.0, data, original


def is_pcapng(path: str) -> bool:
    """Sniff whether the file at ``path`` is pcapng (vs classic pcap)."""
    with open(path, "rb") as f:
        head = f.read(4)
    if len(head) < 4:
        return False
    return struct.unpack("<I", head)[0] == SHB_TYPE


class PcapngWriter:
    """Write a minimal, valid pcapng stream (one section, one interface).

    Exists mainly so the reader can be tested against real bytes and so
    captures can be handed to pcapng-only tooling.
    """

    def __init__(self, fileobj: BinaryIO, linktype: int = 1,
                 snaplen: int = 65535) -> None:
        self._file = fileobj
        self.packets_written = 0
        # SHB: type, length, magic, version 1.0, section length -1, trailer
        shb = struct.pack("<IIIHHq", SHB_TYPE, 28, BYTE_ORDER_MAGIC, 1, 0, -1)
        self._file.write(shb + struct.pack("<I", 28))
        # IDB: linktype, reserved, snaplen, no options
        idb = struct.pack("<IIHHI", IDB_TYPE, 20, linktype, 0, snaplen)
        self._file.write(idb + struct.pack("<I", 20))

    def write_packet(self, timestamp: float, frame: bytes) -> None:
        ticks = int(round(timestamp * 1e6))
        captured = len(frame)
        pad = -captured % 4
        total = 32 + captured + pad
        self._file.write(struct.pack(
            "<IIIIIII", EPB_TYPE, total, 0,
            (ticks >> 32) & 0xFFFFFFFF, ticks & 0xFFFFFFFF,
            captured, captured))
        self._file.write(frame + b"\x00" * pad)
        self._file.write(struct.pack("<I", total))
        self.packets_written += 1
