"""Classic libpcap file format (the format tcpdump/windump wrote in 2011).

Global header: magic 0xa1b2c3d4, version 2.4, linktype 1 (Ethernet).
Each record: ts_sec, ts_usec, incl_len (captured), orig_len (on the wire).
Both byte orders are accepted on read.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, List, Tuple, Union

MAGIC_NATIVE = 0xA1B2C3D4
MAGIC_SWAPPED = 0xD4C3B2A1
VERSION_MAJOR = 2
VERSION_MINOR = 4
LINKTYPE_ETHERNET = 1
DEFAULT_SNAPLEN = 65535

GLOBAL_HEADER_LEN = 24
RECORD_HEADER_LEN = 16


class PcapError(ValueError):
    """Malformed pcap file."""


class PcapWriter:
    """Write packets to a classic pcap stream."""

    def __init__(self, fileobj: BinaryIO, snaplen: int = DEFAULT_SNAPLEN,
                 linktype: int = LINKTYPE_ETHERNET) -> None:
        if snaplen <= 0:
            raise PcapError(f"snaplen must be positive, got {snaplen}")
        self._file = fileobj
        self.snaplen = snaplen
        self.linktype = linktype
        self.packets_written = 0
        self._file.write(
            struct.pack(
                "!IHHiIII",
                MAGIC_NATIVE,
                VERSION_MAJOR,
                VERSION_MINOR,
                0,  # thiszone
                0,  # sigfigs
                snaplen,
                linktype,
            )
        )

    def write_packet(self, timestamp: float, frame: bytes) -> None:
        """Append one frame captured at ``timestamp`` (seconds)."""
        if timestamp < 0:
            raise PcapError(f"negative timestamp {timestamp!r}")
        ts_sec = int(timestamp)
        ts_usec = int(round((timestamp - ts_sec) * 1_000_000))
        if ts_usec >= 1_000_000:
            ts_sec += 1
            ts_usec -= 1_000_000
        captured = frame[: self.snaplen]
        self._file.write(
            struct.pack("!IIII", ts_sec, ts_usec, len(captured), len(frame))
        )
        self._file.write(captured)
        self.packets_written += 1


class PcapReader:
    """Iterate ``(timestamp, captured_bytes, original_length)`` records."""

    def __init__(self, fileobj: BinaryIO) -> None:
        self._file = fileobj
        header = fileobj.read(GLOBAL_HEADER_LEN)
        if len(header) < GLOBAL_HEADER_LEN:
            raise PcapError("truncated global header")
        (magic,) = struct.unpack("!I", header[:4])
        if magic == MAGIC_NATIVE:
            self._endian = "!"
        elif magic == MAGIC_SWAPPED:
            self._endian = "<"
        else:
            raise PcapError(f"bad magic 0x{magic:08x}")
        (self.version_major, self.version_minor, _tz, _sig, self.snaplen,
         self.linktype) = struct.unpack(self._endian + "HHiIII", header[4:])

    def __iter__(self) -> Iterator[Tuple[float, bytes, int]]:
        while True:
            header = self._file.read(RECORD_HEADER_LEN)
            if not header:
                return
            if len(header) < RECORD_HEADER_LEN:
                raise PcapError("truncated record header")
            ts_sec, ts_usec, incl_len, orig_len = struct.unpack(
                self._endian + "IIII", header
            )
            data = self._file.read(incl_len)
            if len(data) < incl_len:
                raise PcapError("truncated packet data")
            yield ts_sec + ts_usec / 1_000_000, data, orig_len


def write_pcap(path: str, packets, snaplen: int = DEFAULT_SNAPLEN) -> int:
    """Write ``(timestamp, frame_bytes)`` pairs to ``path``; returns count."""
    with open(path, "wb") as f:
        writer = PcapWriter(f, snaplen=snaplen)
        for timestamp, frame in packets:
            writer.write_packet(timestamp, frame)
        return writer.packets_written


def read_pcap(path: str) -> List[Tuple[float, bytes, int]]:
    """Read all records of the file at ``path``."""
    with open(path, "rb") as f:
        return list(PcapReader(f))
