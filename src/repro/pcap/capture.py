"""Capturing simulated traffic, tcpdump-style.

:class:`TraceCapture` attaches to links/paths as a tap and records every
segment (including ones later lost downstream, as a sender-side tcpdump
would).  Records are exposed in two equivalent forms:

* :attr:`TraceCapture.records` — :class:`PacketRecord` objects, the fast
  path the analysis pipeline consumes directly;
* :meth:`TraceCapture.write_pcap` — byte-exact libpcap output, which
  :func:`records_from_pcap` parses back into identical ``PacketRecord``
  lists.  The round trip exercises real header serialization (checksums,
  32-bit sequence wrap, window scaling), proving the analysis would work
  unchanged on re-collected real traces.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..tcp.constants import ACK as F_ACK
from ..tcp.constants import FIN as F_FIN
from ..tcp.constants import SYN as F_SYN
from ..tcp.constants import header_overhead
from ..tcp.segment import TcpSegment
from ..tcp.seqspace import wrap
from . import ethernet, ipv4, tcpwire
from .pcapfile import DEFAULT_SNAPLEN, PcapReader, PcapWriter

#: Window-scale shift advertised on SYNs; 65535 << 7 ≈ 8 MB max window.
WSCALE_SHIFT = 7


@dataclass
class PacketRecord:
    """One captured TCP segment, as the analysis pipeline sees it."""

    timestamp: float
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    seq: int                 # wrapped 32-bit wire value
    ack: int                 # wrapped 32-bit wire value
    flags: int
    payload_len: int
    window: int              # bytes, after window-scale reconstruction
    wire_len: int
    payload: Optional[bytes] = None

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & F_SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & F_FIN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & F_ACK)

    def flow_key(self) -> Tuple[str, int, str, int]:
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)


def _scaled_window_field(window: int, is_syn: bool) -> int:
    """The 16-bit window field value for a byte window."""
    if is_syn:
        return min(window, 0xFFFF)
    return min(window >> WSCALE_SHIFT, 0xFFFF)


def _window_from_field(field: int, is_syn: bool) -> int:
    if is_syn:
        return field
    return field << WSCALE_SHIFT


def record_from_segment(timestamp: float, seg: TcpSegment,
                        keep_payload: bool = True) -> PacketRecord:
    """Convert a simulated segment to a :class:`PacketRecord`.

    The advertised window is quantized exactly as the wire's scaled 16-bit
    field would, so fast-path records equal pcap-round-trip records.
    """
    field = _scaled_window_field(seg.window, seg.is_syn)
    return PacketRecord(
        timestamp=timestamp,
        src_ip=seg.src_ip,
        src_port=seg.src_port,
        dst_ip=seg.dst_ip,
        dst_port=seg.dst_port,
        seq=wrap(seg.seq),
        ack=wrap(seg.ack),
        flags=seg.flags,
        payload_len=seg.payload_len,
        window=_window_from_field(field, seg.is_syn),
        wire_len=seg.wire_size,
        payload=seg.payload if keep_payload else None,
    )


def segment_to_frame(seg: TcpSegment) -> bytes:
    """Serialize a simulated segment into real Ethernet/IPv4/TCP bytes."""
    is_syn = seg.is_syn
    tcp_bytes = tcpwire.pack(
        seg.src_ip,
        seg.dst_ip,
        seg.src_port,
        seg.dst_port,
        seq=wrap(seg.seq),
        ack=wrap(seg.ack),
        flags=seg.flags,
        window=_scaled_window_field(seg.window, is_syn),
        payload=seg.materialized_payload(),
        mss=1460 if is_syn else None,
        wscale=WSCALE_SHIFT if is_syn else None,
    )
    ip_bytes = ipv4.pack(seg.src_ip, seg.dst_ip, tcp_bytes)
    return ethernet.pack(
        ethernet.mac_from_ip(seg.dst_ip),
        ethernet.mac_from_ip(seg.src_ip),
        ip_bytes,
    )


class TraceCapture:
    """A sniffer recording per-segment fields into columnar buffers.

    The tap copies each segment's scalar fields into parallel ``array``
    columns instead of retaining the segment object — one append per
    field, no per-packet Python object.  That keeps multi-megabyte
    sessions allocation-lean (and lets the TCP layer pool segments: once
    the tap has copied the fields, nothing holds a reference).  Real
    payloads (HTTP heads, container metadata) are kept in a sparse dict
    keyed by capture index; virtual video-body payloads store nothing.

    :class:`PacketRecord` objects are materialized lazily, on each
    :attr:`records` access, sorted by timestamp with capture order
    breaking ties.
    """

    def __init__(self, name: str = "capture", keep_payload: bool = True) -> None:
        self.name = name
        self.keep_payload = keep_payload
        self._t = array("d")           # capture timestamps
        self._flow = array("i")        # index into _flow_table
        self._seq = array("q")         # unwrapped sequence numbers
        self._ack = array("q")         # unwrapped ack numbers
        self._flags = array("i")
        self._plen = array("i")        # payload lengths
        self._window = array("q")      # raw byte windows (pre-quantization)
        self._payloads: Dict[int, bytes] = {}   # capture index -> real payload
        self._flow_table: List[Tuple[str, int, str, int]] = []
        self._flow_index: Dict[Tuple[str, int, str, int], int] = {}
        self._stopped = False
        self._records_cache: Optional[List[PacketRecord]] = None
        # The tap runs once per captured packet; prebinding the column
        # append methods keeps it to one call per field.
        self._t_append = self._t.append
        self._flow_append = self._flow.append
        self._seq_append = self._seq.append
        self._ack_append = self._ack.append
        self._flags_append = self._flags.append
        self._plen_append = self._plen.append
        self._window_append = self._window.append

    # -- tap interface ------------------------------------------------------

    def tap(self, timestamp: float, segment: TcpSegment) -> None:
        """Link-tap callback; ignores packets after :meth:`stop`."""
        if self._stopped:
            return
        key = (segment.src_ip, segment.src_port,
               segment.dst_ip, segment.dst_port)
        idx = self._flow_index.get(key)
        if idx is None:
            idx = self._flow_index[key] = len(self._flow_table)
            self._flow_table.append(key)
        payload = segment.payload
        if payload is not None:
            self._payloads[len(self._t)] = payload
        self._t_append(timestamp)
        self._flow_append(idx)
        self._seq_append(segment.seq)
        self._ack_append(segment.ack)
        self._flags_append(segment.flags)
        self._plen_append(segment.payload_len)
        self._window_append(segment.window)

    def attach(self, *links) -> "TraceCapture":
        """Attach to any number of links or paths; returns self.

        Paths are tapped from the *client's* vantage point (endpoint b):
        downstream packets are stamped on arrival and lost ones never
        appear, exactly like a tcpdump on the measurement machine.
        Plain links are tapped at the sender side.
        """
        for link in links:
            if hasattr(link, "add_client_side_tap"):
                link.add_client_side_tap(self.tap)
            else:
                link.add_tap(self.tap)
        return self

    def stop(self) -> None:
        """Stop recording (the 180-second capture cutoff of Section 4.2)."""
        self._stopped = True

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._t)

    def _order(self) -> List[int]:
        """Capture indices sorted by timestamp, capture order on ties."""
        ts = self._t
        return sorted(range(len(ts)), key=ts.__getitem__)

    @property
    def records(self) -> List[PacketRecord]:
        """All captured segments as analysis records, in capture order.

        Materialized on first access and cached (keyed on the capture
        length) so repeated analysis passes share one record list.
        """
        cached = self._records_cache
        if cached is not None and len(cached) == len(self._t):
            return cached
        ts, flows = self._t, self._flow
        seqs, acks = self._seq, self._ack
        flagcol, plens, windows = self._flags, self._plen, self._window
        table = self._flow_table
        payloads = self._payloads if self.keep_payload else {}
        payload_get = payloads.get
        # Bypass the dataclass __init__ (keyword processing dominates when
        # materializing tens of thousands of records): build the instance
        # dict directly.  header_overhead() is a flags-only branch, so
        # hoist both of its values out of the loop.
        new = PacketRecord.__new__
        cls = PacketRecord
        overhead = header_overhead(0)
        syn_overhead = header_overhead(F_SYN)
        out = []
        append = out.append
        for i in self._order():
            flags = flagcol[i]
            window = windows[i]
            # quantize exactly as the wire's scaled 16-bit field would
            if flags & F_SYN:
                window = min(window, 0xFFFF)
                wire_len = syn_overhead
            else:
                window = min(window >> WSCALE_SHIFT, 0xFFFF) << WSCALE_SHIFT
                wire_len = overhead
            src_ip, src_port, dst_ip, dst_port = table[flows[i]]
            plen = plens[i]
            rec = new(cls)
            rec.__dict__ = {
                "timestamp": ts[i],
                "src_ip": src_ip,
                "src_port": src_port,
                "dst_ip": dst_ip,
                "dst_port": dst_port,
                "seq": seqs[i] & 0xFFFFFFFF,
                "ack": acks[i] & 0xFFFFFFFF,
                "flags": flags,
                "payload_len": plen,
                "window": window,
                "wire_len": wire_len + plen,
                "payload": payload_get(i),
            }
            append(rec)
        self._records_cache = out
        return out

    def iter_segments(self):
        """Yield ``(timestamp, TcpSegment)`` in record order.

        Segments are *reconstructed* from the columns (the originals are
        not retained); pcap writers use this to serialize real frames.
        """
        table = self._flow_table
        for i in self._order():
            src_ip, src_port, dst_ip, dst_port = table[self._flow[i]]
            yield self._t[i], TcpSegment(
                src_ip, src_port, dst_ip, dst_port,
                seq=self._seq[i], ack=self._ack[i], flags=self._flags[i],
                window=self._window[i], payload_len=self._plen[i],
                payload=self._payloads.get(i),
            )

    def write_pcap(self, path: str, snaplen: int = DEFAULT_SNAPLEN) -> int:
        """Serialize the capture to a libpcap file; returns packet count."""
        with open(path, "wb") as f:
            writer = PcapWriter(f, snaplen=snaplen)
            for timestamp, seg in self.iter_segments():
                writer.write_packet(timestamp, segment_to_frame(seg))
            return writer.packets_written


def records_from_pcap(path: str, *, verify_checksums: bool = True
                      ) -> List[PacketRecord]:
    """Parse a capture file into :class:`PacketRecord` objects.

    Both classic libpcap (tcpdump/windump) and pcapng (Wireshark/dumpcap)
    are accepted — the format is sniffed from the first block.  Window-
    scale shifts are learned from each direction's SYN, as any tcpdump-
    based analysis must.  Truncated (snaplen-limited) payloads are still
    accounted at their original length.
    """
    from .pcapng import PcapngReader, is_pcapng

    records: List[PacketRecord] = []
    with open(path, "rb") as f:
        reader = PcapngReader(f) if is_pcapng(path) else PcapReader(f)
        scales: Dict[Tuple[str, int, str, int], int] = {}
        for timestamp, frame, orig_len in reader:
            _dst, _src, ethertype, ip_payload = ethernet.unpack(frame)
            if ethertype != ethernet.ETHERTYPE_IPV4:
                continue
            truncated = orig_len > len(frame)
            src_ip, dst_ip, proto, tcp_bytes = ipv4.unpack(
                ip_payload, verify_checksum=verify_checksums and not truncated
            )
            if proto != ipv4.PROTO_TCP:
                continue
            wire = tcpwire.unpack(
                src_ip, dst_ip, tcp_bytes,
                verify_checksum=verify_checksums and not truncated,
            )
            key = (src_ip, wire.src_port, dst_ip, wire.dst_port)
            if wire.flags & tcpwire.SYN:
                scales[key] = wire.wscale or 0
            shift = scales.get(key, WSCALE_SHIFT)
            # payload length on the wire (before snaplen truncation):
            # orig_len - ethernet - ip header - tcp data offset
            tcp_header_len = len(tcp_bytes) - len(wire.payload)
            payload_len = orig_len - ethernet.HEADER_LEN - ipv4.HEADER_LEN - tcp_header_len
            records.append(
                PacketRecord(
                    timestamp=timestamp,
                    src_ip=src_ip,
                    src_port=wire.src_port,
                    dst_ip=dst_ip,
                    dst_port=wire.dst_port,
                    seq=wire.seq,
                    ack=wire.ack,
                    flags=wire.flags,
                    payload_len=payload_len,
                    window=wire.scaled_window(shift),
                    wire_len=orig_len,
                    payload=wire.payload if not truncated else None,
                )
            )
    return records
