"""Ethernet II framing."""

from __future__ import annotations

import struct
from typing import Tuple

ETHERTYPE_IPV4 = 0x0800
HEADER_LEN = 14


class EthernetError(ValueError):
    """Malformed Ethernet frame."""


def mac_from_ip(ip: str) -> bytes:
    """A deterministic locally-administered MAC for a simulated IP."""
    parts = [int(p) for p in ip.split(".")]
    if len(parts) != 4 or not all(0 <= p <= 255 for p in parts):
        raise EthernetError(f"invalid IPv4 address {ip!r}")
    return bytes([0x02, 0x00] + parts)


def pack(dst_mac: bytes, src_mac: bytes, payload: bytes,
         ethertype: int = ETHERTYPE_IPV4) -> bytes:
    """Serialize one Ethernet II frame."""
    if len(dst_mac) != 6 or len(src_mac) != 6:
        raise EthernetError("MAC addresses must be 6 bytes")
    return dst_mac + src_mac + struct.pack("!H", ethertype) + payload


def unpack(frame: bytes) -> Tuple[bytes, bytes, int, bytes]:
    """Parse a frame into ``(dst_mac, src_mac, ethertype, payload)``."""
    if len(frame) < HEADER_LEN:
        raise EthernetError(f"frame too short: {len(frame)} bytes")
    dst = frame[0:6]
    src = frame[6:12]
    (ethertype,) = struct.unpack("!H", frame[12:14])
    return dst, src, ethertype, frame[14:]
