"""Packet capture: libpcap file I/O and Ethernet/IPv4/TCP wire formats.

The simulator's traffic can be written as byte-exact pcap files and parsed
back, so the analysis pipeline (:mod:`repro.analysis`) runs identically on
simulated captures and on re-collected real tcpdump traces.
"""

from . import ethernet, ipv4, tcpwire
from .capture import (
    WSCALE_SHIFT,
    PacketRecord,
    TraceCapture,
    record_from_segment,
    records_from_pcap,
    segment_to_frame,
)
from .pcapfile import (
    DEFAULT_SNAPLEN,
    LINKTYPE_ETHERNET,
    PcapError,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)
from .pcapng import PcapngReader, PcapngWriter, is_pcapng

__all__ = [
    "PacketRecord",
    "TraceCapture",
    "record_from_segment",
    "records_from_pcap",
    "segment_to_frame",
    "WSCALE_SHIFT",
    "PcapReader",
    "PcapWriter",
    "PcapError",
    "read_pcap",
    "write_pcap",
    "PcapngReader",
    "PcapngWriter",
    "is_pcapng",
    "DEFAULT_SNAPLEN",
    "LINKTYPE_ETHERNET",
    "ethernet",
    "ipv4",
    "tcpwire",
]
