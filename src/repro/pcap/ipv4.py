"""IPv4 header serialization with internet checksum."""

from __future__ import annotations

import struct
from typing import Tuple

HEADER_LEN = 20
PROTO_TCP = 6


class Ipv4Error(ValueError):
    """Malformed IPv4 packet."""


def checksum(data: bytes) -> int:
    """RFC 1071 internet checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def ip_to_bytes(ip: str) -> bytes:
    parts = [int(p) for p in ip.split(".")]
    if len(parts) != 4 or not all(0 <= p <= 255 for p in parts):
        raise Ipv4Error(f"invalid IPv4 address {ip!r}")
    return bytes(parts)


def bytes_to_ip(raw: bytes) -> str:
    if len(raw) != 4:
        raise Ipv4Error(f"need 4 bytes for an address, got {len(raw)}")
    return ".".join(str(b) for b in raw)


def pack(src_ip: str, dst_ip: str, payload: bytes, *, ident: int = 0,
         ttl: int = 64, proto: int = PROTO_TCP) -> bytes:
    """Serialize an IPv4 packet around ``payload``."""
    total_length = HEADER_LEN + len(payload)
    if total_length > 0xFFFF:
        raise Ipv4Error(f"packet too large: {total_length} bytes")
    header = struct.pack(
        "!BBHHHBBH4s4s",
        (4 << 4) | 5,          # version 4, IHL 5 words
        0,                     # DSCP/ECN
        total_length,
        ident & 0xFFFF,
        0x4000,                # flags: don't fragment
        ttl,
        proto,
        0,                     # checksum placeholder
        ip_to_bytes(src_ip),
        ip_to_bytes(dst_ip),
    )
    csum = checksum(header)
    return header[:10] + struct.pack("!H", csum) + header[12:] + payload


def unpack(packet: bytes, *, verify_checksum: bool = True) -> Tuple[str, str, int, bytes]:
    """Parse a packet into ``(src_ip, dst_ip, proto, payload)``."""
    if len(packet) < HEADER_LEN:
        raise Ipv4Error(f"packet too short: {len(packet)} bytes")
    version_ihl = packet[0]
    if version_ihl >> 4 != 4:
        raise Ipv4Error(f"not IPv4 (version {version_ihl >> 4})")
    ihl = (version_ihl & 0x0F) * 4
    if ihl < HEADER_LEN or len(packet) < ihl:
        raise Ipv4Error(f"bad IHL {ihl}")
    if verify_checksum and checksum(packet[:ihl]) != 0:
        raise Ipv4Error("IPv4 header checksum mismatch")
    (total_length,) = struct.unpack("!H", packet[2:4])
    proto = packet[9]
    src = bytes_to_ip(packet[12:16])
    dst = bytes_to_ip(packet[16:20])
    payload = packet[ihl:total_length]
    return src, dst, proto, payload
