"""Flow tracking and download-trace reconstruction from packet records.

The analysis views a streaming session the way the paper's tooling viewed a
tcpdump capture: a set of TCP flows between a client and the streaming
server.  :func:`build_download_trace` reconstructs, from raw packets,

* the *arrival events* of new (unique) downstream payload bytes — the
  cumulative download curve of Figures 2(a), 6(a), 7(a), 10;
* per-packet *activity* timestamps (retransmissions included), which drive
  ON/OFF detection;
* the client's advertised receive-window evolution (Figures 2(b), 6(a));
* per-flow handshake RTTs (needed by the ACK-clock analysis of Figure 9);
* the in-order leading payload bytes of each flow, from which HTTP response
  heads and container metadata are re-parsed.

Sequence numbers are 32-bit wire values; each flow unwraps them
independently, so the pipeline works on real pcap input too.

Per-packet state is held in columnar ``array('d')``/``array('q')``
buffers — one float and one int append per data packet instead of a
tuple and two list appends.  The tuple-list views the downstream
consumers iterate (:attr:`FlowData.events`, :attr:`DownloadTrace.events`)
are materialized lazily on first access and cached.
"""

from __future__ import annotations

from array import array
from itertools import accumulate
from typing import Dict, List, Optional, Tuple

from ..pcap.capture import PacketRecord
from ..simnet.monitor import TimeSeries
from ..tcp.constants import ACK as F_ACK
from ..tcp.constants import SYN as F_SYN
from ..tcp.seqspace import SequenceUnwrapper

FlowKey = Tuple[str, int, str, int]  # (src_ip, src_port, dst_ip, dst_port)


class _EventColumns:
    """Columnar (time, unique-byte advance) event log shared by flow and
    aggregate views: two parallel arrays plus a lazily-built tuple view."""

    __slots__ = ("_event_times", "_event_advances", "_events_cache")

    def __init__(self) -> None:
        self._event_times = array("d")
        self._event_advances = array("q")
        self._events_cache: Optional[List[Tuple[float, int]]] = None

    def _add_event(self, t: float, advance: int) -> None:
        self._event_times.append(t)
        self._event_advances.append(advance)

    @property
    def events(self) -> List[Tuple[float, int]]:
        """``(time, advance)`` pairs, one per downstream data packet."""
        cache = self._events_cache
        if cache is None or len(cache) != len(self._event_times):
            cache = list(zip(self._event_times, self._event_advances))
            self._events_cache = cache
        return cache

    @property
    def activity(self) -> array:
        """Data-packet timestamps (retransmissions included)."""
        return self._event_times

    @property
    def packet_count(self) -> int:
        """Downstream data packets seen (retransmissions included)."""
        return len(self._event_times)


class FlowData(_EventColumns):
    """Downstream state of one TCP flow (server -> client direction)."""

    __slots__ = (
        "key",
        "syn_time",
        "synack_time",
        "handshake_rtt",
        "first_data_time",
        "last_data_time",
        "base_seq",
        "max_seq_seen",
        "unique_bytes",
        "total_payload_bytes",
        "retransmitted_bytes",
        "head_bytes",
        "_head_expect",
        "_unwrapper",
    )

    HEAD_CAPTURE_LIMIT = 8192

    def __init__(self, key: FlowKey) -> None:
        super().__init__()
        self.key = key
        self.syn_time: Optional[float] = None
        self.synack_time: Optional[float] = None
        self.handshake_rtt: Optional[float] = None
        self.first_data_time: Optional[float] = None
        self.last_data_time: Optional[float] = None
        self.base_seq: Optional[int] = None   # unwrapped seq of first payload byte
        self.max_seq_seen = 0                 # highest unwrapped end-seq (relative)
        self.unique_bytes = 0
        self.total_payload_bytes = 0
        self.retransmitted_bytes = 0
        self.head_bytes = bytearray()
        self._head_expect = 0
        self._unwrapper = SequenceUnwrapper()

    def on_data_packet(self, record: PacketRecord) -> int:
        """Account one downstream data packet; returns the unique-byte advance."""
        payload_len = record.payload_len
        timestamp = record.timestamp
        seq = self._unwrapper.unwrap(record.seq)
        if self.base_seq is None:
            self.base_seq = seq
        rel = seq - self.base_seq
        end = rel + payload_len
        max_seen = self.max_seq_seen
        advance = end - max_seen
        if advance < 0:
            advance = 0
        # client-side retransmission detection by sequence regression (what
        # tstat-style tools do): a data packet starting below the highest
        # sequence already seen is a retransmission — either a duplicate or
        # a late hole-filler whose original was lost upstream of the capture
        if rel < max_seen:
            self.retransmitted_bytes += payload_len
        # capture the in-order leading bytes for HTTP/container parsing
        if (
            record.payload is not None
            and rel == self._head_expect
            and len(self.head_bytes) < self.HEAD_CAPTURE_LIMIT
        ):
            self.head_bytes.extend(record.payload)
            self._head_expect = rel + payload_len
        if end > max_seen:
            self.max_seq_seen = end
        self.unique_bytes += advance
        self.total_payload_bytes += payload_len
        if self.first_data_time is None:
            self.first_data_time = timestamp
        self.last_data_time = timestamp
        self._event_times.append(timestamp)
        self._event_advances.append(advance)
        return advance

    @property
    def retransmission_rate(self) -> float:
        if self.total_payload_bytes == 0:
            return 0.0
        return self.retransmitted_bytes / self.total_payload_bytes


class DownloadTrace(_EventColumns):
    """Aggregate download view of one capture (all flows combined)."""

    __slots__ = (
        "client_ip",
        "server_ip",
        "flows",
        "window_series",
        "capture_start",
        "capture_end",
    )

    def __init__(
        self,
        client_ip: str,
        server_ip: str,
        flows: Dict[FlowKey, FlowData],
        window_series: TimeSeries,
        capture_start: float,
        capture_end: float,
    ) -> None:
        super().__init__()
        self.client_ip = client_ip
        self.server_ip = server_ip
        self.flows = flows
        self.window_series = window_series
        self.capture_start = capture_start
        self.capture_end = capture_end

    @property
    def total_bytes(self) -> int:
        return sum(f.unique_bytes for f in self.flows.values())

    @property
    def total_payload_bytes(self) -> int:
        return sum(f.total_payload_bytes for f in self.flows.values())

    @property
    def retransmission_rate(self) -> float:
        payload = self.total_payload_bytes
        if payload == 0:
            return 0.0
        retx = sum(f.retransmitted_bytes for f in self.flows.values())
        return retx / payload

    @property
    def flow_count(self) -> int:
        return len(self.flows)

    @property
    def first_data_time(self) -> Optional[float]:
        times = [f.first_data_time for f in self.flows.values()
                 if f.first_data_time is not None]
        return min(times) if times else None

    @property
    def last_data_time(self) -> Optional[float]:
        times = [f.last_data_time for f in self.flows.values()
                 if f.last_data_time is not None]
        return max(times) if times else None

    def cumulative_series(self) -> TimeSeries:
        """The download-amount-vs-time curve (Figure 2(a) style)."""
        return TimeSeries.from_columns(
            "download-amount",
            self._event_times,
            map(float, accumulate(self._event_advances)),
        )

    def median_handshake_rtt(self) -> Optional[float]:
        rtts = sorted(
            f.handshake_rtt for f in self.flows.values()
            if f.handshake_rtt is not None
        )
        if not rtts:
            return None
        return rtts[len(rtts) // 2]

    def main_flow(self) -> FlowData:
        """The flow that carried the most unique bytes."""
        if not self.flows:
            raise ValueError("trace has no flows")
        return max(self.flows.values(), key=lambda f: f.unique_bytes)

    def download_rate_bps(self) -> float:
        """Average download rate over the active span."""
        first, last = self.first_data_time, self.last_data_time
        if first is None or last is None or last <= first:
            return 0.0
        return self.total_bytes * 8 / (last - first)


def build_download_trace(
    records: List[PacketRecord],
    client_ip: str,
    server_ip: str,
) -> DownloadTrace:
    """Reconstruct the aggregate download trace of one capture."""
    flows: Dict[FlowKey, FlowData] = {}
    window_times = array("d")
    window_values = array("d")
    trace = DownloadTrace(
        client_ip=client_ip,
        server_ip=server_ip,
        flows=flows,
        window_series=TimeSeries("recv-window"),
        capture_start=records[0].timestamp if records else 0.0,
        capture_end=records[-1].timestamp if records else 0.0,
    )
    agg_times = trace._event_times
    agg_advances = trace._event_advances

    for record in records:
        src, dst = record.src_ip, record.dst_ip
        downstream = src == server_ip and dst == client_ip
        if downstream:
            key = (src, record.src_port, dst, record.dst_port)
        elif src == client_ip and dst == server_ip:  # upstream
            key = (dst, record.dst_port, src, record.src_port)
        else:
            continue
        flow = flows.get(key)
        if flow is None:
            flow = flows[key] = FlowData(key=key)

        flags = record.flags
        if flags & F_SYN:
            if not downstream and flow.syn_time is None:
                flow.syn_time = record.timestamp
            elif downstream and flow.synack_time is None:
                flow.synack_time = record.timestamp
                if flow.syn_time is not None:
                    flow.handshake_rtt = flow.synack_time - flow.syn_time
            continue
        if downstream and record.payload_len > 0:
            advance = flow.on_data_packet(record)
            agg_times.append(record.timestamp)
            agg_advances.append(advance)
        elif not downstream and flags & F_ACK:
            window_times.append(record.timestamp)
            window_values.append(record.window)

    trace.window_series = TimeSeries.from_columns(
        "recv-window", window_times, window_values)
    return trace
