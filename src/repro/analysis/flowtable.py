"""Flow tracking and download-trace reconstruction from packet records.

The analysis views a streaming session the way the paper's tooling viewed a
tcpdump capture: a set of TCP flows between a client and the streaming
server.  :func:`build_download_trace` reconstructs, from raw packets,

* the *arrival events* of new (unique) downstream payload bytes — the
  cumulative download curve of Figures 2(a), 6(a), 7(a), 10;
* per-packet *activity* timestamps (retransmissions included), which drive
  ON/OFF detection;
* the client's advertised receive-window evolution (Figures 2(b), 6(a));
* per-flow handshake RTTs (needed by the ACK-clock analysis of Figure 9);
* the in-order leading payload bytes of each flow, from which HTTP response
  heads and container metadata are re-parsed.

Sequence numbers are 32-bit wire values; each flow unwraps them
independently, so the pipeline works on real pcap input too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pcap.capture import PacketRecord
from ..simnet.monitor import TimeSeries
from ..tcp.seqspace import SequenceUnwrapper

FlowKey = Tuple[str, int, str, int]  # (src_ip, src_port, dst_ip, dst_port)


@dataclass
class FlowData:
    """Downstream state of one TCP flow (server -> client direction)."""

    key: FlowKey
    syn_time: Optional[float] = None
    synack_time: Optional[float] = None
    handshake_rtt: Optional[float] = None
    first_data_time: Optional[float] = None
    last_data_time: Optional[float] = None
    base_seq: Optional[int] = None        # unwrapped seq of first payload byte
    max_seq_seen: int = 0                 # highest unwrapped end-seq (relative)
    unique_bytes: int = 0
    total_payload_bytes: int = 0
    retransmitted_bytes: int = 0
    events: List[Tuple[float, int]] = field(default_factory=list)  # (t, advance)
    activity: List[float] = field(default_factory=list)
    head_bytes: bytearray = field(default_factory=bytearray)
    _head_expect: int = 0
    _unwrapper: SequenceUnwrapper = field(default_factory=SequenceUnwrapper)

    HEAD_CAPTURE_LIMIT = 8192

    def on_data_packet(self, record: PacketRecord) -> int:
        """Account one downstream data packet; returns the unique-byte advance."""
        seq = self._unwrapper.unwrap(record.seq)
        if self.base_seq is None:
            self.base_seq = seq
        rel = seq - self.base_seq
        end = rel + record.payload_len
        advance = max(0, end - self.max_seq_seen)
        # client-side retransmission detection by sequence regression (what
        # tstat-style tools do): a data packet starting below the highest
        # sequence already seen is a retransmission — either a duplicate or
        # a late hole-filler whose original was lost upstream of the capture
        if rel < self.max_seq_seen:
            self.retransmitted_bytes += record.payload_len
        # capture the in-order leading bytes for HTTP/container parsing
        if (
            record.payload is not None
            and rel == self._head_expect
            and len(self.head_bytes) < self.HEAD_CAPTURE_LIMIT
        ):
            self.head_bytes.extend(record.payload)
            self._head_expect = rel + record.payload_len
        self.max_seq_seen = max(self.max_seq_seen, end)
        self.unique_bytes += advance
        self.total_payload_bytes += record.payload_len
        if self.first_data_time is None:
            self.first_data_time = record.timestamp
        self.last_data_time = record.timestamp
        self.events.append((record.timestamp, advance))
        self.activity.append(record.timestamp)
        return advance

    @property
    def packet_count(self) -> int:
        """Downstream data packets seen on this flow (retransmissions included)."""
        return len(self.activity)

    @property
    def retransmission_rate(self) -> float:
        if self.total_payload_bytes == 0:
            return 0.0
        return self.retransmitted_bytes / self.total_payload_bytes


@dataclass
class DownloadTrace:
    """Aggregate download view of one capture (all flows combined)."""

    client_ip: str
    server_ip: str
    flows: Dict[FlowKey, FlowData]
    events: List[Tuple[float, int]]      # aggregate (time, new unique bytes)
    activity: List[float]                # aggregate data-packet times
    window_series: TimeSeries            # client's advertised window over time
    capture_start: float
    capture_end: float

    @property
    def total_bytes(self) -> int:
        return sum(f.unique_bytes for f in self.flows.values())

    @property
    def total_payload_bytes(self) -> int:
        return sum(f.total_payload_bytes for f in self.flows.values())

    @property
    def retransmission_rate(self) -> float:
        payload = self.total_payload_bytes
        if payload == 0:
            return 0.0
        retx = sum(f.retransmitted_bytes for f in self.flows.values())
        return retx / payload

    @property
    def packet_count(self) -> int:
        """Downstream data packets across all flows (retransmissions included)."""
        return sum(f.packet_count for f in self.flows.values())

    @property
    def flow_count(self) -> int:
        return len(self.flows)

    @property
    def first_data_time(self) -> Optional[float]:
        times = [f.first_data_time for f in self.flows.values()
                 if f.first_data_time is not None]
        return min(times) if times else None

    @property
    def last_data_time(self) -> Optional[float]:
        times = [f.last_data_time for f in self.flows.values()
                 if f.last_data_time is not None]
        return max(times) if times else None

    def cumulative_series(self) -> TimeSeries:
        """The download-amount-vs-time curve (Figure 2(a) style)."""
        series = TimeSeries("download-amount")
        total = 0
        for t, advance in self.events:
            total += advance
            series.append(t, float(total))
        return series

    def median_handshake_rtt(self) -> Optional[float]:
        rtts = sorted(
            f.handshake_rtt for f in self.flows.values()
            if f.handshake_rtt is not None
        )
        if not rtts:
            return None
        return rtts[len(rtts) // 2]

    def main_flow(self) -> FlowData:
        """The flow that carried the most unique bytes."""
        if not self.flows:
            raise ValueError("trace has no flows")
        return max(self.flows.values(), key=lambda f: f.unique_bytes)

    def download_rate_bps(self) -> float:
        """Average download rate over the active span."""
        first, last = self.first_data_time, self.last_data_time
        if first is None or last is None or last <= first:
            return 0.0
        return self.total_bytes * 8 / (last - first)


def build_download_trace(
    records: List[PacketRecord],
    client_ip: str,
    server_ip: str,
) -> DownloadTrace:
    """Reconstruct the aggregate download trace of one capture."""
    flows: Dict[FlowKey, FlowData] = {}
    events: List[Tuple[float, int]] = []
    activity: List[float] = []
    window_series = TimeSeries("recv-window")
    capture_start = records[0].timestamp if records else 0.0
    capture_end = records[-1].timestamp if records else 0.0

    for record in records:
        downstream = record.src_ip == server_ip and record.dst_ip == client_ip
        upstream = record.src_ip == client_ip and record.dst_ip == server_ip
        if not (downstream or upstream):
            continue
        if downstream:
            key = (record.src_ip, record.src_port, record.dst_ip, record.dst_port)
        else:
            key = (record.dst_ip, record.dst_port, record.src_ip, record.src_port)
        flow = flows.get(key)
        if flow is None:
            flow = flows[key] = FlowData(key=key)

        if record.is_syn:
            if upstream and flow.syn_time is None:
                flow.syn_time = record.timestamp
            elif downstream and flow.synack_time is None:
                flow.synack_time = record.timestamp
                if flow.syn_time is not None:
                    flow.handshake_rtt = flow.synack_time - flow.syn_time
            continue
        if downstream and record.payload_len > 0:
            advance = flow.on_data_packet(record)
            events.append((record.timestamp, advance))
            activity.append(record.timestamp)
        elif upstream and record.is_ack:
            window_series.append(record.timestamp, float(record.window))

    return DownloadTrace(
        client_ip=client_ip,
        server_ip=server_ip,
        flows=flows,
        events=events,
        activity=activity,
        window_series=window_series,
        capture_start=capture_start,
        capture_end=capture_end,
    )
