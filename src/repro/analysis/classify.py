"""Streaming-strategy classification (Sections 3 and 5).

The decision procedure the paper applies to every trace:

1. no OFF period in the whole download → **no ON-OFF cycles** (bulk);
2. otherwise, look at the steady-state block sizes: cycles moving more
   than 2.5 MB are *long*, the rest *short*;
3. a session whose steady state mixes both regimes substantially (the
   iPad's periodic re-buffering interleaved with short cycles,
   Figure 7(a)) is classified as using **multiple strategies**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..streaming.strategy import LONG_BLOCK_THRESHOLD, StreamingStrategy
from .onoff import OnOffProfile

#: Byte-share bounds deciding Short / Mixed / Long from steady-state blocks.
MIXED_LOW = 0.2
MIXED_HIGH = 0.8

#: A steady state means *periodic* cycles: fewer OFF periods than this is
#: not rate throttling, just an incidentally interrupted bulk transfer
#: (e.g. one retransmission-timeout stall splitting a download in two).
MIN_CYCLES = 3


@dataclass
class Classification:
    """Strategy verdict plus the evidence behind it."""

    strategy: StreamingStrategy
    block_sizes: List[int]
    long_byte_share: float
    cycle_count: int

    def __str__(self) -> str:
        return str(self.strategy)


def classify_onoff(onoff: OnOffProfile,
                   min_cycles: int = MIN_CYCLES) -> Classification:
    """Classify one download's ON/OFF profile into a streaming strategy."""
    if (
        not onoff.has_off_periods
        or len(onoff.on_periods) < 2
        or len(onoff.off_periods) < min_cycles
    ):
        return Classification(
            strategy=StreamingStrategy.NO_ONOFF,
            block_sizes=[],
            long_byte_share=0.0,
            cycle_count=0,
        )
    blocks = onoff.block_sizes(skip_first=True)
    total = sum(blocks)
    if total <= 0:
        return Classification(
            strategy=StreamingStrategy.NO_ONOFF,
            block_sizes=blocks,
            long_byte_share=0.0,
            cycle_count=len(blocks),
        )
    long_bytes = sum(b for b in blocks if b > LONG_BLOCK_THRESHOLD)
    share = long_bytes / total
    if share >= MIXED_HIGH:
        strategy = StreamingStrategy.LONG_ONOFF
    elif share <= MIXED_LOW:
        strategy = StreamingStrategy.SHORT_ONOFF
    else:
        strategy = StreamingStrategy.MIXED
    return Classification(
        strategy=strategy,
        block_sizes=blocks,
        long_byte_share=share,
        cycle_count=len(blocks),
    )
