"""ON/OFF cycle detection (the Section 3 traffic structure).

An OFF period is an idle gap in the data arrivals longer than
``gap_threshold``; the activity between two OFF periods is an ON period
whose size is the number of *new* bytes it moved.  Tiny ON periods (TCP
zero-window probes, stray retransmissions) are filtered as noise and
absorbed into the surrounding OFF period — they are artifacts of the
transport, not application-layer transfers.

Retransmission *activity* still bridges gaps: a loss recovered during what
would have been an OFF period merges two cycles into one bigger block,
reproducing the paper's observation that losses create blocks larger than
the nominal 64 kB (Section 5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Default idle-gap threshold separating ON from OFF, in seconds.  The
#: shortest OFF periods the paper reports are ~0.2 s; intra-block gaps are
#: bounded by the RTT (tens of milliseconds).
DEFAULT_GAP_THRESHOLD = 0.15

#: ON periods moving fewer bytes than this are treated as transport noise.
DEFAULT_MIN_ON_BYTES = 4096


@dataclass(frozen=True)
class OnPeriod:
    """A burst of data arrivals."""

    start: float
    end: float
    bytes: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class OffPeriod:
    """An idle gap between ON periods."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class OnOffProfile:
    """The full ON/OFF structure of one download."""

    on_periods: List[OnPeriod]
    off_periods: List[OffPeriod]
    gap_threshold: float

    @property
    def has_off_periods(self) -> bool:
        return bool(self.off_periods)

    @property
    def cycle_count(self) -> int:
        return len(self.off_periods)

    def block_sizes(self, skip_first: bool = True) -> List[int]:
        """Bytes moved per ON period.

        ``skip_first`` drops the first ON period, which is the buffering
        phase rather than a steady-state block (Section 5's block-size
        distributions are steady-state only).
        """
        periods = self.on_periods[1:] if skip_first else self.on_periods
        return [p.bytes for p in periods]

    def off_durations(self) -> List[float]:
        return [p.duration for p in self.off_periods]

    def mean_cycle_duration(self) -> Optional[float]:
        """Average ON+OFF cycle length in the steady state."""
        if len(self.on_periods) < 2 or not self.off_periods:
            return None
        start = self.off_periods[0].start
        end = self.on_periods[-1].end
        cycles = len(self.on_periods) - 1
        return (end - start) / cycles if cycles else None


def detect_onoff(
    events: Sequence[Tuple[float, int]],
    *,
    gap_threshold: float = DEFAULT_GAP_THRESHOLD,
    min_on_bytes: int = DEFAULT_MIN_ON_BYTES,
    stream_end: Optional[float] = None,
) -> OnOffProfile:
    """Partition data-arrival ``events`` into ON and OFF periods.

    ``events`` is a time-ordered sequence of ``(timestamp, new_bytes)``;
    retransmissions appear with ``new_bytes == 0`` and still count as
    activity.  ``stream_end`` (defaults to the last event) bounds the
    analysis — idleness after the transfer finished is not an OFF period.
    """
    if not events:
        return OnOffProfile([], [], gap_threshold)

    groups: List[Tuple[float, float, int]] = []  # (start, end, bytes)
    start, end, moved = events[0][0], events[0][0], events[0][1]
    for t, advance in events[1:]:
        if t - end > gap_threshold:
            groups.append((start, end, moved))
            start, moved = t, 0
        end = t
        moved += advance
    groups.append((start, end, moved))

    # absorb noise bursts (window probes, stray retransmits) into idle time
    significant = [g for g in groups if g[2] >= min_on_bytes]
    if not significant:
        significant = [max(groups, key=lambda g: g[2])] if groups else []

    on_periods = [OnPeriod(s, e, b) for s, e, b in significant]
    off_periods: List[OffPeriod] = []
    for prev, nxt in zip(on_periods, on_periods[1:]):
        off_periods.append(OffPeriod(prev.end, nxt.start))
    # trailing idle time within the stream's active life counts as OFF only
    # if more data was still expected; callers pass stream_end = last data
    # time, so no trailing OFF is emitted by default
    if stream_end is not None and on_periods:
        tail = stream_end - on_periods[-1].end
        if tail > gap_threshold:
            off_periods.append(OffPeriod(on_periods[-1].end, stream_end))
    return OnOffProfile(on_periods, off_periods, gap_threshold)
