"""The paper's measurement methodology, coded as a reusable pipeline."""

from .accumulation import RateEstimate, estimate_encoding_rate, estimate_session_rate
from .ackclock import AckClockSample, ackclock_samples, first_rtt_bytes
from .classify import MIXED_HIGH, MIXED_LOW, Classification, classify_onoff
from .flowtable import DownloadTrace, FlowData, build_download_trace
from .onoff import (
    DEFAULT_GAP_THRESHOLD,
    DEFAULT_MIN_ON_BYTES,
    OffPeriod,
    OnOffProfile,
    OnPeriod,
    detect_onoff,
)
from .phases import PhaseSplit, split_phases, split_phases_rate_knee
from .renditions import (
    LadderObservation,
    RenditionObservation,
    detect_renditions,
)
from .report import bytes_human, format_cdf, format_table, mbps
from .resilience import (
    BlockMergingReport,
    ResilienceAggregate,
    ResilienceSummary,
    aggregate_resilience,
    quantify_block_merging,
    recovery_time,
    summarize_resilience,
)
from .session_analysis import SessionAnalysis, analyze_records, analyze_session
from .stats import (
    Cdf,
    correlation,
    dominant_value,
    fraction_within,
    mean,
    median,
    variance,
)

__all__ = [
    "DownloadTrace",
    "FlowData",
    "build_download_trace",
    "OnPeriod",
    "OffPeriod",
    "OnOffProfile",
    "detect_onoff",
    "DEFAULT_GAP_THRESHOLD",
    "DEFAULT_MIN_ON_BYTES",
    "PhaseSplit",
    "split_phases",
    "split_phases_rate_knee",
    "Classification",
    "classify_onoff",
    "MIXED_LOW",
    "MIXED_HIGH",
    "AckClockSample",
    "first_rtt_bytes",
    "ackclock_samples",
    "RateEstimate",
    "estimate_encoding_rate",
    "estimate_session_rate",
    "LadderObservation",
    "RenditionObservation",
    "detect_renditions",
    "SessionAnalysis",
    "analyze_records",
    "analyze_session",
    "ResilienceSummary",
    "ResilienceAggregate",
    "BlockMergingReport",
    "summarize_resilience",
    "aggregate_resilience",
    "recovery_time",
    "quantify_block_merging",
    "Cdf",
    "mean",
    "median",
    "variance",
    "correlation",
    "dominant_value",
    "fraction_within",
    "format_table",
    "format_cdf",
    "bytes_human",
    "mbps",
]
