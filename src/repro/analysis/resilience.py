"""Resilience analysis: recovery behaviour under injected faults.

The paper's methodology (Section 5.1.1) already warns that packet loss
merges ON-OFF blocks and corrupts buffering estimates.  Fault injection
(:mod:`repro.simnet.faults`) makes those artifacts reproducible; this
module summarizes how a session *recovered* — stalls, rebuffering,
retries, wasted bytes — and quantifies the block-merging artifact by
comparing the trace-level block statistics of a clean and a faulted run
of the same session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..streaming.session import SessionResult
from .session_analysis import analyze_session
from .stats import mean, median


@dataclass
class ResilienceSummary:
    """How one session behaved under (possible) faults."""

    completed: bool               # all requested media arrived
    failed: bool                  # gave up (retries exhausted / no policy)
    fail_reason: Optional[str]
    stall_count: int
    stall_time_s: float
    rebuffer_count: int
    rebuffer_ratio: float
    startup_delay_s: Optional[float]
    retry_count: int
    wasted_redownloaded_bytes: int
    downshift_count: int
    recovery_time_s: Optional[float]   # first fault -> playback resumed

    @property
    def recovered(self) -> bool:
        """The session survived its faults (neither failed nor stuck)."""
        return not self.failed and self.recovery_time_s is not None


def _first_fault_time(result: SessionResult) -> Optional[float]:
    log = result.fault_log
    if log is None or not log.entries:
        return None
    starts = [e.time for e in log.entries if e.kind.endswith("-start")
              or e.kind == "connection-reset"]
    return min(starts) if starts else min(e.time for e in log.entries)


def recovery_time(result: SessionResult) -> Optional[float]:
    """Seconds from the first injected fault until playback recovered.

    Recovery means the end of the first stall interval that overlaps or
    follows the fault.  ``0.0`` when the fault never starved playback;
    ``None`` when the fault log is empty, the session failed, or the
    stall never ended within the capture.
    """
    t0 = _first_fault_time(result)
    if t0 is None or result.failed:
        return None
    overlapping = [end for start, end in result.stall_events if end >= t0]
    if not overlapping:
        return 0.0
    recovered_at = min(overlapping)
    # a stall interval closed exactly at the capture horizon never actually
    # recovered — the capture just ended
    if recovered_at >= result.duration_simulated:
        return None
    return recovered_at - t0


def summarize_resilience(result: SessionResult) -> ResilienceSummary:
    """Collapse one session's resilience bookkeeping into a summary."""
    return ResilienceSummary(
        completed=result.player_finished,
        failed=result.failed,
        fail_reason=result.fail_reason,
        stall_count=len(result.stall_events),
        stall_time_s=result.stall_time_s,
        rebuffer_count=result.rebuffer_count,
        rebuffer_ratio=result.rebuffer_ratio,
        startup_delay_s=result.startup_delay_s,
        retry_count=result.retry_count,
        wasted_redownloaded_bytes=result.wasted_redownloaded_bytes,
        downshift_count=len(result.downshifts),
        recovery_time_s=recovery_time(result),
    )


@dataclass
class ResilienceAggregate:
    """Fleet-level recovery statistics over many sessions."""

    sessions: int
    completed_fraction: float
    failed_fraction: float
    mean_rebuffer_ratio: float
    mean_stall_time_s: float
    mean_retries: float
    mean_recovery_time_s: Optional[float]  # over sessions that recovered
    total_wasted_bytes: int


def aggregate_resilience(
    summaries: Sequence[ResilienceSummary],
) -> ResilienceAggregate:
    """Fleet-level roll-up of per-session resilience summaries.

    Means are taken over all sessions; rates (failure, completion) are
    fractions of the whole fleet.  Raises ``ValueError`` on an empty
    input — an empty fleet has no meaningful rates.
    """
    if not summaries:
        raise ValueError("no sessions to aggregate")
    n = len(summaries)
    recoveries = [s.recovery_time_s for s in summaries
                  if s.recovery_time_s is not None]
    return ResilienceAggregate(
        sessions=n,
        completed_fraction=sum(1 for s in summaries if s.completed) / n,
        failed_fraction=sum(1 for s in summaries if s.failed) / n,
        mean_rebuffer_ratio=mean([s.rebuffer_ratio for s in summaries]),
        mean_stall_time_s=mean([s.stall_time_s for s in summaries]),
        mean_retries=mean([float(s.retry_count) for s in summaries]),
        mean_recovery_time_s=mean(recoveries) if recoveries else None,
        total_wasted_bytes=sum(s.wasted_redownloaded_bytes for s in summaries),
    )


@dataclass
class BlockMergingReport:
    """The Section 5.1.1 artifact, quantified: faults merge ON-OFF blocks."""

    clean_cycles: int
    faulted_cycles: int
    clean_median_block: Optional[float]
    faulted_median_block: Optional[float]

    @property
    def cycles_lost(self) -> int:
        """ON-OFF cycles the faults erased from the trace."""
        return self.clean_cycles - self.faulted_cycles

    @property
    def block_inflation(self) -> Optional[float]:
        """Median observed block size, faulted relative to clean.

        Values above 1 mean the analysis sees *larger* blocks under
        faults — adjacent blocks merged across the recovery burst.
        """
        if not self.clean_median_block or self.faulted_median_block is None:
            return None
        return self.faulted_median_block / self.clean_median_block


def quantify_block_merging(
    clean: SessionResult,
    faulted: SessionResult,
    *,
    gap_threshold: Optional[float] = None,
    min_on_bytes: Optional[int] = None,
) -> BlockMergingReport:
    """Compare trace-level block statistics between a clean and faulted run."""
    kwargs = {}
    if gap_threshold is not None:
        kwargs["gap_threshold"] = gap_threshold
    if min_on_bytes is not None:
        kwargs["min_on_bytes"] = min_on_bytes
    clean_an = analyze_session(clean, **kwargs)
    faulted_an = analyze_session(faulted, **kwargs)
    clean_blocks: List[int] = clean_an.onoff.block_sizes()
    faulted_blocks: List[int] = faulted_an.onoff.block_sizes()
    return BlockMergingReport(
        clean_cycles=clean_an.onoff.cycle_count,
        faulted_cycles=faulted_an.onoff.cycle_count,
        clean_median_block=median(clean_blocks) if clean_blocks else None,
        faulted_median_block=median(faulted_blocks) if faulted_blocks else None,
    )
