"""Encoding-rate recovery from traces (the Section 5 measurement method).

For Flash videos the encoding rate comes from the FLV header inside the
stream.  For HTML5 videos the webM header is unusable (the invalid
frame-rate entry), so the rate is *estimated* as Content-Length divided by
the video duration — an approximation the paper blames for the wide
accumulation-ratio spread of Figure 5(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..http import (
    CodecError,
    HttpError,
    parse_container_header,
    parse_response_head,
)
from .flowtable import DownloadTrace, FlowData


@dataclass
class RateEstimate:
    """Recovered encoding rate and how it was obtained."""

    rate_bps: Optional[float]
    method: str                 # "flv-header" | "content-length" | "none"
    content_length: Optional[int] = None
    container: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.rate_bps is not None and self.rate_bps > 0


def estimate_encoding_rate(
    flow: FlowData,
    *,
    duration: Optional[float] = None,
) -> RateEstimate:
    """Recover the encoding rate from one flow's leading payload bytes.

    ``duration`` is the video duration known out-of-band (the paper reads
    it from the YouTube page/API); it is required for the Content-Length
    fallback used on webM streams.
    """
    head = bytes(flow.head_bytes)
    if not head:
        return RateEstimate(None, "none")
    try:
        parsed = parse_response_head(head)
    except HttpError:
        return RateEstimate(None, "none")
    if parsed is None:
        return RateEstimate(None, "none")
    response, consumed = parsed
    content_length = response.content_length
    body = head[consumed:]
    container = None
    try:
        meta = parse_container_header(body)
        container = meta.container
        if meta.has_valid_rate:
            return RateEstimate(
                meta.encoding_rate_bps,
                "flv-header",
                content_length=content_length,
                container=container,
            )
    except CodecError:
        pass
    # webM (or truncated header): fall back to Content-Length / duration
    if content_length is not None and duration and duration > 0:
        return RateEstimate(
            content_length * 8 / duration,
            "content-length",
            content_length=content_length,
            container=container,
        )
    return RateEstimate(None, "none", content_length=content_length,
                        container=container)


def estimate_session_rate(
    trace: DownloadTrace,
    *,
    duration: Optional[float] = None,
) -> RateEstimate:
    """Encoding rate of the session, taken from its main flow."""
    if not trace.flows:
        return RateEstimate(None, "none")
    return estimate_encoding_rate(trace.main_flow(), duration=duration)
