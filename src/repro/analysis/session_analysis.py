"""One-call analysis of a streaming session (the whole Section 5 pipeline).

:func:`analyze_session` runs flow reconstruction, ON/OFF detection, phase
splitting, block-size extraction, strategy classification, encoding-rate
recovery and the ACK-clock metric over a simulated (or re-parsed pcap)
session, producing the per-session record every experiment consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..pcap.capture import PacketRecord
from ..streaming.session import SessionResult
from ..telemetry import current_recorder
from ..streaming.strategy import StreamingStrategy
from .accumulation import RateEstimate, estimate_session_rate
from .ackclock import ackclock_samples
from .classify import Classification, classify_onoff
from .flowtable import DownloadTrace, build_download_trace
from .onoff import (
    DEFAULT_GAP_THRESHOLD,
    DEFAULT_MIN_ON_BYTES,
    OnOffProfile,
    detect_onoff,
)
from .phases import PhaseSplit, split_phases


@dataclass
class SessionAnalysis:
    """Everything the paper measures about one streaming session."""

    trace: DownloadTrace
    onoff: OnOffProfile
    phases: PhaseSplit
    classification: Classification
    rate_estimate: RateEstimate
    ackclock: List[int]
    encoding_rate_bps: Optional[float]   # the rate used for derived metrics

    @property
    def strategy(self) -> StreamingStrategy:
        return self.classification.strategy

    @property
    def block_sizes(self) -> List[int]:
        return self.classification.block_sizes

    @property
    def buffering_bytes(self) -> int:
        return self.phases.buffering_bytes

    @property
    def accumulation_ratio(self) -> Optional[float]:
        if self.encoding_rate_bps is None:
            return None
        return self.phases.accumulation_ratio(self.encoding_rate_bps)

    @property
    def buffering_playback_s(self) -> Optional[float]:
        if self.encoding_rate_bps is None:
            return None
        return self.phases.buffering_playback_seconds(self.encoding_rate_bps)

    @property
    def retransmission_rate(self) -> float:
        return self.trace.retransmission_rate


def analyze_records(
    records: List[PacketRecord],
    client_ip: str,
    server_ip: str,
    *,
    duration: Optional[float] = None,
    gap_threshold: float = DEFAULT_GAP_THRESHOLD,
    min_on_bytes: int = DEFAULT_MIN_ON_BYTES,
) -> SessionAnalysis:
    """Run the full pipeline on raw packet records.

    ``duration`` is the out-of-band video duration, needed to estimate the
    encoding rate of webM streams from the Content-Length.
    """
    rec = current_recorder()
    with rec.span("analysis"):
        if rec.enabled:
            rec.inc("analysis.sessions")
            rec.inc("analysis.packets", len(records))
        trace = build_download_trace(records, client_ip, server_ip)
        onoff = detect_onoff(
            trace.events,
            gap_threshold=gap_threshold,
            min_on_bytes=min_on_bytes,
            stream_end=trace.last_data_time,
        )
        phases = split_phases(onoff, stream_end=trace.last_data_time)
        classification = classify_onoff(onoff)
        rate_estimate = estimate_session_rate(trace, duration=duration)
        encoding_rate = rate_estimate.rate_bps if rate_estimate.ok else None
        samples = ackclock_samples(
            trace, gap_threshold=gap_threshold, min_on_bytes=min_on_bytes
        )
    return SessionAnalysis(
        trace=trace,
        onoff=onoff,
        phases=phases,
        classification=classification,
        rate_estimate=rate_estimate,
        ackclock=samples,
        encoding_rate_bps=encoding_rate,
    )


def analyze_session(
    result: SessionResult,
    *,
    gap_threshold: float = DEFAULT_GAP_THRESHOLD,
    min_on_bytes: int = DEFAULT_MIN_ON_BYTES,
    use_true_rate: bool = False,
) -> SessionAnalysis:
    """Analyze a simulated session result.

    ``use_true_rate`` substitutes the catalog's ground-truth encoding rate
    for the trace-recovered one — the ablation comparing the estimation
    artifact against perfect knowledge (Section 5.1.1's discussion).
    """
    analysis = analyze_records(
        result.records,
        result.client_ip,
        result.server_ip,
        duration=result.video.duration,
        gap_threshold=gap_threshold,
        min_on_bytes=min_on_bytes,
    )
    if use_true_rate:
        analysis.encoding_rate_bps = result.video.encoding_rate_bps
    return analysis
