"""Statistics helpers: CDFs, correlation, quantiles, dominant values."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass
class Cdf:
    """An empirical cumulative distribution function."""

    values: List[float]        # sorted
    fractions: List[float]     # P(X <= values[i]), in (0, 1]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Cdf":
        if not samples:
            raise ValueError("cannot build a CDF from zero samples")
        ordered = sorted(float(s) for s in samples)
        n = len(ordered)
        return cls(ordered, [(i + 1) / n for i in range(n)])

    def __len__(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        lo, hi = 0, len(self.values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.values[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self.values)

    def quantile(self, q: float) -> float:
        """The smallest value v with P(X <= v) >= q."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q!r}")
        index = max(0, math.ceil(q * len(self.values)) - 1)
        return self.values[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def sample_points(self, n: int = 20) -> List[Tuple[float, float]]:
        """``n`` evenly spaced (value, fraction) pairs for compact printing."""
        if n <= 1 or len(self.values) == 1:
            return [(self.values[-1], 1.0)]
        out = []
        for i in range(n):
            q = (i + 1) / n
            out.append((self.quantile(q), q))
        return out


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if not samples:
        raise ValueError("mean of zero samples")
    return sum(samples) / len(samples)


def variance(samples: Sequence[float]) -> float:
    """Population variance."""
    if not samples:
        raise ValueError("variance of zero samples")
    m = mean(samples)
    return sum((s - m) ** 2 for s in samples) / len(samples)


def median(samples: Sequence[float]) -> float:
    """Sample median (midpoint of the two central order statistics)."""
    if not samples:
        raise ValueError("median of zero samples")
    ordered = sorted(samples)
    n = len(ordered)
    if n % 2:
        return ordered[n // 2]
    return (ordered[n // 2 - 1] + ordered[n // 2]) / 2


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("need at least two points for a correlation")
    mx, my = mean(xs), mean(ys)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 0.0
    return sxy / math.sqrt(sxx * syy)


def dominant_value(samples: Sequence[float], *, bin_width: float) -> Optional[float]:
    """The center of the most populated histogram bin (the "dominant"
    block size of Figures 4(a) and 5(a))."""
    if not samples or bin_width <= 0:
        return None
    counts: dict = {}
    for s in samples:
        counts[int(s // bin_width)] = counts.get(int(s // bin_width), 0) + 1
    best_bin = max(counts, key=lambda b: (counts[b], -b))
    return (best_bin + 0.5) * bin_width


def fraction_within(samples: Sequence[float], lo: float, hi: float) -> float:
    """Share of samples in [lo, hi]."""
    if not samples:
        raise ValueError("no samples")
    return sum(1 for s in samples if lo <= s <= hi) / len(samples)
