"""ACK-clock analysis (Section 5.1.5, Figure 9).

TCP normally paces a sender by the returning ACK stream.  After an
application-layer OFF period, RFC 5681 suggests resetting the congestion
window so the source re-probes the path; the paper measures whether the
streaming servers actually do this by looking at how much data arrives
*back-to-back within the first RTT of each ON period*.  A source with an
ACK clock can move at most its initial window in that interval; the
measured YouTube/Netflix sources instead blast `min(cwnd, block size)`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .flowtable import DownloadTrace, FlowData
from .onoff import DEFAULT_GAP_THRESHOLD, DEFAULT_MIN_ON_BYTES, detect_onoff


@dataclass
class AckClockSample:
    """Bytes received in the first RTT of one ON period."""

    on_start: float
    bytes_first_rtt: int
    rtt: float


def first_rtt_bytes(
    flow: FlowData,
    *,
    rtt: Optional[float] = None,
    gap_threshold: float = DEFAULT_GAP_THRESHOLD,
    min_on_bytes: int = DEFAULT_MIN_ON_BYTES,
    skip_first: bool = True,
) -> List[AckClockSample]:
    """Per-ON-period bytes arriving within one RTT of the period's start.

    This is the paper's conservative estimate of the congestion window at
    the beginning of the ON period.  ``skip_first`` excludes the buffering
    phase (whose start is connection establishment, where slow start always
    imposes an ACK clock).
    """
    effective_rtt = rtt if rtt is not None else flow.handshake_rtt
    if effective_rtt is None or not flow.events:
        return []
    onoff = detect_onoff(
        flow.events, gap_threshold=gap_threshold, min_on_bytes=min_on_bytes
    )
    periods = onoff.on_periods[1:] if skip_first else onoff.on_periods
    samples = []
    for period in periods:
        horizon = period.start + effective_rtt
        moved = sum(
            advance for t, advance in flow.events
            if period.start <= t <= horizon
        )
        samples.append(AckClockSample(period.start, moved, effective_rtt))
    return samples


def ackclock_samples(
    trace: DownloadTrace,
    *,
    gap_threshold: float = DEFAULT_GAP_THRESHOLD,
    min_on_bytes: int = DEFAULT_MIN_ON_BYTES,
    include_connection_starts: bool = False,
) -> List[int]:
    """All first-RTT byte counts across the trace's flows (Figure 9 data).

    For multi-connection players (iPad, Netflix) each connection's first ON
    period is a fresh slow start; ``include_connection_starts`` keeps those
    samples (they are what makes ACK clocks visible for those players).
    """
    samples: List[int] = []
    for flow in trace.flows.values():
        flow_samples = first_rtt_bytes(
            flow,
            gap_threshold=gap_threshold,
            min_on_bytes=min_on_bytes,
            skip_first=not include_connection_starts,
        )
        samples.extend(s.bytes_first_rtt for s in flow_samples)
    return samples
