"""Plain-text tabular reports for the benchmark harness.

Every experiment prints its result through these helpers so that the rows
and series the paper reports can be regenerated (and eyeballed) from the
terminal without plotting.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .stats import Cdf


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Fixed-width table with a header rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def format_cdf(cdf: Cdf, *, label: str, unit: str = "", scale: float = 1.0,
               points: int = 10) -> str:
    """Compact textual CDF: quantile -> value rows."""
    lines = [f"CDF of {label} (n={len(cdf)})"]
    for value, fraction in cdf.sample_points(points):
        lines.append(f"  p{int(round(fraction * 100)):02d}  "
                     f"{value * scale:10.2f} {unit}")
    return "\n".join(lines)


def bytes_human(n: float) -> str:
    """1536 -> '1.5 kB' (binary units, as the paper's kB/MB axes)."""
    for unit, factor in (("GB", 1 << 30), ("MB", 1 << 20), ("kB", 1 << 10)):
        if abs(n) >= factor:
            return f"{n / factor:.1f} {unit}"
    return f"{n:.0f} B"


def mbps(bps: float) -> str:
    """Format a bits-per-second value as ``"X.XX Mbps"``."""
    return f"{bps / 1e6:.2f} Mbps"
