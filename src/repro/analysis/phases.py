"""Buffering-phase / steady-state split (Figure 1's two phases).

The paper measures the buffering amount as the bytes downloaded before the
*start of the first OFF period* and notes this heuristic is sensitive to
packet loss (Section 5.1.1: the Residence and Academic networks show
smaller apparent buffering because retransmission timeouts insert early
idle gaps).  We implement exactly that heuristic — warts and all — plus an
alternative rate-knee detector used by the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .onoff import OnOffProfile


@dataclass
class PhaseSplit:
    """Outcome of the phase analysis of one download."""

    buffering_end: Optional[float]      # None: no steady state observed
    buffering_bytes: int
    steady_bytes: int
    steady_duration: float
    total_bytes: int

    @property
    def has_steady_state(self) -> bool:
        return self.buffering_end is not None and self.steady_duration > 0

    @property
    def steady_rate_bps(self) -> float:
        """Average download rate in the steady state."""
        if not self.has_steady_state:
            return 0.0
        return self.steady_bytes * 8 / self.steady_duration

    def accumulation_ratio(self, encoding_rate_bps: float) -> Optional[float]:
        """Steady-state rate over encoding rate (Section 2's k)."""
        if not self.has_steady_state or encoding_rate_bps <= 0:
            return None
        return self.steady_rate_bps / encoding_rate_bps

    def buffering_playback_seconds(self, encoding_rate_bps: float) -> Optional[float]:
        """Buffering amount expressed as playback time (Figure 3(a))."""
        if encoding_rate_bps <= 0:
            return None
        return self.buffering_bytes * 8 / encoding_rate_bps


def split_phases(
    onoff: OnOffProfile,
    *,
    stream_end: Optional[float] = None,
) -> PhaseSplit:
    """Split a download into buffering and steady-state phases.

    The buffering phase ends at the start of the first OFF period (the
    paper's heuristic).  A download with no OFF period has no steady state:
    everything is buffering (the no ON-OFF strategy).
    """
    total = sum(p.bytes for p in onoff.on_periods)
    if not onoff.off_periods or not onoff.on_periods:
        return PhaseSplit(
            buffering_end=None,
            buffering_bytes=total,
            steady_bytes=0,
            steady_duration=0.0,
            total_bytes=total,
        )
    boundary = onoff.off_periods[0].start
    buffering = sum(p.bytes for p in onoff.on_periods if p.end <= boundary)
    steady = total - buffering
    end = stream_end if stream_end is not None else onoff.on_periods[-1].end
    return PhaseSplit(
        buffering_end=boundary,
        buffering_bytes=buffering,
        steady_bytes=steady,
        steady_duration=max(0.0, end - boundary),
        total_bytes=total,
    )


def split_phases_rate_knee(
    events: Sequence[Tuple[float, int]],
    *,
    window: float = 2.0,
    drop_ratio: float = 0.5,
) -> Optional[float]:
    """Alternative buffering-end detector: the first time the windowed
    download rate falls below ``drop_ratio`` times the initial rate.

    Used by the phase-detector ablation; returns the knee time or ``None``.
    """
    if not events:
        return None
    start = events[0][0]
    # initial rate over the first window
    first_bytes = sum(b for t, b in events if t <= start + window)
    if first_bytes == 0:
        return None
    initial_rate = first_bytes / window
    t_cursor = start + window
    idx = 0
    n = len(events)
    # only evaluate complete windows: the ragged tail after the last event
    # is the end of the transfer, not a rate knee
    while t_cursor + window <= events[-1][0]:
        lo, hi = t_cursor, t_cursor + window
        moved = 0
        while idx < n and events[idx][0] < lo:
            idx += 1
        j = idx
        while j < n and events[j][0] < hi:
            moved += events[j][1]
            j += 1
        if moved / window < drop_ratio * initial_rate:
            return t_cursor
        t_cursor = hi
    return None
