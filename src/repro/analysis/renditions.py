"""Rendition-ladder inference from traces (the Akhshabi method).

The paper explains Netflix's huge buffering amounts by citing Akhshabi et
al. [11]: during buffering the player downloads fragments of *all* the
available encoding rates.  That claim is checkable from a capture alone:
each rendition is fetched through requests whose ``Content-Range`` headers
advertise that rendition's total size, so the set of distinct totals seen
across a session's flows is the set of renditions touched — and each
total/duration is that rendition's encoding rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..http import HttpError, parse_content_range, parse_response_head
from .flowtable import DownloadTrace, FlowData


@dataclass
class RenditionObservation:
    """One rendition inferred from a session's traffic."""

    total_bytes: int                 # resource size advertised on the wire
    flows: int                       # connections that fetched from it
    bytes_fetched: int               # payload attributable to it
    rate_estimate_bps: Optional[float] = None  # with a known duration


@dataclass
class LadderObservation:
    """All renditions touched during one session."""

    renditions: List[RenditionObservation]

    @property
    def count(self) -> int:
        return len(self.renditions)

    @property
    def rates_bps(self) -> List[float]:
        return sorted(
            r.rate_estimate_bps for r in self.renditions
            if r.rate_estimate_bps is not None
        )


def _resource_total(flow: FlowData) -> Optional[int]:
    """The Content-Range total (or Content-Length) of a flow's first response."""
    head = bytes(flow.head_bytes)
    if not head:
        return None
    try:
        parsed = parse_response_head(head)
    except HttpError:
        return None
    if parsed is None:
        return None
    response, _consumed = parsed
    content_range = response.headers.get("Content-Range")
    if content_range is not None:
        try:
            _start, _end, total = parse_content_range(content_range)
        except Exception:
            return None
        return total
    return response.content_length


def detect_renditions(
    trace: DownloadTrace,
    *,
    duration: Optional[float] = None,
    tolerance: float = 0.02,
) -> LadderObservation:
    """Infer the rendition ladder touched by a session.

    Flows whose advertised resource totals agree within ``tolerance``
    (relative) are treated as the same rendition.  With the video
    ``duration`` known out-of-band, each rendition's encoding rate is
    ``total * 8 / duration``.
    """
    groups: List[Dict] = []  # {"total": int, "flows": int, "bytes": int}
    for flow in trace.flows.values():
        total = _resource_total(flow)
        if total is None or total <= 0:
            continue
        for group in groups:
            if abs(group["total"] - total) <= tolerance * group["total"]:
                group["flows"] += 1
                group["bytes"] += flow.unique_bytes
                break
        else:
            groups.append({"total": total, "flows": 1,
                           "bytes": flow.unique_bytes})
    renditions = [
        RenditionObservation(
            total_bytes=group["total"],
            flows=group["flows"],
            bytes_fetched=group["bytes"],
            rate_estimate_bps=(group["total"] * 8 / duration
                               if duration else None),
        )
        for group in sorted(groups, key=lambda g: g["total"])
    ]
    return LadderObservation(renditions)
