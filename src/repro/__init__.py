"""repro — reproduction of "Network Characteristics of Video Streaming Traffic"
(Rao, Lim, Barakat, Legout, Towsley, Dabbous; ACM CoNEXT 2011).

The package is organized bottom-up:

- :mod:`repro.simnet` — discrete-event network simulation substrate.
- :mod:`repro.tcp` — from-scratch TCP (NewReno, flow control, timers).
- :mod:`repro.pcap` — libpcap-format capture of simulated traffic.
- :mod:`repro.http` — minimal HTTP/1.1 with range requests and container
  (FLV / webM-like) metadata headers.
- :mod:`repro.workloads` — the paper's six video datasets, synthesized.
- :mod:`repro.streaming` — the three streaming strategies and the
  application/container matrix of Table 1.
- :mod:`repro.analysis` — the measurement methodology: flow reassembly,
  ON/OFF cycle detection, block sizes, accumulation ratios, ACK clocks.
- :mod:`repro.model` — the Section-6 analytical model of aggregate traffic.
- :mod:`repro.runner` — the session-execution engine: worker pool,
  content-addressed result cache, (video, config, code) fingerprints.
- :mod:`repro.experiments` — one module per table/figure of the paper,
  behind an :class:`~repro.experiments.ExperimentSpec` registry.
- :mod:`repro.telemetry` — span tracing, metrics and structured events
  threaded through all of the above; off by default, deterministic under
  parallelism (see ``docs/ARCHITECTURE.md``).

The prose companions: ``docs/ARCHITECTURE.md`` (layers, data flow, the
determinism contract), ``docs/API.md`` (generated reference of the
public surface), ``DESIGN.md`` (substitutions and per-experiment module
map), ``EXPERIMENTS.md`` (paper vs. reproduction).
"""

__version__ = "1.1.0"
