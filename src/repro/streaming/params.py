"""Per-(service, container, application) streaming policies.

These parameters encode *who* throttles and *how* — the paper's central
finding.  Server-side policies depend only on the container (YouTube
servers pace Flash videos and nobody else — Section 5.3); client-side
policies depend on the application, which is why HTML5 traffic looks
completely different across browsers.

All magnitudes come from Section 5:

* Flash: servers push ~40 s of playback, then 64 kB blocks at an
  accumulation ratio of 1.25;
* HTML5 / Internet Explorer: 256 kB pulls, 10-15 MB buffered;
* HTML5 / Chrome: multi-megabyte pulls (> 2.5 MB), 10-15 MB buffered,
  OFF periods up to ~60 s;
* HTML5 / Android: like Chrome with a 4-8 MB buffer;
* iPad (YouTube): ranged requests over many TCP connections, block size
  proportional to the encoding rate;
* Netflix: multi-bitrate buffering (~50 MB on PCs, ~10 MB on iPad,
  ~40 MB on Android) and client-driven fetches over many connections.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..workloads.video import Video
from .apps import Application, Combo, Container, Service

KB = 1024
MB = 1024 * 1024


# -- server side --------------------------------------------------------------


@dataclass(frozen=True)
class ServerPolicy:
    """How the server feeds one video response."""

    mode: str                         # "paced" | "bulk" | "range"
    buffering_playback_s: float = 40.0  # paced: playback seconds pushed upfront
    block_bytes: int = 64 * KB          # paced: steady-state block size
    accumulation_ratio: float = 1.25    # paced: target Gn / en

    def __post_init__(self) -> None:
        if self.mode not in ("paced", "bulk", "range"):
            raise ValueError(f"unknown server mode {self.mode!r}")
        if self.block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {self.block_bytes!r}")
        if self.accumulation_ratio < 1.0:
            raise ValueError(
                f"accumulation ratio below 1 starves playback "
                f"(got {self.accumulation_ratio!r})"
            )


#: YouTube paces Flash videos at the server (Figures 2-4).
FLASH_SERVER = ServerPolicy(mode="paced")
#: Nobody rate-limits HD-over-Flash or HTML5 at the server (Figures 5-8).
BULK_SERVER = ServerPolicy(mode="bulk")
#: Netflix serves whatever byte ranges the client asks for.
RANGE_SERVER = ServerPolicy(mode="range")


def server_policy_for(container: Container) -> ServerPolicy:
    """Server behaviour is fixed by the container alone (Section 5.3)."""
    if container is Container.FLASH:
        return FLASH_SERVER
    if container is Container.SILVERLIGHT:
        return RANGE_SERVER
    return BULK_SERVER


# -- client side --------------------------------------------------------------


@dataclass(frozen=True)
class GreedyClientPolicy:
    """Read everything as soon as it arrives (Flash plugin, Firefox HTML5)."""

    recv_buffer: int = 512 * KB


@dataclass(frozen=True)
class PullClientPolicy:
    """Throttle by draining the TCP receive buffer on a schedule.

    The client reads ``pull_quantum`` bytes from the socket whenever the
    player buffer has that much free space.  Until ``buffer_target`` bytes
    have been buffered it reads greedily (the aggressive HTML5 buffering
    phase of Figure 3(b)).
    """

    recv_buffer: int
    pull_quantum: int
    buffer_target_range: Tuple[int, int]
    check_interval: float = 0.1
    #: Target steady-state accumulation ratio k = G/e: the buffer target
    #: drifts upward at (k-1)*e so the download rate sustainably exceeds
    #: the encoding rate (the paper's measured medians: IE 1.04,
    #: Chrome 1.29, Android 1.15).
    accumulation_ratio: float = 1.05

    def sample_buffer_target(self, rng: random.Random) -> int:
        lo, hi = self.buffer_target_range
        return int(rng.uniform(lo, hi))

    def target_growth_bps(self, encoding_rate_bps: float) -> float:
        """Buffer-target growth in bytes/second."""
        return (self.accumulation_ratio - 1.0) * encoding_rate_bps / 8


@dataclass(frozen=True)
class IpadClientPolicy:
    """YouTube on iPad: ranged requests, possibly over many connections.

    The block size scales with the encoding rate (Figure 7(b)); low-rate
    videos stream over a single connection with short cycles, high-rate
    videos use periodic re-buffering across successive connections
    (Figure 7(a), Video1 vs Video2).
    """

    recv_buffer: int = 1 * MB
    block_playback_s: float = 4.0          # block ≈ 4 s of playback
    min_block: int = 64 * KB
    max_block: int = 8 * MB
    buffer_target_range: Tuple[int, int] = (8 * MB, 12 * MB)
    accumulation_ratio: float = 1.2
    multi_connection_rate_bps: float = 1e6  # >= this rate: new conn per block
    #: multiplicative spread of steady-state request sizes in the
    #: multi-connection regime — the 64 kB - 8 MB heterogeneity of
    #: Figure 7(a)'s Video1, which mixes short and long cycles
    block_spread: float = 4.0

    def block_bytes(self, rate_bps: float) -> int:
        block = int(self.block_playback_s * rate_bps / 8)
        return max(self.min_block, min(self.max_block, block))


@dataclass(frozen=True)
class NetflixClientPolicy:
    """Silverlight / native Netflix players: client-driven ranged fetches.

    During buffering the player downloads ``buffering_playback_s`` seconds
    of the ``rendition_count`` highest renditions (Akhshabi et al. observed
    fragments of *all* encoding rates on PCs).  In steady state it fetches
    ``block_playback_s``-second blocks of the selected rendition, opening a
    new TCP connection per block when ``new_connection_per_block``.
    """

    recv_buffer: int = 1 * MB
    rendition_count: int = 5               # how many ladder rates to prefetch
    buffering_playback_s: float = 40.0
    block_playback_s: float = 4.0
    accumulation_ratio: float = 1.25
    new_connection_per_block: bool = True
    #: Adaptive rendition selection (Akhshabi et al. [11], cited by the
    #: paper: "the encoding rate used by Netflix depends on the end-to-end
    #: available bandwidth"): after the buffering phase the player measures
    #: its throughput and settles on the highest rendition that fits within
    #: ``adaptive_headroom`` of it.  Disable for a fixed top-rate player.
    adaptive: bool = True
    adaptive_headroom: float = 0.9

    def steady_block_bytes(self, rate_bps: float) -> int:
        return max(256 * KB, int(self.block_playback_s * rate_bps / 8))

    def select_rendition(self, rates, bandwidth_bps: float) -> float:
        """The highest ladder rate sustainable at ``bandwidth_bps``."""
        budget = bandwidth_bps * self.adaptive_headroom
        fitting = [r for r in rates if r <= budget]
        return max(fitting) if fitting else min(rates)


# -- resilience ---------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How a player reacts when a transfer dies mid-stream.

    Detection: a connection with an incomplete transfer whose receive
    window is open but which receives *no segments at all* for
    ``stall_timeout`` seconds is declared dead and aborted (the window
    check keeps deliberate client-side throttling — a full receive buffer
    during an OFF period — from looking like a stall).

    Recovery: up to ``max_retries`` reconnect attempts per transfer, with
    exponential backoff (``backoff_base * backoff_factor**attempt``,
    capped at ``backoff_max``, jittered by ±``backoff_jitter``).  With
    ``resume_with_range`` the new request resumes from the last contiguous
    byte via HTTP ``Range``; otherwise the whole transfer restarts and the
    previously received bytes count as waste.

    Degradation: after ``downshift_after`` consecutive rebuffer events the
    adaptive players (Netflix, iPad) switch to the next lower rendition —
    the Figure 11 multi-bitrate machinery reused for graceful degradation.
    """

    max_retries: int = 6
    stall_timeout: float = 4.0
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 15.0
    backoff_jitter: float = 0.3
    resume_with_range: bool = True
    downshift_after: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.stall_timeout <= 0:
            raise ValueError(f"stall_timeout must be positive, got {self.stall_timeout!r}")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(f"backoff_jitter must be in [0, 1), got {self.backoff_jitter!r}")

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Delay before reconnect attempt ``attempt`` (0-based), jittered."""
        delay = min(self.backoff_base * self.backoff_factor ** attempt,
                    self.backoff_max)
        if self.backoff_jitter:
            delay *= 1.0 + rng.uniform(-self.backoff_jitter, self.backoff_jitter)
        return max(0.0, delay)


#: Detect stalls and fail fast, but never reconnect: a dead connection
#: cleanly *fails* the session instead of hanging it.
NO_RETRY = RetryPolicy(max_retries=0)
#: Bounded reconnects with Range resume — the resilient default.
DEFAULT_RETRY = RetryPolicy()
#: Reconnects but restarts each transfer from its first byte (quantifies
#: what Range resume saves).
RESTART_RETRY = RetryPolicy(resume_with_range=False)


ClientPolicy = object  # union of the four policy dataclasses


#: HTML5 pull policies per application (Section 5.1).
IE_HTML5 = PullClientPolicy(
    recv_buffer=384 * KB,
    pull_quantum=256 * KB,
    buffer_target_range=(9 * MB, 13 * MB),
    accumulation_ratio=1.05,
)
CHROME_HTML5 = PullClientPolicy(
    recv_buffer=2 * MB,
    pull_quantum=5 * MB,
    buffer_target_range=(9 * MB, 13 * MB),
    accumulation_ratio=1.3,
)
ANDROID_HTML5 = PullClientPolicy(
    recv_buffer=2 * MB,
    pull_quantum=3 * MB + 512 * KB,
    buffer_target_range=(4 * MB, 7 * MB),
    accumulation_ratio=1.2,
)
FIREFOX_HTML5 = GreedyClientPolicy(recv_buffer=4 * MB)
FLASH_CLIENT = GreedyClientPolicy(recv_buffer=512 * KB)
HD_CLIENT = GreedyClientPolicy(recv_buffer=1 * MB)
IPAD_YOUTUBE = IpadClientPolicy()

#: Netflix buffering magnitudes per application (Figure 11).
NETFLIX_PC = NetflixClientPolicy(
    rendition_count=5, buffering_playback_s=40.0, new_connection_per_block=True,
)
NETFLIX_IPAD = NetflixClientPolicy(
    rendition_count=2, buffering_playback_s=12.0, new_connection_per_block=True,
)
NETFLIX_ANDROID = NetflixClientPolicy(
    rendition_count=5,
    buffering_playback_s=34.0,
    block_playback_s=12.0,
    new_connection_per_block=False,
)


class UnsupportedCombination(ValueError):
    """This (service, container, application) cell does not exist."""


def client_policy_for(service: Service, container: Container,
                      application: Application):
    """The client-side policy for one Table 1 cell."""
    if service is Service.NETFLIX:
        if container is not Container.SILVERLIGHT:
            raise UnsupportedCombination(
                f"Netflix only streams Silverlight, not {container}"
            )
        if application is Application.IOS:
            return NETFLIX_IPAD
        if application is Application.ANDROID:
            return NETFLIX_ANDROID
        return NETFLIX_PC

    if container in (Container.FLASH, Container.FLASH_HD):
        if application.is_mobile:
            raise UnsupportedCombination(
                f"mobile applications do not play {container}"
            )
        return FLASH_CLIENT if container is Container.FLASH else HD_CLIENT

    if container is Container.HTML5:
        return {
            Application.INTERNET_EXPLORER: IE_HTML5,
            Application.FIREFOX: FIREFOX_HTML5,
            Application.CHROME: CHROME_HTML5,
            Application.ANDROID: ANDROID_HTML5,
            Application.IOS: IPAD_YOUTUBE,
        }[application]

    raise UnsupportedCombination(f"no policy for {service}/{container}/{application}")
