"""The three streaming strategies (Section 3)."""

from __future__ import annotations

from enum import Enum

#: Block-size boundary between short and long ON-OFF cycles (Section 3):
#: ON periods moving more than 2.5 MB make a cycle "long".
LONG_BLOCK_THRESHOLD = int(2.5 * 1024 * 1024)


class StreamingStrategy(Enum):
    """How the data transfer rate is limited in the steady state."""

    NO_ONOFF = "No"          # bulk TCP transfer, no steady state at all
    SHORT_ONOFF = "Short"    # periodic blocks < 2.5 MB
    LONG_ONOFF = "Long"      # periodic blocks > 2.5 MB
    MIXED = "Multiple"       # the iPad case: strategy varies in-session

    def __str__(self) -> str:
        return self.value

    @property
    def has_steady_state(self) -> bool:
        return self is not StreamingStrategy.NO_ONOFF

    @property
    def throttled(self) -> bool:
        """Whether the application layer restricts the transfer rate."""
        return self is not StreamingStrategy.NO_ONOFF
