"""Services, containers, applications — and the Table 1 matrix.

Table 1 of the paper maps each (application, container) combination to the
streaming strategy it produces.  :data:`TABLE1_EXPECTED` records the
published matrix; the Table 1 experiment re-derives every cell from
simulated traffic and compares.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Tuple

from .strategy import StreamingStrategy


class Service(Enum):
    YOUTUBE = "YouTube"
    NETFLIX = "Netflix"

    def __str__(self) -> str:
        return self.value


class Container(Enum):
    FLASH = "Flash"          # YouTube default on PCs
    FLASH_HD = "Flash HD"    # 720p YouTube over Flash
    HTML5 = "HTML5"          # webM
    SILVERLIGHT = "Silverlight"

    def __str__(self) -> str:
        return self.value


class Application(Enum):
    INTERNET_EXPLORER = "Internet Explorer"
    FIREFOX = "Mozilla Firefox"
    CHROME = "Google Chrome"
    IOS = "iOS (native)"
    ANDROID = "Android (native)"

    def __str__(self) -> str:
        return self.value

    @property
    def is_mobile(self) -> bool:
        return self in (Application.IOS, Application.ANDROID)


#: A (service, container, application) cell of Table 1.
Combo = Tuple[Service, Container, Application]

#: The streaming-strategy matrix the paper reports (Table 1).
TABLE1_EXPECTED: Dict[Combo, StreamingStrategy] = {
    # YouTube / Flash: server-paced regardless of browser
    (Service.YOUTUBE, Container.FLASH, Application.INTERNET_EXPLORER):
        StreamingStrategy.SHORT_ONOFF,
    (Service.YOUTUBE, Container.FLASH, Application.FIREFOX):
        StreamingStrategy.SHORT_ONOFF,
    (Service.YOUTUBE, Container.FLASH, Application.CHROME):
        StreamingStrategy.SHORT_ONOFF,
    # YouTube / HTML5: each application throttles its own way
    (Service.YOUTUBE, Container.HTML5, Application.INTERNET_EXPLORER):
        StreamingStrategy.SHORT_ONOFF,
    (Service.YOUTUBE, Container.HTML5, Application.FIREFOX):
        StreamingStrategy.NO_ONOFF,
    (Service.YOUTUBE, Container.HTML5, Application.CHROME):
        StreamingStrategy.LONG_ONOFF,
    (Service.YOUTUBE, Container.HTML5, Application.IOS):
        StreamingStrategy.MIXED,
    (Service.YOUTUBE, Container.HTML5, Application.ANDROID):
        StreamingStrategy.LONG_ONOFF,
    # YouTube / Flash HD: nobody limits the rate
    (Service.YOUTUBE, Container.FLASH_HD, Application.INTERNET_EXPLORER):
        StreamingStrategy.NO_ONOFF,
    (Service.YOUTUBE, Container.FLASH_HD, Application.FIREFOX):
        StreamingStrategy.NO_ONOFF,
    (Service.YOUTUBE, Container.FLASH_HD, Application.CHROME):
        StreamingStrategy.NO_ONOFF,
    # Netflix / Silverlight
    (Service.NETFLIX, Container.SILVERLIGHT, Application.INTERNET_EXPLORER):
        StreamingStrategy.SHORT_ONOFF,
    (Service.NETFLIX, Container.SILVERLIGHT, Application.FIREFOX):
        StreamingStrategy.SHORT_ONOFF,
    (Service.NETFLIX, Container.SILVERLIGHT, Application.CHROME):
        StreamingStrategy.SHORT_ONOFF,
    (Service.NETFLIX, Container.SILVERLIGHT, Application.IOS):
        StreamingStrategy.SHORT_ONOFF,
    (Service.NETFLIX, Container.SILVERLIGHT, Application.ANDROID):
        StreamingStrategy.LONG_ONOFF,
}


def table1_combos() -> List[Combo]:
    """All Table 1 cells in the paper's row/column order."""
    return list(TABLE1_EXPECTED)


def container_for_video(video, service: Service) -> Container:
    """The container a video streams in for a given service."""
    if service is Service.NETFLIX:
        return Container.SILVERLIGHT
    if video.container == "webm":
        return Container.HTML5
    if video.container == "flv" and video.resolution == "720p":
        return Container.FLASH_HD
    return Container.FLASH
