"""Driving one streaming session on the simulator (the Section 4.2 method).

A session reproduces the paper's measurement procedure: start a capture,
start the application, stream for 180 seconds (or to completion), stop
both.  The result carries the packet records, the ground-truth video, and
player/server statistics — everything the analysis pipeline and the
experiments need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pcap import PacketRecord, TraceCapture
from ..simnet import (
    FaultLog,
    FaultSchedule,
    Network,
    NetworkProfile,
    PeriodicProbe,
    TimeSeries,
    build_client_server,
)
from ..simnet.rng import derive_seed
from ..tcp import TcpConfig
from ..telemetry import (
    Recorder,
    SessionTelemetry,
    current_recorder,
    use_recorder,
)
from ..workloads.video import Video
from .apps import Application, Container, Service, container_for_video
from .client import (
    GreedyPlayer,
    IpadPlayer,
    NetflixPlayer,
    PlayerBase,
    PullPlayer,
)
from .params import (
    GreedyClientPolicy,
    IpadClientPolicy,
    NetflixClientPolicy,
    PullClientPolicy,
    RetryPolicy,
    client_policy_for,
    server_policy_for,
)
from .server import VideoServer

#: The capture length used throughout the paper's measurements.
CAPTURE_DURATION_S = 180.0


@dataclass
class SessionConfig:
    """Everything defining one measured streaming session."""

    profile: NetworkProfile
    service: Service
    application: Application
    container: Optional[Container] = None   # derived from the video if None
    capture_duration: float = CAPTURE_DURATION_S
    seed: int = 0
    watch_fraction: float = 1.0             # beta_n; < 1 interrupts playback
    probe_period: Optional[float] = None    # sample player buffer if set
    trace_cwnd: bool = False                # record server-side cwnd traces
    server_reset_cwnd_after_idle: bool = False
    mss: int = 1460
    retry_policy: Optional[RetryPolicy] = None  # None: no watchdog/retries
    faults: Optional[FaultSchedule] = None      # armed against the access path


@dataclass
class SessionResult:
    """Outcome of one streaming session."""

    video: Video
    config: SessionConfig
    container: Container
    downloaded: int
    connections_opened: int
    playback_position_s: float
    interrupted: bool
    player_finished: bool
    capture: TraceCapture
    buffer_series: Optional[TimeSeries] = None
    rwnd_series: Optional[TimeSeries] = None
    #: Server-side congestion-window traces, one per accepted connection
    #: in accept order; populated only when ``config.trace_cwnd`` is set.
    cwnd_traces: List[TimeSeries] = field(default_factory=list)
    server_requests: int = 0
    playback_rate_bps: float = 0.0
    duration_simulated: float = 0.0
    # -- resilience / QoE (populated by every run; non-default under faults) --
    stall_events: List[Tuple[float, float]] = field(default_factory=list)
    startup_delay_s: Optional[float] = None
    rebuffer_count: int = 0
    rebuffer_ratio: float = 0.0
    retry_count: int = 0
    failed: bool = False
    fail_reason: Optional[str] = None
    wasted_redownloaded_bytes: int = 0
    downshifts: List[Tuple[float, float, float]] = field(default_factory=list)
    fault_log: Optional[FaultLog] = None
    #: Per-session telemetry snapshot; ``None`` unless the session ran
    #: inside an enabled :func:`repro.telemetry.recording` scope.
    telemetry: Optional[SessionTelemetry] = None

    @property
    def records(self) -> List[PacketRecord]:
        """Captured packets as analysis records.

        Materialized lazily from the capture's columnar buffers (and
        cached there): sessions whose results are consumed through the
        columnar paths never pay for per-packet record objects.
        """
        return self.capture.records

    @property
    def stall_time_s(self) -> float:
        return sum(end - start for start, end in self.stall_events)

    @property
    def client_ip(self) -> str:
        from ..simnet import CLIENT_IP

        return CLIENT_IP

    @property
    def server_ip(self) -> str:
        from ..simnet import SERVER_IP

        return SERVER_IP

    @property
    def unused_bytes(self) -> float:
        """Downloaded but never played — the Section 6.2 waste metric."""
        consumed = self.playback_position_s * self.playback_rate_bps / 8
        return max(0.0, self.downloaded - consumed)


def _make_player(
    net: Network,
    client_host,
    server_ip: str,
    video: Video,
    service: Service,
    container: Container,
    application: Application,
    rng: random.Random,
    tcp_config: TcpConfig,
    retry_policy: Optional[RetryPolicy] = None,
) -> PlayerBase:
    policy = client_policy_for(service, container, application)
    kwargs = dict(rng=rng, tcp_config=tcp_config, retry_policy=retry_policy)
    if isinstance(policy, GreedyClientPolicy):
        rate = video.encoding_rate_bps
        player = GreedyPlayer(client_host, net.scheduler, server_ip, video,
                              policy=policy, rate_bps=rate, **kwargs)
    elif isinstance(policy, PullClientPolicy):
        player = PullPlayer(client_host, net.scheduler, server_ip, video,
                            policy=policy, **kwargs)
    elif isinstance(policy, IpadClientPolicy):
        player = IpadPlayer(client_host, net.scheduler, server_ip, video,
                            policy=policy, **kwargs)
    elif isinstance(policy, NetflixClientPolicy):
        player = NetflixPlayer(client_host, net.scheduler, server_ip, video,
                               policy=policy, **kwargs)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unhandled policy {policy!r}")
    return player


def run_session(video: Video, config: SessionConfig) -> SessionResult:
    """Stream ``video`` once under ``config`` and capture the traffic.

    When the ambient :func:`repro.telemetry.current_recorder` is enabled,
    the session records into a *private* recorder whose snapshot is
    attached as ``result.telemetry`` — the engine merges those snapshots
    in plan order, so recording never leaks between concurrent sessions
    and ``jobs=N`` telemetry equals ``jobs=1`` telemetry.
    """
    if not current_recorder().enabled:
        return _run_session_impl(video, config)
    rec = Recorder()
    with use_recorder(rec):
        with rec.span("session"):
            result = _run_session_impl(video, config)
    result.telemetry = rec.snapshot()
    return result


def _run_session_impl(video: Video, config: SessionConfig) -> SessionResult:
    rec = current_recorder()
    with rec.span("setup"):
        container = (config.container
                     or container_for_video(video, config.service))
        session_seed = derive_seed(config.seed, f"session:{video.video_id}")
        net, client_host, server_host, path = build_client_server(
            config.profile, seed=session_seed
        )
        rng = net.rng.stream("player")

        capture = TraceCapture(name=f"{video.video_id}@{config.profile.name}")
        capture.attach(path)

        server_tcp = TcpConfig(
            mss=config.mss,
            recv_buffer=256 * 1024,
            reset_cwnd_after_idle=config.server_reset_cwnd_after_idle,
            trace_cwnd=config.trace_cwnd,
        )
        server = VideoServer(
            server_host,
            net.scheduler,
            {video.video_id: video},
            tcp_config=server_tcp,
            container_override=container,
        )

        policy = client_policy_for(config.service, container,
                                   config.application)
        client_tcp = TcpConfig(mss=config.mss, recv_buffer=policy.recv_buffer)
        player = _make_player(net, client_host, server_host.ip, video,
                              config.service, container, config.application,
                              rng, client_tcp,
                              retry_policy=config.retry_policy)

        fault_log: Optional[FaultLog] = None
        if config.faults is not None:
            fault_log = config.faults.apply(
                net.scheduler, path, server=server,
                rng=net.rng.stream("faults"))

        buffer_series: Optional[TimeSeries] = None
        if config.probe_period:
            probe = PeriodicProbe(
                net.scheduler, config.probe_period,
                lambda: player.buffer_level(), name="player-buffer",
            )
            probe.start()
            buffer_series = probe.series

        # user interruption: stop once beta * L seconds have been *watched*
        if config.watch_fraction < 1.0:
            watch_limit = config.watch_fraction * video.duration

            def interruption_check() -> None:
                if player.stopped:
                    return
                if player.playback_position_s() >= watch_limit:
                    player.stop("lack-of-interest")
                    return
                net.scheduler.after(0.25, interruption_check,
                                    label="interrupt")

            net.scheduler.after(0.25, interruption_check, label="interrupt")

    if rec.enabled:
        rec.event("session.start", t=0.0, video=video.video_id,
                  profile=config.profile.name,
                  service=config.service.name,
                  application=config.application.name)

    with rec.span("stream"):
        player.start()
        net.run_until(config.capture_duration)

    with rec.span("finalize"):
        player.finalize_qoe(net.now())
        capture.stop()

    if rec.enabled:
        rec.inc("sessions.completed")
        rec.inc("tcp.connections_opened", player.connections_opened)
        rec.inc("pcap.packets", len(capture))
        rec.observe("session.sim_seconds", net.now())
        rec.observe("session.downloaded_bytes", player.downloaded)
        rec.event("session.end", t=net.now(), video=video.video_id,
                  downloaded=player.downloaded,
                  finished=player.finished,
                  rebuffers=player.rebuffer_count)

    return SessionResult(
        video=video,
        config=config,
        container=container,
        downloaded=player.downloaded,
        connections_opened=player.connections_opened,
        playback_position_s=player.playback_position_s(),
        interrupted=player.stopped and not player.failed,
        player_finished=player.finished,
        capture=capture,
        buffer_series=buffer_series,
        cwnd_traces=list(server.cwnd_traces),
        server_requests=server.requests_served,
        playback_rate_bps=player.playback_rate_bps,
        duration_simulated=net.now(),
        stall_events=list(player.stall_events),
        startup_delay_s=player.startup_delay_s,
        rebuffer_count=player.rebuffer_count,
        rebuffer_ratio=player.rebuffer_ratio(net.now()),
        retry_count=player.retry_count,
        failed=player.failed,
        fail_reason=player.fail_reason,
        wasted_redownloaded_bytes=player.wasted_bytes,
        downshifts=list(player.downshifts),
        fault_log=fault_log,
    )


def run_sessions(videos, config: SessionConfig) -> List[SessionResult]:
    """Deprecated: delegate a serial session batch to the engine.

    Historically this looped :func:`run_session` inline; it now derives
    the same per-session seeds and hands the plans to
    :func:`repro.runner.run_sessions`, so there is one campaign entry
    point and ambient engine options (jobs, cache, observers,
    supervision) apply here too.  Results are identical in content and
    order; new code should build :class:`~repro.runner.SessionPlan`
    batches and call the engine directly.
    """
    import warnings

    warnings.warn(
        "repro.streaming.run_sessions is deprecated; build SessionPlan "
        "batches and call repro.runner.run_sessions (the engine) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..runner.pool import run_sessions as _engine_run_sessions

    plans = [
        (video,
         SessionConfig(**{**vars(config),
                          "seed": derive_seed(config.seed, str(i))}))
        for i, video in enumerate(videos)
    ]
    return _engine_run_sessions(plans)
