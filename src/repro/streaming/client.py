"""The video players: one class per client-side throttling behaviour.

Each player reproduces the mechanism the paper infers for its application:

* :class:`GreedyPlayer` — reads as fast as TCP delivers (the Flash plugin
  in any browser, Firefox's HTML5 player, HD playback).  Whatever rate
  limiting exists must come from the server.
* :class:`PullPlayer` — buffers aggressively to a 4-15 MB target, then
  drains the TCP receive buffer in fixed quanta as playback frees space.
  With a 256 kB quantum this is Internet Explorer's HTML5 behaviour
  (Figure 2(b): the receive window periodically empties); with multi-
  megabyte quanta it is Chrome's and Android's (Figure 6).
* :class:`IpadPlayer` — YouTube on iOS: byte-range requests, block size
  proportional to the encoding rate, one TCP connection per block for
  high-rate videos (Figure 7).
* :class:`NetflixPlayer` — Silverlight / native Netflix: prefetches
  fragments of several renditions during buffering (Figure 11), then
  fetches blocks of the selected rendition over fresh connections
  (PC, iPad) or one persistent connection with large blocks (Android).

All players share playback bookkeeping: playback starts once a couple of
seconds of media are buffered, consumes bytes at the encoding rate, and the
player buffer level is ``downloaded - consumed``.

Resilience: every HTTP transfer is tracked as a :class:`TransferJob`, so a
connection that dies (link outage, server RST, 503) surfaces as a failure
instead of a silent hang.  With a :class:`~repro.streaming.params.
RetryPolicy` attached, players additionally run a stall watchdog and
recover by reconnecting with exponential backoff and resuming the transfer
with an HTTP ``Range`` request from the last contiguous byte.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from ..simnet.node import Host
from ..simnet.scheduler import EventHandle, EventScheduler
from ..tcp import TcpConfig, TcpConnection
from ..telemetry import current_recorder
from ..workloads.video import Video
from .httpconn import HttpResponseStream
from .params import (
    GreedyClientPolicy,
    IpadClientPolicy,
    NetflixClientPolicy,
    PullClientPolicy,
    RetryPolicy,
)
from .server import video_path

#: Seconds of media that must be buffered before playback begins.
PLAYBACK_START_S = 2.0

#: Seconds of media that must re-accumulate before a stalled player resumes.
STALL_RESUME_S = 1.0

#: Period of the per-player QoE monitor / stall watchdog.
MONITOR_INTERVAL_S = 0.25


class TransferJob:
    """One logical HTTP transfer, surviving reconnects and Range resumes.

    ``start``/``end`` are absolute byte offsets into the file (``end``
    inclusive, ``None`` meaning to EOF); ``received`` accumulates across
    connection attempts, so ``start + received`` is always the first byte
    a resumed request must ask for.
    """

    __slots__ = ("path", "start", "end", "ranged", "received", "attempts",
                 "done", "error_status", "on_data", "on_complete",
                 "_segs_seen", "_last_activity")

    def __init__(
        self,
        path: str,
        *,
        start: int = 0,
        end: Optional[int] = None,
        ranged: bool = False,
        on_data: Optional[Callable[[TcpConnection, HttpResponseStream], None]] = None,
        on_complete: Optional[Callable[[TcpConnection], None]] = None,
    ) -> None:
        self.path = path
        self.start = start
        self.end = end
        self.ranged = ranged or start > 0 or end is not None
        self.received = 0
        self.attempts = 0          # failed attempts so far
        self.done = False
        self.error_status: Optional[int] = None
        self.on_data = on_data
        self.on_complete = on_complete
        self._segs_seen = 0        # watchdog: conn.stats.segments_received
        self._last_activity = 0.0  # watchdog: last time progress was seen

    @property
    def next_offset(self) -> int:
        """First byte the next (re)request should ask for."""
        return self.start + self.received


class PlayerBase:
    """Shared machinery: connections, playback clock, interruption, QoE."""

    def __init__(
        self,
        host: Host,
        scheduler: EventScheduler,
        server_ip: str,
        video: Video,
        *,
        rng: random.Random,
        server_port: int = 80,
        recv_buffer: int = 512 * 1024,
        tcp_config: Optional[TcpConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.scheduler = scheduler
        self.server_ip = server_ip
        self.server_port = server_port
        self.video = video
        self.rng = rng
        self.recv_buffer = recv_buffer
        self.tcp_config = tcp_config
        self.retry_policy = retry_policy

        self.downloaded = 0            # body bytes received, all connections
        self.playback_started_at: Optional[float] = None
        self.playback_rate_bps = video.encoding_rate_bps
        self.stopped = False
        self.stop_reason: Optional[str] = None
        self._frozen_consumed: Optional[float] = None  # set when stopped
        self.connections: List[TcpConnection] = []
        self.connections_opened = 0
        self._timers: List[EventHandle] = []

        # -- QoE / resilience accounting --------------------------------------
        self.stall_events: List[Tuple[float, float]] = []
        self.rebuffer_count = 0        # stalls that ended with playback resuming
        self.retry_count = 0           # reconnect attempts actually made
        self.startup_delay_s: Optional[float] = None
        self.failed = False
        self.fail_reason: Optional[str] = None
        self.wasted_bytes = 0          # bytes re-downloaded by non-resuming restarts
        self.downshifts: List[Tuple[float, float, float]] = []  # (t, old, new)
        #: Hook invoked as ``on_conn_failed(player, conn, reason)`` whenever a
        #: transfer-bearing connection dies before its response completed.
        self.on_conn_failed: Optional[
            Callable[["PlayerBase", TcpConnection, str], None]] = None
        self._session_started_at: Optional[float] = None
        self._stall_since: Optional[float] = None
        self._consecutive_rebuffers = 0
        self._monitor_started = False
        # One recorder per player (= per session); request/stall paths
        # guard on `.enabled` so the disabled path stays a single check.
        self._telemetry = current_recorder()

    # -- playback ------------------------------------------------------------

    def _maybe_start_playback(self) -> None:
        if self.playback_started_at is not None:
            return
        threshold = PLAYBACK_START_S * self.playback_rate_bps / 8
        if self.downloaded >= threshold:
            now = self.scheduler.clock.now()
            self.playback_started_at = now
            if self._session_started_at is not None:
                self.startup_delay_s = now - self._session_started_at
            if self._telemetry.enabled:
                self._telemetry.event("player.playback_start", t=now,
                                      startup_delay_s=self.startup_delay_s)

    def consumed(self, now: Optional[float] = None) -> float:
        """Bytes of media the player has consumed by time ``now``.

        Once the session is stopped the playback clock freezes: a viewer
        who quit at 60 s has watched 60 s, no matter how long the capture
        keeps running.
        """
        if self._frozen_consumed is not None:
            return self._frozen_consumed
        if self.playback_started_at is None:
            return 0.0
        t = self.scheduler.clock.now() if now is None else now
        elapsed = max(0.0, t - self.playback_started_at)
        return min(float(self.downloaded),
                   elapsed * self.playback_rate_bps / 8)

    def buffer_level(self, now: Optional[float] = None) -> float:
        """Player-buffer occupancy in bytes (downloaded, not yet played)."""
        return self.downloaded - self.consumed(now)

    def playback_position_s(self, now: Optional[float] = None) -> float:
        """Seconds of the video watched so far."""
        return self.consumed(now) * 8 / self.playback_rate_bps

    @property
    def stall_time_s(self) -> float:
        """Total seconds spent stalled (including a still-open stall)."""
        total = sum(end - start for start, end in self.stall_events)
        if self._stall_since is not None:
            total += self.scheduler.clock.now() - self._stall_since
        return total

    def rebuffer_ratio(self, now: Optional[float] = None) -> float:
        """Stall time as a fraction of (watch time + stall time)."""
        stall = self.stall_time_s
        denom = self.playback_position_s(now) + stall
        return stall / denom if denom > 0 else 0.0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        raise NotImplementedError

    def stop(self, reason: str = "interrupted") -> None:
        """Abort the session (user interruption, Section 6.2)."""
        if self.stopped:
            return
        now = self.scheduler.clock.now()
        self._frozen_consumed = self.consumed(now)
        self.stopped = True
        self.stop_reason = reason
        if self._stall_since is not None:
            self.stall_events.append((self._stall_since, now))
            self._stall_since = None
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for conn in self.connections:
            conn._job = None  # type: ignore[attr-defined]
            conn.on_closed = None
            if not conn.fully_closed:
                conn.abort()

    def finalize_qoe(self, now: float) -> None:
        """Close an open stall interval at the end of a capture."""
        if not self.stopped and self._stall_since is not None:
            self.stall_events.append((self._stall_since, now))
            self._stall_since = None

    @property
    def finished(self) -> bool:
        """All requested media received (players may stop earlier)."""
        return self.downloaded >= self.expected_bytes

    @property
    def expected_bytes(self) -> int:
        """Total body bytes this player intends to download."""
        return self.video.size_bytes

    # -- QoE monitor / stall watchdog -------------------------------------------

    def _ensure_monitor(self) -> None:
        if self._monitor_started or self.stopped:
            return
        self._monitor_started = True
        self._session_started_at = self.scheduler.clock.now()
        self._schedule(MONITOR_INTERVAL_S, self._monitor_tick, "qoe:check")

    def _monitor_tick(self) -> None:
        if self.stopped:
            return
        now = self.scheduler.clock.now()
        self._track_stalls(now)
        if self.retry_policy is not None:
            self._check_transfer_stalls(now)
        if not self.finished:
            self._schedule(self._monitor_delay(now), self._monitor_tick,
                           "qoe:check")
        elif self._stall_since is not None:
            # the download completed while playback was starved; the stall
            # ends here as far as accounting is concerned
            self.stall_events.append((self._stall_since, now))
            self._stall_since = None

    def _monitor_delay(self, now: float) -> float:
        """Delay to the next monitor tick, skipping provably idle ones.

        With the scheduler's fast-forward enabled, dense quarter-second
        ticks are replaced by a jump to the earliest *grid* instant at
        which the player buffer could possibly run dry — the stall-start
        formula in :meth:`_track_stalls` is tick-independent, ``downloaded``
        only grows, and every skipped tick provably mutates nothing, so
        stall detection lands on exactly the tick dense polling would
        have used.  The watchdog (``retry_policy``) and an open stall
        both need real polling and force the dense cadence.
        """
        if (not self.scheduler.fast_forward
                or self.retry_policy is not None
                or self._stall_since is not None):
            return MONITOR_INTERVAL_S
        if self.playback_started_at is None:
            # playback needs PLAYBACK_START_S of media buffered before it
            # can begin, so no stall can be *detected* sooner than that
            # after it starts; PLAYBACK_START_S is a grid multiple.
            return PLAYBACK_START_S
        # earliest instant the buffer can run dry if no more bytes arrive
        t0 = (self.playback_started_at
              + self.downloaded * 8 / self.playback_rate_bps)
        if t0 <= now + MONITOR_INTERVAL_S:
            return MONITOR_INTERVAL_S
        # land exactly on the dense-tick grid (session monitors anchor at
        # t=0, and k * INTERVAL is float-exact for the 0.25 s grid)
        k = int(t0 / MONITOR_INTERVAL_S)
        target = k * MONITOR_INTERVAL_S
        if target < t0:
            target += MONITOR_INTERVAL_S
        return target - now

    def _track_stalls(self, now: float) -> None:
        if self.playback_started_at is None:
            return
        buffer_bytes = self.buffer_level(now)
        media_left = self.playback_position_s(now) < self.video.duration - 1e-9
        if self._stall_since is None:
            if buffer_bytes <= 0.0 and not self.finished and media_left:
                # exact starvation instant: when the playback clock caught
                # up with the bytes downloaded so far
                start = (self.playback_started_at
                         + self.downloaded * 8 / self.playback_rate_bps)
                self._stall_since = min(max(start, self.playback_started_at), now)
        else:
            resume_bytes = STALL_RESUME_S * self.playback_rate_bps / 8
            if buffer_bytes >= resume_bytes or self.finished:
                if self._telemetry.enabled:
                    self._telemetry.inc("player.rebuffers")
                    self._telemetry.event("player.rebuffer", t=now,
                                          started=self._stall_since,
                                          duration=now - self._stall_since)
                self.stall_events.append((self._stall_since, now))
                self._stall_since = None
                self.rebuffer_count += 1
                self._consecutive_rebuffers += 1
                policy = self.retry_policy
                if (policy is not None and policy.downshift_after > 0
                        and self._consecutive_rebuffers >= policy.downshift_after):
                    if self._downshift(now):
                        self._consecutive_rebuffers = 0

    def _downshift(self, now: float) -> bool:
        """Switch to a lower rendition after repeated rebuffering.

        Returns True if a switch happened; the base player is single-rate
        and cannot degrade.
        """
        return False

    def _check_transfer_stalls(self, now: float) -> None:
        """Abort transfers that made no progress for ``stall_timeout`` seconds.

        Progress is judged at the TCP level (segments received), and only
        while our receive window is open: a full receive buffer during a
        client-throttled OFF period is self-inflicted silence, not a stall.
        """
        policy = self.retry_policy
        assert policy is not None
        for conn in list(self.connections):
            if conn.fully_closed:
                continue
            job: Optional[TransferJob] = getattr(conn, "_job", None)
            if job is None or job.done:
                continue
            segs = conn.stats.segments_received
            if segs != job._segs_seen:
                job._segs_seen = segs
                job._last_activity = now
                continue
            if conn.recvbuf.window < conn.config.mss:
                job._last_activity = now
                continue
            if now - job._last_activity >= policy.stall_timeout:
                self._handle_transfer_failure(conn, job, "stall-timeout")

    # -- plumbing ---------------------------------------------------------------

    def _note_request(self, offset: int, ranged: bool) -> None:
        """Telemetry hook for every HTTP request the player issues.

        Each request opens an ON-period, so the event log doubles as the
        ground-truth record of ON-OFF block boundaries the analysis
        pipeline later infers from packet gaps.
        """
        if self._telemetry.enabled:
            self._telemetry.inc("player.requests")
            self._telemetry.event("player.request",
                                  t=self.scheduler.clock.now(),
                                  offset=offset, ranged=ranged)

    def _schedule(self, delay: float, fn: Callable[[], None], label: str) -> None:
        if self.stopped:
            return
        handle = self.scheduler.after(delay, fn, label=label)
        self._timers.append(handle)
        # prune fired/cancelled handles occasionally
        if len(self._timers) > 64:
            self._timers = [h for h in self._timers if not h.cancelled]

    def _on_body(self, n: int) -> None:
        self.downloaded += n
        self._maybe_start_playback()

    def _on_job_body(self, job: TransferJob, n: int) -> None:
        # per-segment hot path: _on_body inlined, playback check folded
        # into the one attribute read that decides it
        job.received += n
        self.downloaded += n
        if self.playback_started_at is None:
            self._maybe_start_playback()

    def _on_job_response(self, job: TransferJob, response) -> None:
        if response.status not in (200, 206):
            job.error_status = response.status

    def _on_job_complete(self, conn: TcpConnection, job: TransferJob) -> None:
        if job.error_status is not None:
            status = job.error_status
            job.error_status = None
            self._handle_transfer_failure(conn, job, f"http-{status}")
            return
        job.done = True
        conn._job = None  # type: ignore[attr-defined]
        if job.on_complete:
            job.on_complete(conn)

    def _attach_job(self, conn: TcpConnection, stream: HttpResponseStream,
                    job: TransferJob) -> None:
        conn._job = job  # type: ignore[attr-defined]
        job._segs_seen = conn.stats.segments_received
        job._last_activity = self.scheduler.clock.now()
        stream.on_body_bytes = lambda n: self._on_job_body(job, n)
        stream.on_response = lambda resp: self._on_job_response(job, resp)
        stream.on_complete = lambda resp: self._on_job_complete(conn, job)

    def _job_on_data(self, conn: TcpConnection) -> None:
        stream: HttpResponseStream = conn.http_stream  # type: ignore[attr-defined]
        job: Optional[TransferJob] = getattr(conn, "_job", None)
        if job is not None and job.on_data is not None:
            job.on_data(conn, stream)
        else:
            stream.take(conn, 1 << 62)

    def _open_connection(
        self,
        path: str,
        *,
        range_start: Optional[int] = None,
        range_end: Optional[int] = None,
        on_data: Optional[Callable[[TcpConnection, HttpResponseStream], None]] = None,
        on_complete: Optional[Callable[[TcpConnection], None]] = None,
        job: Optional[TransferJob] = None,
    ) -> TcpConnection:
        """Open a connection, send one GET, wire up response accounting.

        ``on_data`` decides how greedily the socket is drained; the default
        reads everything immediately.  ``on_complete`` receives the
        connection the response finished on (which, after a reconnect, may
        not be the one this call returned).  Passing ``job`` resumes an
        existing transfer from its last contiguous byte.
        """
        if job is None:
            job = TransferJob(
                path,
                start=range_start if range_start is not None else 0,
                end=range_end,
                ranged=range_start is not None,
                on_data=on_data,
                on_complete=on_complete,
            )
        self._ensure_monitor()
        config = self.tcp_config or TcpConfig(recv_buffer=self.recv_buffer)
        conn = TcpConnection(
            self.host,
            self.scheduler,
            self.host.allocate_port(),
            self.server_ip,
            self.server_port,
            config=config,
        )
        stream = HttpResponseStream(on_body_bytes=lambda n: None)
        conn.http_stream = stream  # type: ignore[attr-defined]
        self._attach_job(conn, stream, job)
        conn.on_data = self._job_on_data
        # The greedy drain chain above is exactly what the batched-
        # delivery fast path replicates inline; mark the connection
        # eligible (per-job throttling is re-checked per segment).
        conn._fast_app = True
        conn.on_closed = self._on_conn_closed

        def send_request(c: TcpConnection) -> None:
            request = f"GET {job.path} HTTP/1.1\r\nHost: video.example\r\n"
            if job.ranged or job.received:
                end = "" if job.end is None else job.end
                request += f"Range: bytes={job.next_offset}-{end}\r\n"
            request += "\r\n"
            self._note_request(job.next_offset if (job.ranged or job.received)
                               else 0, job.ranged or bool(job.received))
            c.send(request.encode("ascii"))

        conn.on_connected = send_request
        self.connections.append(conn)
        self.connections_opened += 1
        conn.connect()
        return conn

    def send_ranged_request(
        self,
        conn: Optional[TcpConnection],
        path: str,
        start: int,
        end: int,
        *,
        on_data: Optional[Callable[[TcpConnection, HttpResponseStream], None]] = None,
        on_complete: Optional[Callable[[TcpConnection], None]] = None,
    ) -> TcpConnection:
        """Issue a follow-up range request, reopening a dead connection.

        Returns the connection the request went out on (the one given, or
        a fresh one if it had already been torn down).
        """
        job = TransferJob(path, start=start, end=end, ranged=True,
                          on_data=on_data, on_complete=on_complete)
        if conn is None or conn.fully_closed:
            return self._open_connection(path, job=job)
        stream: HttpResponseStream = conn.http_stream  # type: ignore[attr-defined]
        self._attach_job(conn, stream, job)
        request = (
            f"GET {path} HTTP/1.1\r\nHost: video.example\r\n"
            f"Range: bytes={start}-{end}\r\n\r\n"
        )
        self._note_request(start, True)
        conn.send(request.encode("ascii"))
        return conn

    # -- failure handling --------------------------------------------------------

    def _on_conn_closed(self, conn: TcpConnection, reason: str) -> None:
        if self.stopped:
            return
        job: Optional[TransferJob] = getattr(conn, "_job", None)
        if job is None:
            return
        # salvage in-order bytes still sitting in the receive buffer —
        # they advance the resume offset (conn.recv works after teardown)
        stream: HttpResponseStream = conn.http_stream  # type: ignore[attr-defined]
        stream.take(conn, 1 << 62)
        if job.done or getattr(conn, "_job", None) is None:
            return  # the drain completed the response after all
        self._handle_transfer_failure(conn, job, reason)

    def _handle_transfer_failure(self, conn: TcpConnection, job: TransferJob,
                                 reason: str) -> None:
        if self.stopped or job.done:
            return
        conn._job = None  # type: ignore[attr-defined]
        conn.on_closed = None
        if not conn.fully_closed:
            conn.abort()
        job.attempts += 1
        if self.on_conn_failed is not None:
            self.on_conn_failed(self, conn, reason)
        policy = self.retry_policy
        if policy is None or job.attempts > policy.max_retries:
            self._fail(reason)
            return
        if not policy.resume_with_range and job.received:
            self.wasted_bytes += job.received
            job.received = 0
        self.retry_count += 1
        if self._telemetry.enabled:
            self._telemetry.inc("player.retries")
            self._telemetry.event("player.retry",
                                  t=self.scheduler.clock.now(),
                                  reason=reason, attempt=job.attempts)
        delay = policy.backoff_delay(job.attempts - 1, self.rng)
        self._schedule(delay, lambda: self._restart_job(job, conn),
                       "retry:reconnect")

    def _restart_job(self, job: TransferJob, old_conn: TcpConnection) -> None:
        if self.stopped or job.done:
            return
        new_conn = self._open_connection(job.path, job=job)
        self._on_transfer_restarted(job, old_conn, new_conn)

    def _on_transfer_restarted(self, job: TransferJob, old_conn: TcpConnection,
                               new_conn: TcpConnection) -> None:
        """Hook for subclasses tracking a designated connection."""

    def _note_downshift(self, now: float, old_rate: float,
                        new_rate: float) -> None:
        """Telemetry hook for an adaptive rendition downshift."""
        if self._telemetry.enabled:
            self._telemetry.inc("player.downshifts")
            self._telemetry.event("player.downshift", t=now,
                                  old_rate=old_rate, new_rate=new_rate)

    def _fail(self, reason: str) -> None:
        if self.stopped:
            return
        self.failed = True
        self.fail_reason = reason
        if self._telemetry.enabled:
            self._telemetry.event("player.failed",
                                  t=self.scheduler.clock.now(), reason=reason)
        self.stop(reason=f"failed:{reason}")


class GreedyPlayer(PlayerBase):
    """Reads everything immediately; used for Flash, HD and Firefox/HTML5."""

    def __init__(self, *args, policy: GreedyClientPolicy, rate_bps=None, **kwargs):
        kwargs.setdefault("recv_buffer", policy.recv_buffer)
        super().__init__(*args, **kwargs)
        self.policy = policy
        self._rate = rate_bps if rate_bps is not None else self.video.encoding_rate_bps

    @property
    def expected_bytes(self) -> int:
        from ..http import CONTAINER_HEADER_LEN

        return CONTAINER_HEADER_LEN + self.video.size_bytes_at(self._rate)

    def start(self) -> None:
        self._open_connection(video_path(self.video.video_id, self._rate))


class PullPlayer(PlayerBase):
    """Client-side throttling by scheduled receive-buffer drains."""

    def __init__(self, *args, policy: PullClientPolicy, **kwargs):
        kwargs.setdefault("recv_buffer", policy.recv_buffer)
        super().__init__(*args, **kwargs)
        self.policy = policy
        self.buffer_target = policy.sample_buffer_target(self.rng)
        self._budget = 0          # bytes the player may currently read
        self._buffering = True    # greedy until the target fills
        self._buffering_done_at: Optional[float] = None
        self._conn: Optional[TcpConnection] = None
        self._pulls = 0

    def start(self) -> None:
        self._conn = self._open_connection(
            video_path(self.video.video_id),
            on_data=self._on_socket_data,
        )
        self._schedule(self.policy.check_interval, self._check, "pull:check")

    def _current_target(self, now: float) -> float:
        """Buffer target, drifting upward to sustain the accumulation ratio."""
        if self._buffering_done_at is None:
            return float(self.buffer_target)
        growth = self.policy.target_growth_bps(self.playback_rate_bps)
        return self.buffer_target + growth * (now - self._buffering_done_at)

    def _on_socket_data(self, conn: TcpConnection, stream: HttpResponseStream) -> None:
        if self._buffering:
            stream.take(conn, 1 << 62)
            if self.downloaded >= self.buffer_target:
                self._buffering = False
                self._buffering_done_at = self.scheduler.clock.now()
        elif self._budget > 0:
            consumed = stream.take(conn, self._budget)
            self._budget -= consumed

    def _check(self) -> None:
        if self.stopped or self.finished:
            return
        now = self.scheduler.clock.now()
        if not self._buffering:
            free = self._current_target(now) - self.buffer_level(now)
            if free >= self.policy.pull_quantum and self._budget <= 0:
                self._budget = self.policy.pull_quantum
                self._pulls += 1
            if self._budget > 0 and self._conn is not None:
                stream = self._conn.http_stream  # type: ignore[attr-defined]
                consumed = stream.take(self._conn, self._budget)
                self._budget -= consumed
        self._schedule(self.policy.check_interval, self._check, "pull:check")

    def _on_transfer_restarted(self, job, old_conn, new_conn) -> None:
        if old_conn is self._conn:
            self._conn = new_conn

    @property
    def expected_bytes(self) -> int:
        from ..http import CONTAINER_HEADER_LEN

        return CONTAINER_HEADER_LEN + self.video.size_bytes


class IpadPlayer(PlayerBase):
    """YouTube's native iPad application: ranged requests, mixed strategies."""

    #: Bandwidth cap used for rendition selection on the device.
    DEVICE_RATE_CAP_BPS = 2.8e6

    def __init__(self, *args, policy: IpadClientPolicy, **kwargs):
        kwargs.setdefault("recv_buffer", policy.recv_buffer)
        super().__init__(*args, **kwargs)
        self.policy = policy
        resolution, rate = self.video.variant_at_most(self.DEVICE_RATE_CAP_BPS)
        self.selected_rate = rate
        self.playback_rate_bps = rate
        self.buffer_target = int(self.rng.uniform(*policy.buffer_target_range))
        self.multi_connection = rate >= policy.multi_connection_rate_bps
        self._next_offset = 0
        from ..http import CONTAINER_HEADER_LEN

        self.file_size = CONTAINER_HEADER_LEN + self.video.size_bytes_at(rate)
        self._in_flight = False
        self._persistent_conn: Optional[TcpConnection] = None

    @property
    def expected_bytes(self) -> int:
        return self.file_size

    def start(self) -> None:
        self._request_next_block(buffering=True)
        self._schedule(0.25, self._check, "ipad:check")

    def _block_size(self, buffering: bool) -> int:
        if buffering:
            # the heterogeneous request sizes of Figure 7(a): 64 kB - 8 MB
            lo, hi = 256 * 1024, 4 * 1024 * 1024
            span = self.rng.uniform(0.0, 1.0)
            size = int(lo * (hi / lo) ** span)  # log-uniform
        else:
            size = self.policy.block_bytes(self.selected_rate)
            if self.multi_connection:
                # Video1-style sessions spread request sizes widely around
                # the rate-proportional center, mixing short and long cycles
                import math

                spread = self.policy.block_spread
                factor = math.exp(self.rng.uniform(-math.log(spread),
                                                   math.log(spread)))
                size = int(size * factor)
                size = max(self.policy.min_block,
                           min(self.policy.max_block, size))
        return max(1, min(size, self.file_size - self._next_offset))

    def _request_next_block(self, buffering: bool) -> None:
        if self.stopped or self._next_offset >= self.file_size:
            return
        size = self._block_size(buffering)
        start = self._next_offset
        end = start + size - 1
        self._next_offset = end + 1
        self._in_flight = True
        path = video_path(self.video.video_id, self.selected_rate)

        def done(conn: TcpConnection) -> None:
            self._in_flight = False
            if self.multi_connection:
                # one range per connection: close it once the body is in
                conn.close()
            # during buffering the next request follows immediately, so the
            # buffering phase is one contiguous transfer (Figure 7(a))
            if (not self.stopped
                    and self.downloaded < self.buffer_target
                    and self._next_offset < self.file_size):
                self._request_next_block(buffering=True)

        if self.multi_connection:
            conn = self._open_connection(
                path, range_start=start, range_end=end, on_complete=done)
            conn.on_peer_fin = lambda c: c.close()
        else:
            self._persistent_conn = self.send_ranged_request(
                self._persistent_conn, path, start, end, on_complete=done)

    def _check(self) -> None:
        if self.stopped or self._next_offset >= self.file_size:
            return
        if not self._in_flight:
            now = self.scheduler.clock.now()
            if self.downloaded < self.buffer_target:
                self._request_next_block(buffering=True)
            else:
                block = self.policy.block_bytes(self.selected_rate)
                free = (self.consumed(now) + self.buffer_target) - self.downloaded
                if free >= block / self.policy.accumulation_ratio:
                    self._request_next_block(buffering=False)
        self._schedule(0.25, self._check, "ipad:check")

    def _on_transfer_restarted(self, job, old_conn, new_conn) -> None:
        if old_conn is self._persistent_conn:
            self._persistent_conn = new_conn

    def _downshift(self, now: float) -> bool:
        lower = [r for r in self.video.all_rates if r < self.selected_rate]
        if not lower:
            return False
        from ..http import CONTAINER_HEADER_LEN

        old_rate = self.selected_rate
        new_rate = max(lower)
        # carry the fetch position over at the same *media time* in the
        # smaller file of the new rendition
        fraction = self._next_offset / self.file_size if self.file_size else 0.0
        self.selected_rate = new_rate
        self.playback_rate_bps = new_rate
        self.file_size = CONTAINER_HEADER_LEN + self.video.size_bytes_at(new_rate)
        self._next_offset = min(int(fraction * self.file_size), self.file_size)
        self.downshifts.append((now, old_rate, new_rate))
        self._note_downshift(now, old_rate, new_rate)
        return True


class NetflixPlayer(PlayerBase):
    """Silverlight and the native Netflix mobile applications."""

    def __init__(self, *args, policy: NetflixClientPolicy, **kwargs):
        kwargs.setdefault("recv_buffer", policy.recv_buffer)
        super().__init__(*args, **kwargs)
        self.policy = policy
        ladder = sorted(self.video.all_rates)
        self.renditions = ladder[-policy.rendition_count:]
        self.selected_rate = self.renditions[-1]
        self.playback_rate_bps = self.selected_rate
        self._buffering_conns_done = 0
        self._steady_offset = 0
        self._steady_conn: Optional[TcpConnection] = None
        self._steady_started = False
        self._buffering_started_at = 0.0
        self.bandwidth_estimate_bps: Optional[float] = None

    @property
    def expected_bytes(self) -> int:
        buffering = sum(
            int(self.policy.buffering_playback_s * r / 8) for r in self.renditions
        )
        return buffering + self.video.size_bytes_at(self.selected_rate)

    @property
    def buffering_bytes_expected(self) -> int:
        return sum(
            int(self.policy.buffering_playback_s * r / 8) for r in self.renditions
        )

    def start(self) -> None:
        # one connection per rendition, fetching fragments in parallel —
        # the multi-bitrate buffering phase of Figure 11
        self._buffering_started_at = self.scheduler.clock.now()
        for rate in self.renditions:
            amount = int(self.policy.buffering_playback_s * rate / 8)
            path = video_path(self.video.video_id, rate)

            def done(conn: TcpConnection) -> None:
                conn.close()
                self._buffering_conns_done += 1
                if self._buffering_conns_done == len(self.renditions):
                    self._begin_steady_state()

            conn = self._open_connection(
                path, range_start=0, range_end=amount - 1, on_complete=done)
            conn.on_peer_fin = lambda c: c.close()
        self._steady_offset = int(
            self.policy.buffering_playback_s * self.selected_rate / 8
        )

    def _begin_steady_state(self) -> None:
        if self._steady_started or self.stopped:
            return
        self._steady_started = True
        if self.policy.adaptive:
            # adaptive rendition selection: measure the buffering-phase
            # throughput and settle on the highest rate that fits
            elapsed = (self.scheduler.clock.now()
                       - self._buffering_started_at)
            if elapsed > 0 and self.downloaded > 0:
                self.bandwidth_estimate_bps = self.downloaded * 8 / elapsed
                self.selected_rate = self.policy.select_rendition(
                    self.video.all_rates, self.bandwidth_estimate_bps)
                self.playback_rate_bps = self.selected_rate
                self._steady_offset = int(
                    self.policy.buffering_playback_s * self.selected_rate / 8)
        self._fetch_steady_block()

    def _fetch_steady_block(self) -> None:
        if self.stopped:
            return
        total = self.video.size_bytes_at(self.selected_rate)
        if self._steady_offset >= total:
            return
        block = min(self.policy.steady_block_bytes(self.selected_rate),
                    total - self._steady_offset)
        start = self._steady_offset
        end = start + block - 1
        self._steady_offset = end + 1
        path = video_path(self.video.video_id, self.selected_rate)
        # request-clocked pacing: the next fetch fires one period after this
        # one was *issued*, which is what yields the target accumulation
        # ratio k = G / e in the steady state
        interval = block * 8 / (self.policy.accumulation_ratio * self.selected_rate)
        if self.policy.new_connection_per_block:
            conn = self._open_connection(
                path, range_start=start, range_end=end,
                on_complete=lambda c: c.close())
            conn.on_peer_fin = lambda c: c.close()
        else:
            self._steady_conn = self.send_ranged_request(
                self._steady_conn, path, start, end)
            self._steady_conn.on_peer_fin = lambda c: c.close()
        self._schedule(interval, self._fetch_steady_block, "netflix:block")

    def _on_transfer_restarted(self, job, old_conn, new_conn) -> None:
        if old_conn is self._steady_conn:
            self._steady_conn = new_conn

    def _downshift(self, now: float) -> bool:
        if not self._steady_started:
            return False
        lower = [r for r in self.video.all_rates if r < self.selected_rate]
        if not lower:
            return False
        old_rate = self.selected_rate
        new_rate = max(lower)
        # keep media-time continuity: carry the steady-state fetch offset
        # over at the same playback position in the new rendition
        position_s = self._steady_offset * 8 / old_rate
        self.selected_rate = new_rate
        self.playback_rate_bps = new_rate
        self._steady_offset = int(position_s * new_rate / 8)
        self.downshifts.append((now, old_rate, new_rate))
        self._note_downshift(now, old_rate, new_rate)
        return True
