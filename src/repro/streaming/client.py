"""The video players: one class per client-side throttling behaviour.

Each player reproduces the mechanism the paper infers for its application:

* :class:`GreedyPlayer` — reads as fast as TCP delivers (the Flash plugin
  in any browser, Firefox's HTML5 player, HD playback).  Whatever rate
  limiting exists must come from the server.
* :class:`PullPlayer` — buffers aggressively to a 4-15 MB target, then
  drains the TCP receive buffer in fixed quanta as playback frees space.
  With a 256 kB quantum this is Internet Explorer's HTML5 behaviour
  (Figure 2(b): the receive window periodically empties); with multi-
  megabyte quanta it is Chrome's and Android's (Figure 6).
* :class:`IpadPlayer` — YouTube on iOS: byte-range requests, block size
  proportional to the encoding rate, one TCP connection per block for
  high-rate videos (Figure 7).
* :class:`NetflixPlayer` — Silverlight / native Netflix: prefetches
  fragments of several renditions during buffering (Figure 11), then
  fetches blocks of the selected rendition over fresh connections
  (PC, iPad) or one persistent connection with large blocks (Android).

All players share playback bookkeeping: playback starts once a couple of
seconds of media are buffered, consumes bytes at the encoding rate, and the
player buffer level is ``downloaded - consumed``.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..simnet.node import Host
from ..simnet.scheduler import EventHandle, EventScheduler
from ..tcp import TcpConfig, TcpConnection
from ..workloads.video import Video
from .httpconn import HttpResponseStream
from .params import (
    GreedyClientPolicy,
    IpadClientPolicy,
    NetflixClientPolicy,
    PullClientPolicy,
)
from .server import video_path

#: Seconds of media that must be buffered before playback begins.
PLAYBACK_START_S = 2.0


class PlayerBase:
    """Shared machinery: connections, playback clock, interruption."""

    def __init__(
        self,
        host: Host,
        scheduler: EventScheduler,
        server_ip: str,
        video: Video,
        *,
        rng: random.Random,
        server_port: int = 80,
        recv_buffer: int = 512 * 1024,
        tcp_config: Optional[TcpConfig] = None,
    ) -> None:
        self.host = host
        self.scheduler = scheduler
        self.server_ip = server_ip
        self.server_port = server_port
        self.video = video
        self.rng = rng
        self.recv_buffer = recv_buffer
        self.tcp_config = tcp_config

        self.downloaded = 0            # body bytes received, all connections
        self.playback_started_at: Optional[float] = None
        self.playback_rate_bps = video.encoding_rate_bps
        self.stopped = False
        self.stop_reason: Optional[str] = None
        self._frozen_consumed: Optional[float] = None  # set when stopped
        self.connections: List[TcpConnection] = []
        self.connections_opened = 0
        self._timers: List[EventHandle] = []

    # -- playback ------------------------------------------------------------

    def _maybe_start_playback(self) -> None:
        if self.playback_started_at is not None:
            return
        threshold = PLAYBACK_START_S * self.playback_rate_bps / 8
        if self.downloaded >= threshold:
            self.playback_started_at = self.scheduler.clock.now()

    def consumed(self, now: Optional[float] = None) -> float:
        """Bytes of media the player has consumed by time ``now``.

        Once the session is stopped the playback clock freezes: a viewer
        who quit at 60 s has watched 60 s, no matter how long the capture
        keeps running.
        """
        if self._frozen_consumed is not None:
            return self._frozen_consumed
        if self.playback_started_at is None:
            return 0.0
        t = self.scheduler.clock.now() if now is None else now
        elapsed = max(0.0, t - self.playback_started_at)
        return min(float(self.downloaded),
                   elapsed * self.playback_rate_bps / 8)

    def buffer_level(self, now: Optional[float] = None) -> float:
        """Player-buffer occupancy in bytes (downloaded, not yet played)."""
        return self.downloaded - self.consumed(now)

    def playback_position_s(self, now: Optional[float] = None) -> float:
        """Seconds of the video watched so far."""
        return self.consumed(now) * 8 / self.playback_rate_bps

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        raise NotImplementedError

    def stop(self, reason: str = "interrupted") -> None:
        """Abort the session (user interruption, Section 6.2)."""
        if self.stopped:
            return
        self._frozen_consumed = self.consumed()
        self.stopped = True
        self.stop_reason = reason
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for conn in self.connections:
            if not conn.fully_closed:
                conn.abort()

    @property
    def finished(self) -> bool:
        """All requested media received (players may stop earlier)."""
        return self.downloaded >= self.expected_bytes

    @property
    def expected_bytes(self) -> int:
        """Total body bytes this player intends to download."""
        return self.video.size_bytes

    # -- plumbing ---------------------------------------------------------------

    def _schedule(self, delay: float, fn: Callable[[], None], label: str) -> None:
        if self.stopped:
            return
        handle = self.scheduler.after(delay, fn, label=label)
        self._timers.append(handle)
        # prune fired/cancelled handles occasionally
        if len(self._timers) > 64:
            self._timers = [h for h in self._timers if not h.cancelled]

    def _on_body(self, n: int) -> None:
        self.downloaded += n
        self._maybe_start_playback()

    def _open_connection(
        self,
        path: str,
        *,
        range_header: Optional[str] = None,
        on_data: Optional[Callable[[TcpConnection, HttpResponseStream], None]] = None,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> TcpConnection:
        """Open a connection, send one GET, wire up response accounting.

        ``on_data`` decides how greedily the socket is drained; the default
        reads everything immediately.
        """
        config = self.tcp_config or TcpConfig(recv_buffer=self.recv_buffer)
        conn = TcpConnection(
            self.host,
            self.scheduler,
            self.host.allocate_port(),
            self.server_ip,
            self.server_port,
            config=config,
        )
        stream = HttpResponseStream(
            on_body_bytes=self._on_body,
            on_complete=(lambda resp: on_complete()) if on_complete else None,
        )
        conn.http_stream = stream  # type: ignore[attr-defined]

        if on_data is None:
            conn.on_data = lambda c: stream.take(c, 1 << 62)
        else:
            conn.on_data = lambda c: on_data(c, stream)

        def send_request(c: TcpConnection) -> None:
            request = f"GET {path} HTTP/1.1\r\nHost: video.example\r\n"
            if range_header:
                request += f"Range: {range_header}\r\n"
            request += "\r\n"
            c.send(request.encode("ascii"))

        conn.on_connected = send_request
        self.connections.append(conn)
        self.connections_opened += 1
        conn.connect()
        return conn

    def send_ranged_request(self, conn: TcpConnection, path: str,
                            range_header: str) -> None:
        """Issue a follow-up range request on an existing connection."""
        request = (
            f"GET {path} HTTP/1.1\r\nHost: video.example\r\n"
            f"Range: {range_header}\r\n\r\n"
        )
        conn.send(request.encode("ascii"))


class GreedyPlayer(PlayerBase):
    """Reads everything immediately; used for Flash, HD and Firefox/HTML5."""

    def __init__(self, *args, policy: GreedyClientPolicy, rate_bps=None, **kwargs):
        kwargs.setdefault("recv_buffer", policy.recv_buffer)
        super().__init__(*args, **kwargs)
        self.policy = policy
        self._rate = rate_bps if rate_bps is not None else self.video.encoding_rate_bps

    @property
    def expected_bytes(self) -> int:
        from ..http import CONTAINER_HEADER_LEN

        return CONTAINER_HEADER_LEN + self.video.size_bytes_at(self._rate)

    def start(self) -> None:
        self._open_connection(video_path(self.video.video_id, self._rate))


class PullPlayer(PlayerBase):
    """Client-side throttling by scheduled receive-buffer drains."""

    def __init__(self, *args, policy: PullClientPolicy, **kwargs):
        kwargs.setdefault("recv_buffer", policy.recv_buffer)
        super().__init__(*args, **kwargs)
        self.policy = policy
        self.buffer_target = policy.sample_buffer_target(self.rng)
        self._budget = 0          # bytes the player may currently read
        self._buffering = True    # greedy until the target fills
        self._buffering_done_at: Optional[float] = None
        self._conn: Optional[TcpConnection] = None
        self._pulls = 0

    def start(self) -> None:
        self._conn = self._open_connection(
            video_path(self.video.video_id),
            on_data=self._on_socket_data,
        )
        self._schedule(self.policy.check_interval, self._check, "pull:check")

    def _current_target(self, now: float) -> float:
        """Buffer target, drifting upward to sustain the accumulation ratio."""
        if self._buffering_done_at is None:
            return float(self.buffer_target)
        growth = self.policy.target_growth_bps(self.playback_rate_bps)
        return self.buffer_target + growth * (now - self._buffering_done_at)

    def _on_socket_data(self, conn: TcpConnection, stream: HttpResponseStream) -> None:
        if self._buffering:
            stream.take(conn, 1 << 62)
            if self.downloaded >= self.buffer_target:
                self._buffering = False
                self._buffering_done_at = self.scheduler.clock.now()
        elif self._budget > 0:
            consumed = stream.take(conn, self._budget)
            self._budget -= consumed

    def _check(self) -> None:
        if self.stopped or self.finished:
            return
        now = self.scheduler.clock.now()
        if not self._buffering:
            free = self._current_target(now) - self.buffer_level(now)
            if free >= self.policy.pull_quantum and self._budget <= 0:
                self._budget = self.policy.pull_quantum
                self._pulls += 1
            if self._budget > 0 and self._conn is not None:
                stream = self._conn.http_stream  # type: ignore[attr-defined]
                consumed = stream.take(self._conn, self._budget)
                self._budget -= consumed
        self._schedule(self.policy.check_interval, self._check, "pull:check")

    @property
    def expected_bytes(self) -> int:
        from ..http import CONTAINER_HEADER_LEN

        return CONTAINER_HEADER_LEN + self.video.size_bytes


class IpadPlayer(PlayerBase):
    """YouTube's native iPad application: ranged requests, mixed strategies."""

    #: Bandwidth cap used for rendition selection on the device.
    DEVICE_RATE_CAP_BPS = 2.8e6

    def __init__(self, *args, policy: IpadClientPolicy, **kwargs):
        kwargs.setdefault("recv_buffer", policy.recv_buffer)
        super().__init__(*args, **kwargs)
        self.policy = policy
        resolution, rate = self.video.variant_at_most(self.DEVICE_RATE_CAP_BPS)
        self.selected_rate = rate
        self.playback_rate_bps = rate
        self.buffer_target = int(self.rng.uniform(*policy.buffer_target_range))
        self.multi_connection = rate >= policy.multi_connection_rate_bps
        self._next_offset = 0
        from ..http import CONTAINER_HEADER_LEN

        self.file_size = CONTAINER_HEADER_LEN + self.video.size_bytes_at(rate)
        self._in_flight = False
        self._persistent_conn: Optional[TcpConnection] = None

    @property
    def expected_bytes(self) -> int:
        return self.file_size

    def start(self) -> None:
        self._request_next_block(buffering=True)
        self._schedule(0.25, self._check, "ipad:check")

    def _block_size(self, buffering: bool) -> int:
        if buffering:
            # the heterogeneous request sizes of Figure 7(a): 64 kB - 8 MB
            lo, hi = 256 * 1024, 4 * 1024 * 1024
            span = self.rng.uniform(0.0, 1.0)
            size = int(lo * (hi / lo) ** span)  # log-uniform
        else:
            size = self.policy.block_bytes(self.selected_rate)
            if self.multi_connection:
                # Video1-style sessions spread request sizes widely around
                # the rate-proportional center, mixing short and long cycles
                import math

                spread = self.policy.block_spread
                factor = math.exp(self.rng.uniform(-math.log(spread),
                                                   math.log(spread)))
                size = int(size * factor)
                size = max(self.policy.min_block,
                           min(self.policy.max_block, size))
        return max(1, min(size, self.file_size - self._next_offset))

    def _request_next_block(self, buffering: bool) -> None:
        if self.stopped or self._next_offset >= self.file_size:
            return
        size = self._block_size(buffering)
        start = self._next_offset
        end = start + size - 1
        self._next_offset = end + 1
        self._in_flight = True
        path = video_path(self.video.video_id, self.selected_rate)
        header = f"bytes={start}-{end}"

        def done(conn_holder=None) -> None:
            self._in_flight = False
            if conn_holder is not None:
                # one range per connection: close it once the body is in
                conn_holder["conn"].close()
            # during buffering the next request follows immediately, so the
            # buffering phase is one contiguous transfer (Figure 7(a))
            if (not self.stopped
                    and self.downloaded < self.buffer_target
                    and self._next_offset < self.file_size):
                self._request_next_block(buffering=True)

        if self.multi_connection:
            holder = {}
            conn = self._open_connection(
                path, range_header=header,
                on_complete=lambda h=holder: done(h))
            holder["conn"] = conn
            conn.on_peer_fin = lambda c: c.close()
        elif self._persistent_conn is None:
            self._persistent_conn = self._open_connection(
                path, range_header=header, on_complete=done)
        else:
            self.send_ranged_request(self._persistent_conn, path, header)

    def _check(self) -> None:
        if self.stopped or self._next_offset >= self.file_size:
            return
        if not self._in_flight:
            now = self.scheduler.clock.now()
            if self.downloaded < self.buffer_target:
                self._request_next_block(buffering=True)
            else:
                block = self.policy.block_bytes(self.selected_rate)
                free = (self.consumed(now) + self.buffer_target) - self.downloaded
                if free >= block / self.policy.accumulation_ratio:
                    self._request_next_block(buffering=False)
        self._schedule(0.25, self._check, "ipad:check")


class NetflixPlayer(PlayerBase):
    """Silverlight and the native Netflix mobile applications."""

    def __init__(self, *args, policy: NetflixClientPolicy, **kwargs):
        kwargs.setdefault("recv_buffer", policy.recv_buffer)
        super().__init__(*args, **kwargs)
        self.policy = policy
        ladder = sorted(self.video.all_rates)
        self.renditions = ladder[-policy.rendition_count:]
        self.selected_rate = self.renditions[-1]
        self.playback_rate_bps = self.selected_rate
        self._buffering_conns_done = 0
        self._steady_offset = 0
        self._steady_conn: Optional[TcpConnection] = None
        self._steady_started = False
        self._buffering_started_at = 0.0
        self.bandwidth_estimate_bps: Optional[float] = None

    @property
    def expected_bytes(self) -> int:
        buffering = sum(
            int(self.policy.buffering_playback_s * r / 8) for r in self.renditions
        )
        return buffering + self.video.size_bytes_at(self.selected_rate)

    @property
    def buffering_bytes_expected(self) -> int:
        return sum(
            int(self.policy.buffering_playback_s * r / 8) for r in self.renditions
        )

    def start(self) -> None:
        # one connection per rendition, fetching fragments in parallel —
        # the multi-bitrate buffering phase of Figure 11
        self._buffering_started_at = self.scheduler.clock.now()
        for rate in self.renditions:
            amount = int(self.policy.buffering_playback_s * rate / 8)
            path = video_path(self.video.video_id, rate)
            holder = {}

            def make_done(h=holder):
                def done() -> None:
                    h["conn"].close()
                    self._buffering_conns_done += 1
                    if self._buffering_conns_done == len(self.renditions):
                        self._begin_steady_state()
                return done

            conn = self._open_connection(
                path,
                range_header=f"bytes=0-{amount - 1}",
                on_complete=make_done(),
            )
            holder["conn"] = conn
            conn.on_peer_fin = lambda c: c.close()
        self._steady_offset = int(
            self.policy.buffering_playback_s * self.selected_rate / 8
        )

    def _begin_steady_state(self) -> None:
        if self._steady_started or self.stopped:
            return
        self._steady_started = True
        if self.policy.adaptive:
            # adaptive rendition selection: measure the buffering-phase
            # throughput and settle on the highest rate that fits
            elapsed = (self.scheduler.clock.now()
                       - self._buffering_started_at)
            if elapsed > 0 and self.downloaded > 0:
                self.bandwidth_estimate_bps = self.downloaded * 8 / elapsed
                self.selected_rate = self.policy.select_rendition(
                    self.video.all_rates, self.bandwidth_estimate_bps)
                self.playback_rate_bps = self.selected_rate
                self._steady_offset = int(
                    self.policy.buffering_playback_s * self.selected_rate / 8)
        self._fetch_steady_block()

    def _fetch_steady_block(self) -> None:
        if self.stopped:
            return
        total = self.video.size_bytes_at(self.selected_rate)
        if self._steady_offset >= total:
            return
        block = min(self.policy.steady_block_bytes(self.selected_rate),
                    total - self._steady_offset)
        start = self._steady_offset
        end = start + block - 1
        self._steady_offset = end + 1
        path = video_path(self.video.video_id, self.selected_rate)
        header = f"bytes={start}-{end}"
        # request-clocked pacing: the next fetch fires one period after this
        # one was *issued*, which is what yields the target accumulation
        # ratio k = G / e in the steady state
        interval = block * 8 / (self.policy.accumulation_ratio * self.selected_rate)
        if self.policy.new_connection_per_block or self._steady_conn is None:
            holder = {}
            conn = self._open_connection(
                path, range_header=header,
                on_complete=(lambda: holder["conn"].close())
                if self.policy.new_connection_per_block else None,
            )
            holder["conn"] = conn
            conn.on_peer_fin = lambda c: c.close()
            if not self.policy.new_connection_per_block:
                self._steady_conn = conn
        else:
            self.send_ranged_request(self._steady_conn, path, header)
        self._schedule(interval, self._fetch_steady_block, "netflix:block")
