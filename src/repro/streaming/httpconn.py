"""Client-side HTTP response handling over a simulated TCP connection.

:class:`HttpResponseStream` incrementally parses response heads from the
socket and accounts body bytes (which are virtual and therefore discarded,
not materialized).  It supports several sequential responses on one
connection — the Netflix and iPad players reuse connections for many range
requests.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..http import HttpResponse, parse_response_head
from ..tcp import TcpConnection


class HttpResponseStream:
    """Sequential HTTP responses arriving on one connection."""

    def __init__(
        self,
        on_body_bytes: Callable[[int], None],
        on_response: Optional[Callable[[HttpResponse], None]] = None,
        on_complete: Optional[Callable[[HttpResponse], None]] = None,
    ) -> None:
        self.on_body_bytes = on_body_bytes
        self.on_response = on_response
        self.on_complete = on_complete
        self._headbuf = b""
        self._response: Optional[HttpResponse] = None
        self._body_expected = 0
        self._body_received = 0
        self.responses_completed = 0
        self.total_body_bytes = 0

    @property
    def in_body(self) -> bool:
        return self._response is not None

    @property
    def body_remaining(self) -> int:
        return self._body_expected - self._body_received if self.in_body else 0

    def take(self, conn: TcpConnection, max_bytes: int) -> int:
        """Consume up to ``max_bytes`` of *body* from the socket.

        Head bytes are parsed as needed and do not count toward the
        budget.  Returns the number of body bytes consumed.
        """
        consumed = 0
        while consumed < max_bytes:
            if self._response is None:
                # surplus bytes from the previous body may already hold the
                # next head: try to parse before demanding socket data
                parsed = parse_response_head(self._headbuf) if self._headbuf else None
                if parsed is None:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    self._headbuf += chunk
                    parsed = parse_response_head(self._headbuf)
                    if parsed is None:
                        continue
                response, head_len = parsed
                surplus = self._headbuf[head_len:]
                self._headbuf = b""
                self._response = response
                length = response.content_length
                self._body_expected = length if length is not None else 1 << 62
                self._body_received = 0
                if self.on_response:
                    self.on_response(response)
                if surplus:
                    take = min(len(surplus), self._body_expected)
                    self._account_body(take)
                    consumed += take
                    extra = surplus[take:]
                    if extra:
                        # bytes of the *next* response head
                        self._headbuf = extra
                continue
            room = self._body_expected - self._body_received
            if room <= 0:
                self._finish_response()
                continue
            asked = max_bytes - consumed
            if room < asked:
                asked = room
            n = conn.recv_discard(asked)
            if n == 0:
                break
            self._account_body(n)
            consumed += n
            if n < asked:
                # the socket's in-order queue is drained; the next loop
                # iteration would just issue an empty read
                break
        if self.in_body and self._body_received >= self._body_expected:
            self._finish_response()
        return consumed

    def _account_body(self, n: int) -> None:
        self._body_received += n
        self.total_body_bytes += n
        if n:
            self.on_body_bytes(n)

    def _finish_response(self) -> None:
        response = self._response
        self._response = None
        self.responses_completed += 1
        if self.on_complete and response is not None:
            self.on_complete(response)
