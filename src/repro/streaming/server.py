"""The streaming video server.

One server instance serves a catalog over HTTP/1.1 and implements the three
server-side feeding disciplines of Section 5:

* **paced** (YouTube/Flash): push ~40 s of playback immediately, then one
  64 kB block every ``block / (k * e)`` seconds — the server-driven short
  ON-OFF cycles of Figure 2(a);
* **bulk** (YouTube HD, HTML5): hand the whole response to TCP at once;
  any throttling is the client's business;
* **range** (Netflix, iPad): serve exactly the byte range requested and
  keep the connection open for the next request.

Requests use ``GET /video/<id>?rate=<bps>`` where the optional ``rate``
selects a rendition (Netflix's multi-bitrate ladder, the iPad's
resolution switching).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..http import (
    CONTAINER_HEADER_LEN,
    HttpRequest,
    HttpResponse,
    RangeError,
    build_flv_header,
    build_webm_header,
    format_content_range,
    parse_range,
    parse_request,
)
from ..simnet.monitor import TimeSeries
from ..simnet.node import Host
from ..simnet.scheduler import EventHandle, EventScheduler
from ..tcp import TcpConfig, TcpConnection, TcpListener
from ..workloads.video import Video
from .apps import Container
from .params import ServerPolicy, server_policy_for


def video_path(video_id: str, rate_bps: Optional[float] = None) -> str:
    """The request path for a video (and optionally a specific rendition)."""
    if rate_bps is None:
        return f"/video/{video_id}"
    # keep full precision: client and server must agree on the rendition
    # size byte-for-byte
    return f"/video/{video_id}?rate={rate_bps!r}"


def parse_video_path(path: str):
    """Inverse of :func:`video_path`: returns ``(video_id, rate_or_None)``."""
    base, _sep, query = path.partition("?")
    if not base.startswith("/video/"):
        raise ValueError(f"not a video path: {path!r}")
    video_id = base[len("/video/"):]
    rate = None
    for pair in query.split("&"):
        if pair.startswith("rate="):
            rate = float(pair[len("rate="):])
    return video_id, rate


class _ResponseJob:
    """One in-progress response on one connection."""

    __slots__ = ("total", "sent", "block", "interval", "timer", "close_after")

    def __init__(self, total: int, close_after: bool) -> None:
        self.total = total
        self.sent = 0
        self.block = 0
        self.interval = 0.0
        self.timer: Optional[EventHandle] = None
        self.close_after = close_after


class VideoServer:
    """HTTP video server bound to one simulated host."""

    def __init__(
        self,
        host: Host,
        scheduler: EventScheduler,
        videos: Dict[str, Video],
        *,
        port: int = 80,
        tcp_config: Optional[TcpConfig] = None,
        policy_override: Optional[ServerPolicy] = None,
        container_override: Optional[Container] = None,
    ) -> None:
        self.host = host
        self.scheduler = scheduler
        self.videos = dict(videos)
        self.port = port
        self.policy_override = policy_override
        self.container_override = container_override
        self.requests_served = 0
        self.responses_404 = 0
        self.responses_503 = 0
        self.connections_accepted = 0
        self.connections_aborted = 0
        #: Per-connection cwnd traces in accept order; populated only when
        #: the server's ``tcp_config`` sets ``trace_cwnd`` (the traces keep
        #: growing after a connection closes out of ``_open_conns``).
        self.cwnd_traces: List[TimeSeries] = []
        self._unavailable_until: Optional[float] = None
        self._open_conns: List[TcpConnection] = []
        self._listener = TcpListener(
            host, scheduler, port, self._on_accept, config=tcp_config
        )

    def close(self) -> None:
        self._listener.close()

    # -- fault injection hooks ---------------------------------------------------

    def set_unavailable(self, until: Optional[float]) -> None:
        """Answer 503 Service Unavailable to every request until ``until``.

        ``None`` restores service immediately.
        """
        self._unavailable_until = until

    @property
    def unavailable(self) -> bool:
        return (self._unavailable_until is not None
                and self.scheduler.clock.now() < self._unavailable_until)

    def abort_connections(self) -> int:
        """RST every open connection (process restart, LB failover).

        Returns the number of connections aborted.
        """
        aborted = 0
        for conn in list(self._open_conns):
            if not conn.fully_closed:
                conn.abort()
                aborted += 1
        self.connections_aborted += aborted
        return aborted

    # -- connection handling --------------------------------------------------

    def _on_accept(self, conn: TcpConnection) -> None:
        self.connections_accepted += 1
        self._open_conns.append(conn)
        if conn.cwnd_series is not None:
            self.cwnd_traces.append(conn.cwnd_series)
        state = {"buf": b"", "job": None}
        conn.on_data = lambda c: self._on_request_bytes(c, state)
        conn.on_closed = lambda c, reason: self._on_conn_closed(c, state)

    def _on_conn_closed(self, conn: TcpConnection, state: dict) -> None:
        job = state.get("job")
        if job is not None and job.timer is not None:
            job.timer.cancel()
            job.timer = None
        try:
            self._open_conns.remove(conn)
        except ValueError:
            pass

    def _on_request_bytes(self, conn: TcpConnection, state: dict) -> None:
        state["buf"] += conn.recv(8192)
        while True:
            parsed = parse_request(state["buf"])
            if parsed is None:
                return
            request, consumed = parsed
            state["buf"] = state["buf"][consumed:]
            self._handle_request(conn, state, request)

    # -- request handling -------------------------------------------------------

    def _container_of(self, video: Video) -> Container:
        if self.container_override is not None:
            return self.container_override
        if video.container == "silverlight":
            return Container.SILVERLIGHT
        if video.container == "webm":
            return Container.HTML5
        if video.resolution == "720p":
            return Container.FLASH_HD
        return Container.FLASH

    def _file_header_for(self, video: Video) -> bytes:
        """The leading container-metadata bytes of the served file."""
        if video.container == "flv":
            return build_flv_header(video.encoding_rate_bps, video.duration)
        if video.container == "webm":
            return build_webm_header(video.duration)
        return b""  # Silverlight fragments carry no parseable header here

    def _handle_request(self, conn: TcpConnection, state: dict,
                        request: HttpRequest) -> None:
        if self.unavailable:
            self.responses_503 += 1
            resp = HttpResponse(503)
            resp.headers.set("Content-Length", "0")
            conn.send(resp.serialize_head())
            conn.close()
            return
        try:
            video_id, rate = parse_video_path(request.path)
            video = self.videos[video_id]
        except (ValueError, KeyError):
            self.responses_404 += 1
            resp = HttpResponse(404)
            resp.headers.set("Content-Length", "0")
            conn.send(resp.serialize_head())
            conn.close()
            return

        encoding_rate = rate if rate is not None else video.encoding_rate_bps
        file_header = self._file_header_for(video)
        total_size = len(file_header) + video.size_bytes_at(encoding_rate)
        policy = self.policy_override or server_policy_for(self._container_of(video))

        range_header = request.range_header
        if range_header is not None:
            try:
                start, end = parse_range(range_header, total_size)
            except RangeError:
                resp = HttpResponse(416)
                resp.headers.set("Content-Length", "0")
                conn.send(resp.serialize_head())
                conn.close()
                return
            status = 206
        else:
            start, end = 0, total_size - 1
            status = 200

        length = end - start + 1
        resp = HttpResponse(status)
        resp.headers.set("Content-Type", _content_type(video))
        resp.headers.set("Content-Length", str(length))
        if status == 206:
            resp.headers.set("Content-Range",
                             format_content_range(start, end, total_size))
        conn.send(resp.serialize_head())
        self.requests_served += 1

        # body: real container-header bytes where the range overlaps them
        if start < len(file_header):
            head_part = file_header[start: min(end + 1, len(file_header))]
        else:
            head_part = b""
        body_virtual = length - len(head_part)

        # HTTP/1.1 keep-alive: partial-content (206) responses leave the
        # connection open for follow-up range requests (the iPad's Video2
        # pattern streams a whole video over one connection this way);
        # full 200 responses close once the body is served, as the 2011
        # YouTube servers did
        close_after = policy.mode != "range" and status == 200
        if policy.mode == "paced":
            self._serve_paced(conn, state, head_part, body_virtual,
                              video, policy, close_after)
        else:
            if head_part:
                conn.send(head_part)
            if body_virtual:
                conn.send_virtual(body_virtual)
            if close_after:
                conn.close()

    def _serve_paced(self, conn: TcpConnection, state: dict, head_part: bytes,
                     body_virtual: int, video: Video, policy: ServerPolicy,
                     close_after: bool) -> None:
        """Push the buffering amount, then pace fixed-size blocks."""
        total = len(head_part) + body_virtual
        job = _ResponseJob(total, close_after)
        state["job"] = job
        rate = video.encoding_rate_bps
        buffering = min(total, int(policy.buffering_playback_s * rate / 8))
        if head_part:
            conn.send(head_part)
        first_virtual = max(0, buffering - len(head_part))
        if first_virtual:
            conn.send_virtual(first_virtual)
        job.sent = len(head_part) + first_virtual
        job.block = policy.block_bytes
        job.interval = policy.block_bytes * 8 / (policy.accumulation_ratio * rate)

        def push_block() -> None:
            job.timer = None
            if conn.state not in ("ESTABLISHED", "CLOSE_WAIT"):
                return
            remaining = job.total - job.sent
            if remaining <= 0:
                if job.close_after:
                    conn.close()
                return
            take = min(job.block, remaining)
            conn.send_virtual(take)
            job.sent += take
            if job.sent >= job.total:
                if job.close_after:
                    conn.close()
                return
            job.timer = self.scheduler.after(job.interval, push_block,
                                             label="server:pace")

        job.timer = self.scheduler.after(job.interval, push_block,
                                         label="server:pace")


def _content_type(video: Video) -> str:
    return {
        "flv": "video/x-flv",
        "webm": "video/webm",
        "silverlight": "application/octet-stream",
    }[video.container]
