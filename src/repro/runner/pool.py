"""The session-execution engine: fan-out, memoization, determinism.

Every experiment in this repository reduces to a batch of *independent*
``run_session(video, config)`` calls — independent because each session
builds a private network whose RNG streams derive from ``config.seed``
(see :func:`repro.simnet.rng.derive_seed`), never from shared state.  The
engine exploits exactly that:

* ``run_sessions(plans)`` executes a batch over a ``multiprocessing``
  pool of ``jobs`` workers and returns results **in plan order** — the
  pool's ``map`` reassembles completion-order results by input index, so
  the output is byte-identical to a serial run regardless of worker
  scheduling.
* With a :class:`~repro.runner.cache.ResultCache`, each plan is first
  looked up by content fingerprint (video + config + code version); only
  misses are simulated, and their results are stored for the next run.
* ``run_tasks(fn, argslist)`` is the same machinery for coarser units
  (e.g. a whole concurrent-session cohort, or a Monte-Carlo run) that are
  not shaped like a single session.

Experiments do not thread ``jobs``/``cache`` through their signatures;
the CLI (or a test) installs them ambiently::

    with engine_options(jobs=4, cache="~/.cache/repro"):
        spec.run(scale, seed=0)     # every run_sessions() inside fans out

Telemetry follows the same ambient pattern (:mod:`repro.telemetry`):
inside a ``recording()`` scope the engine times its phases, counts cache
hits/misses, and merges each session's recorded snapshot back **in plan
order**, so ``jobs=N`` telemetry equals ``jobs=1`` telemetry just as the
results do.  Recording state never enters a cache fingerprint.
"""

from __future__ import annotations

import contextvars
import dataclasses
import multiprocessing
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..telemetry import NULL, NullRecorder, Recorder, SessionTelemetry, current_recorder, use_recorder
from .cache import ResultCache
from .fingerprint import plan_fingerprint, task_fingerprint
from .journal import CampaignJournal
from .supervise import (
    CHAOS_ENV,
    CampaignAborted,
    FailureReport,
    SupervisionPolicy,
    UnitFailure,
    chaos_hook,
    chaos_mark_done,
    run_supervised,
)

__all__ = [
    "CacheLike",
    "CompositeRunObserver",
    "EngineOptions",
    "NULL_OBSERVER",
    "NullRunObserver",
    "RunStats",
    "SessionPlan",
    "current_options",
    "engine_options",
    "merge_options",
    "run_sessions",
    "run_tasks",
]


class NullRunObserver:
    """The disabled run observer: every callback is a no-op.

    Observers are the engine's outward-facing hook — live progress
    reporting and result collection (:mod:`repro.obs`) both plug in
    here.  The pattern mirrors :class:`~repro.telemetry.NullRecorder`:
    the ambient default is this disabled instance, call sites guard with
    a single ``if observer.enabled:`` check, and the observing path can
    never change what the engine computes — observers see results, they
    do not produce them, so outputs stay byte-identical for any worker
    count and cache keys never include observer state.
    """

    enabled = False

    def batch_started(self, units: int, cache_hits: int) -> None:
        """A ``run_sessions``/``run_tasks`` batch began (after cache lookup)."""

    def unit_started(self, index: int, label: str, worker: str) -> None:
        """A unit was handed to a supervised worker (health monitoring
        only: the :class:`~repro.obs.health.HealthMonitor` forwards it)."""

    def unit_finished(self, value: Any) -> None:
        """One simulated unit completed (cache misses only, completion order)."""

    def unit_failed(self, failure: UnitFailure) -> None:
        """A supervised unit's attempt failed; ``failure.final`` marks
        the attempt that quarantined it (only fires under supervision)."""

    def worker_beat(self, lane: Any) -> None:
        """A worker heartbeat arrived; ``lane`` is the live
        :class:`~repro.obs.health.WorkerLane` (health monitoring only)."""

    def worker_suspect(self, suspicion: Any) -> None:
        """Health monitoring flagged a :class:`~repro.obs.health.Suspicion`
        (missed-beat, straggler, worker-lost).  Report-only: supervision
        retry behavior never consults it."""

    def batch_finished(self, values: Sequence[Any]) -> None:
        """A batch returned; ``values`` holds every result in plan order."""


#: The process-wide disabled observer (ambient default).
NULL_OBSERVER = NullRunObserver()


class CompositeRunObserver(NullRunObserver):
    """Fan every engine callback out to several observers.

    ``enabled`` is true when any member is enabled, so a composite of
    disabled observers still costs a single guard check.
    """

    def __init__(self, *observers: NullRunObserver) -> None:
        self.observers = tuple(o for o in observers if o is not None)
        self.enabled = any(o.enabled for o in self.observers)

    def batch_started(self, units: int, cache_hits: int) -> None:
        for observer in self.observers:
            if observer.enabled:
                observer.batch_started(units, cache_hits)

    def unit_started(self, index: int, label: str, worker: str) -> None:
        for observer in self.observers:
            if observer.enabled:
                observer.unit_started(index, label, worker)

    def unit_finished(self, value: Any) -> None:
        for observer in self.observers:
            if observer.enabled:
                observer.unit_finished(value)

    def unit_failed(self, failure: UnitFailure) -> None:
        for observer in self.observers:
            if observer.enabled:
                observer.unit_failed(failure)

    def worker_beat(self, lane: Any) -> None:
        for observer in self.observers:
            if observer.enabled:
                observer.worker_beat(lane)

    def worker_suspect(self, suspicion: Any) -> None:
        for observer in self.observers:
            if observer.enabled:
                observer.worker_suspect(suspicion)

    def batch_finished(self, values: Sequence[Any]) -> None:
        for observer in self.observers:
            if observer.enabled:
                observer.batch_finished(values)


@dataclass(frozen=True)
class SessionPlan:
    """One unit of work for the engine: stream ``video`` under ``config``.

    Both fields are plain dataclasses, so a plan pickles to a worker and
    fingerprints into a cache key.
    """

    video: Any
    config: Any

    @property
    def key(self) -> str:
        return plan_fingerprint(self.video, self.config)


@dataclass
class RunStats:
    """Counters the engine accumulates while an experiment runs."""

    sessions: int = 0        # units requested (sessions + coarse tasks)
    cache_hits: int = 0
    cache_misses: int = 0    # units actually simulated
    retries: int = 0         # failed attempts that were re-run (supervision)
    failed: int = 0          # units quarantined after exhausting retries

    def add(self, requested: int, hits: int) -> None:
        self.sessions += requested
        self.cache_hits += hits
        self.cache_misses += requested - hits


@dataclass
class EngineOptions:
    """Ambient engine configuration (see :func:`engine_options`).

    ``supervision``/``journal``/``failures`` form the durability layer:
    a :class:`~repro.runner.supervise.SupervisionPolicy` routes cache
    misses through supervised worker processes (deadlines, retries,
    quarantine), a :class:`~repro.runner.journal.CampaignJournal`
    receives a write-ahead record as each unit settles, and a
    :class:`~repro.runner.supervise.FailureReport` accumulates whatever
    was quarantined.  ``sharding`` is the campaign-scaling layer: a
    :class:`~repro.runner.sharding.Sharding` policy that sharding-aware
    call sites (:func:`~repro.runner.sharding.run_shards`, the
    ``model_validation`` experiment) consult to split one campaign into
    deterministic, individually-cached shards.  ``health`` is the
    observability side-channel: a
    :class:`~repro.obs.health.HealthMonitor` that receives worker
    heartbeats and unit lifecycle notifications from the supervised
    path — report-only, never part of a cache fingerprint (typed
    ``Any`` because the runner must not import ``repro.obs``, which
    imports the runner).  ``dist`` is the horizontal-scaling layer: a
    :class:`~repro.runner.dist.DistPolicy` that re-routes
    :func:`~repro.runner.sharding.run_shards` batches through the
    lease-based shard queue and its worker fleet instead of the local
    pool (typed ``Any`` to keep the ``dist`` subpackage a lazy import).
    Everything defaults to off/None — the engine then behaves exactly
    as it always has.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    stats: Optional[RunStats] = None
    observer: NullRunObserver = NULL_OBSERVER
    supervision: Optional[SupervisionPolicy] = None
    journal: Optional[CampaignJournal] = None
    failures: Optional[FailureReport] = None
    sharding: Optional[Any] = None  # repro.runner.sharding.Sharding
    health: Optional[Any] = None    # repro.obs.health.HealthMonitor
    dist: Optional[Any] = None      # repro.runner.dist.DistPolicy


_OPTIONS: contextvars.ContextVar[EngineOptions] = contextvars.ContextVar(
    "repro-engine-options", default=EngineOptions()
)

CacheLike = Union[ResultCache, str, Path, None]


def _as_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


#: Per-field override normalizers applied by :func:`merge_options`.
_NORMALIZE = {
    "jobs": lambda jobs: max(1, int(jobs)),
    "cache": _as_cache,
}

_FIELD_NAMES = frozenset(f.name for f in dataclasses.fields(EngineOptions))


def merge_options(base: EngineOptions, overrides: dict) -> EngineOptions:
    """A new :class:`EngineOptions` = ``base`` with non-``None`` overrides.

    One ``dataclasses.replace`` call instead of a per-field
    ``base.x if x is None else x`` ladder: adding an engine option is
    now one dataclass field (plus, where needed, one ``_NORMALIZE``
    entry), and every caller — :func:`engine_options`, tests, the CLI —
    inherits it without edits.  ``None`` always means "keep the
    surrounding value", which is what makes nested scopes compose.
    """
    unknown = set(overrides) - _FIELD_NAMES
    if unknown:
        raise TypeError(
            f"unknown engine option(s): {', '.join(sorted(unknown))}; "
            f"know {', '.join(sorted(_FIELD_NAMES))}"
        )
    changes = {
        name: _NORMALIZE.get(name, lambda v: v)(value)
        for name, value in overrides.items()
        if value is not None
    }
    return dataclasses.replace(base, **changes)


def current_options() -> EngineOptions:
    """The engine options in effect for this context."""
    return _OPTIONS.get()


@contextmanager
def engine_options(**overrides):
    """Override the ambient engine options within a ``with`` block.

    Keywords are the :class:`EngineOptions` fields — ``jobs``, ``cache``
    (a :class:`ResultCache`, a path, or ``None``), ``stats``,
    ``observer``, ``supervision``, ``journal``, ``failures``,
    ``sharding``, ``health``, ``dist``.  ``None`` keeps the surrounding value, so nested
    scopes compose: a test can pin ``jobs=1`` around an experiment the
    CLI configured with ``jobs=8``.
    """
    base = _OPTIONS.get()
    options = merge_options(base, overrides)
    token = _OPTIONS.set(options)
    try:
        yield options
    finally:
        _OPTIONS.reset(token)


# -- workers ------------------------------------------------------------------
# Module-level functions: picklable by reference under both fork and spawn.
# Each payload carries an explicit ``record`` flag because the ambient
# recorder is a contextvar: a forked worker would inherit it, a spawned
# worker would not, and telemetry must not depend on the start method.

def _call_plan(payload: Tuple[SessionPlan, bool]):
    plan, record = payload
    from ..streaming import run_session

    # chaos hooks ($REPRO_CHAOS): deterministic fault injection for the
    # durability tests and the chaos-smoke CI job; one dict lookup when off
    chaos = CHAOS_ENV in os.environ
    if chaos:
        chaos_hook(plan.key)
    if record:
        # run_session sees an enabled ambient recorder and attaches its
        # per-session snapshot to the result, which travels back to the
        # parent through the ordinary pickle round-trip.
        with use_recorder(Recorder()):
            result = run_session(plan.video, plan.config)
    else:
        result = run_session(plan.video, plan.config)
    if chaos:
        chaos_mark_done(plan.key)
    return result


@dataclass
class _TaskEnvelope:
    """A task result plus the telemetry its worker recorded.

    ``run_tasks`` results are arbitrary objects with nowhere to attach a
    snapshot, so recorded runs wrap them; the engine unwraps and merges
    before returning.  Envelopes may land in the result cache — a later
    telemetry-off run unwraps them the same way.
    """

    value: Any
    telemetry: Optional[SessionTelemetry] = None


def _call_task(payload: Tuple[Callable[..., Any], tuple, bool]):
    fn, args, record = payload
    if record:
        rec = Recorder()
        with use_recorder(rec):
            value = fn(*args)
        return _TaskEnvelope(value, rec.snapshot())
    return fn(*args)


def _pool_context():
    # fork starts in milliseconds and inherits sys.path; spawn is the
    # portable fallback (macOS/Windows default)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _indexed_call(payload: Tuple[int, Callable[[Any], Any], Any]):
    """Pool shim tagging each result with its input index, so the parent
    can persist results in *completion* order and still reassemble the
    plan-ordered list."""
    index, worker, item = payload
    return index, worker(item)


def _execute(worker: Callable[[Any], Any], items: Sequence[Any],
             jobs: int, observer: NullRunObserver = NULL_OBSERVER,
             on_unit: Optional[Callable[[int, Any], None]] = None) -> List[Any]:
    """Run ``worker`` over ``items``, preserving input order.

    ``jobs=1`` (the default everywhere) runs inline — no pool, no pickle
    round-trip — so tests and single-session experiments pay nothing.
    The parallel path calls the *same* worker function on the same
    arguments; results only travel through a pickle round-trip, which is
    lossless for session results, so outputs are identical bytewise.

    ``on_unit(index, result)`` is the durability hook: it fires as each
    unit completes (completion order in the parallel path), letting the
    caller persist results incrementally so a killed campaign keeps what
    it already computed.
    """
    if jobs <= 1 or len(items) <= 1:
        if observer.enabled or on_unit is not None:
            results = []
            for index, item in enumerate(items):
                result = worker(item)
                if on_unit is not None:
                    on_unit(index, result)
                if observer.enabled:
                    observer.unit_finished(result)
                results.append(result)
            return results
        return [worker(item) for item in items]
    # An explicit jobs=N request spawns N workers even when os.cpu_count()
    # is lower: oversubscription costs little for these CPU-bound sessions,
    # and the parallel code path (fork + pickle round-trip) must behave
    # identically everywhere for the jobs=N == jobs=1 guarantee to be
    # testable on any machine.
    processes = min(jobs, len(items))
    with _pool_context().Pool(processes=processes) as pool:
        # chunksize=1: sessions vary widely in cost (a 16-cell Table 1
        # batch mixes 30 s bulk transfers with 180 s Netflix sessions),
        # so fine-grained dispatch keeps the stragglers from serializing
        if observer.enabled or on_unit is not None:
            # imap_unordered yields completion-order results, so a
            # straggler never delays persisting the units that finished
            # after it; the index tag restores plan order.
            results: List[Any] = [None] * len(items)
            indexed = [(i, worker, item) for i, item in enumerate(items)]
            for index, result in pool.imap_unordered(_indexed_call, indexed,
                                                     chunksize=1):
                if on_unit is not None:
                    on_unit(index, result)
                if observer.enabled:
                    observer.unit_finished(result)
                results[index] = result
            return results
        return pool.map(worker, items, chunksize=1)


def _run_cached(worker: Callable[[Any], Any], items: Sequence[Any],
                keys: Optional[List[str]], jobs: int,
                cache: Optional[ResultCache],
                stats: Optional[RunStats],
                rec: NullRecorder = NULL,
                observer: NullRunObserver = NULL_OBSERVER,
                supervision: Optional[SupervisionPolicy] = None,
                journal: Optional[CampaignJournal] = None,
                failures: Optional[FailureReport] = None,
                describe: Optional[Callable[[int], str]] = None,
                health: Optional[Any] = None) -> List[Any]:
    """Cache-lookup, execute, persist: the engine's one batch pipeline.

    Every unit that completes is persisted (cache + journal) *as it
    completes*, not after the batch — a campaign killed mid-batch keeps
    everything already simulated.  With a ``supervision`` policy, cache
    misses run under :func:`~repro.runner.supervise.run_supervised`
    (deadlines, retries, quarantine) instead of the plain pool; a
    ``health`` monitor additionally receives worker heartbeats and unit
    lifecycle notifications there (report-only).
    """
    results: List[Any] = [None] * len(items)
    pending = list(range(len(items)))
    if cache is not None and keys is not None:
        pending = []
        for i, key in enumerate(keys):
            hit = cache.get(key)
            if hit is None:
                pending.append(i)
            else:
                results[i] = hit
                if journal is not None:
                    journal.done(key)  # idempotent replay on resume
    if observer.enabled:
        observer.batch_started(len(items), len(items) - len(pending))
    if health is not None:
        health.attach(observer)
        health.batch_started(len(items), len(items) - len(pending))
    if rec.enabled:
        rec.inc("engine.units", len(items))
        rec.inc("engine.cache_hits", len(items) - len(pending))
        rec.inc("engine.cache_misses", len(pending))

    def persist(local_index: int, result: Any) -> None:
        i = pending[local_index]
        results[i] = result
        if keys is not None:
            if cache is not None:
                cache.put(keys[i], result)
            if journal is not None:
                journal.done(keys[i])

    pending_items = [items[i] for i in pending]
    if supervision is None:
        # incremental persistence only matters when there is somewhere
        # durable to persist to; otherwise keep the plain fast path
        on_unit = (persist if keys is not None
                   and (cache is not None or journal is not None) else None)
        if rec.enabled:
            with rec.span("engine.execute"):
                computed = _execute(worker, pending_items, jobs, observer,
                                    on_unit)
        else:
            computed = _execute(worker, pending_items, jobs, observer,
                                on_unit)
        for i, result in zip(pending, computed):
            results[i] = result
            if on_unit is None and cache is not None and keys is not None:
                cache.put(keys[i], result)
        if stats is not None:
            stats.add(len(items), len(items) - len(pending))
        return results

    # -- supervised path ------------------------------------------------------
    describe_local = ((lambda li: describe(pending[li]))
                      if describe is not None else None)
    keys_local = [keys[i] for i in pending] if keys is not None else None

    def on_done(local_index: int, value: Any) -> None:
        persist(local_index, value)
        if observer.enabled:
            observer.unit_finished(value)

    def on_failure(failure: UnitFailure) -> None:
        # remap the supervisor's batch-local index to the plan index
        failure.index = pending[failure.index]
        if journal is not None and failure.key is not None:
            if failure.final:
                journal.quarantined(failure.key, failure.error,
                                    failure.attempts, failure.worker)
            else:
                journal.failed(failure.key, failure.error, failure.attempts,
                               failure.worker)
        if failure.final and failures is not None:
            failures.add(failure)
        if observer.enabled:
            observer.unit_failed(failure)

    def run() -> Tuple[List[Any], List[UnitFailure], int]:
        return run_supervised(
            worker, pending_items, jobs=jobs, policy=supervision,
            describe=describe_local, keys=keys_local,
            on_done=on_done, on_failure=on_failure, health=health)

    if rec.enabled:
        with rec.span("engine.execute"):
            computed, quarantined, retries = run()
    else:
        computed, quarantined, retries = run()
    for i, result in zip(pending, computed):
        results[i] = result  # FailedUnit placeholders land here too
    if stats is not None:
        stats.add(len(items), len(items) - len(pending))
        stats.retries += retries
        stats.failed += len(quarantined)
    if failures is not None:
        failures.retries += retries
    if rec.enabled:
        rec.inc("engine.retries", retries)
        rec.inc("engine.quarantined", len(quarantined))
    if quarantined and not supervision.degrade:
        # the ambient report (when installed) already holds the batch's
        # quarantines via on_failure; raise with it so callers see one
        # accumulated account, not a per-batch fragment
        report = failures
        if report is None:
            report = FailureReport()
            report.retries = retries
            for failure in quarantined:
                report.add(failure)
        raise CampaignAborted(report)
    return results


PlanLike = Union[SessionPlan, Tuple[Any, Any]]


def run_sessions(plans: Iterable[PlanLike], *, jobs: Optional[int] = None,
                 cache: CacheLike = None,
                 stats: Optional[RunStats] = None) -> List[Any]:
    """Execute a batch of session plans; results come back in plan order.

    ``plans`` holds :class:`SessionPlan` objects or ``(video, config)``
    tuples.  ``jobs``/``cache``/``stats`` default to the ambient
    :func:`engine_options`; experiments normally pass none of them.
    """
    options = _OPTIONS.get()
    jobs = options.jobs if jobs is None else max(1, int(jobs))
    cache = options.cache if cache is None else _as_cache(cache)
    stats = options.stats if stats is None else stats
    normalized = [p if isinstance(p, SessionPlan) else SessionPlan(*p)
                  for p in plans]
    keys = None
    if cache is not None or options.journal is not None:
        # The cache key is (video, config, code version) only — whether
        # telemetry is recording never changes what a session computes,
        # so it must not change where its result lives.
        keys = [plan.key for plan in normalized]
    rec = current_recorder()
    observer = options.observer
    payloads = [(plan, rec.enabled) for plan in normalized]

    def describe(i: int) -> str:
        plan = normalized[i]
        video = getattr(plan.video, "video_id", None) or "session"
        seed = getattr(plan.config, "seed", "?")
        return f"{video} seed={seed}"

    if not rec.enabled:
        results = _run_cached(_call_plan, payloads, keys, jobs, cache,
                              stats, observer=observer,
                              supervision=options.supervision,
                              journal=options.journal,
                              failures=options.failures, describe=describe,
                              health=options.health)
        if observer.enabled:
            observer.batch_finished(results)
        return results
    with rec.span("engine.run_sessions"):
        rec.gauge("engine.jobs", jobs)
        results = _run_cached(_call_plan, payloads, keys, jobs, cache,
                              stats, rec, observer,
                              supervision=options.supervision,
                              journal=options.journal,
                              failures=options.failures, describe=describe,
                              health=options.health)
        # Merge per-session telemetry in *plan order* — the results list
        # is already plan-ordered, so merged counters and event logs are
        # identical for any worker count.  Cache hits replay whatever
        # telemetry they were computed with (possibly none).
        for result in results:
            telemetry = getattr(result, "telemetry", None)
            if telemetry is not None:
                rec.merge(telemetry)
    if observer.enabled:
        observer.batch_finished(results)
    return results


def run_tasks(fn: Callable[..., Any], argslist: Iterable[tuple], *,
              jobs: Optional[int] = None, cache: CacheLike = None,
              stats: Optional[RunStats] = None,
              keys: Optional[List[str]] = None) -> List[Any]:
    """Execute ``fn(*args)`` for each args tuple, in order.

    ``fn`` must be a module-level function (picklable by reference) and
    deterministic in its arguments — the cache key is (function name,
    args, code version), exactly parallel to the session path.  A caller
    that already owns a content-addressing scheme (the shard engine's
    shard fingerprints) passes explicit ``keys``, one per args tuple;
    the caller then guarantees the key covers everything the task result
    depends on.
    """
    options = _OPTIONS.get()
    jobs = options.jobs if jobs is None else max(1, int(jobs))
    cache = options.cache if cache is None else _as_cache(cache)
    stats = options.stats if stats is None else stats
    rec = current_recorder()
    observer = options.observer
    items = [(fn, tuple(args), rec.enabled) for args in argslist]
    if keys is not None:
        keys = list(keys)
        if len(keys) != len(items):
            raise ValueError(
                f"run_tasks got {len(items)} tasks but {len(keys)} keys")
    elif cache is not None or options.journal is not None:
        # Keyed on (function, args, code version); the record flag is
        # deliberately excluded, like everything telemetry-related.
        keys = [task_fingerprint(fn, args) for _fn, args, _record in items]

    def describe(i: int) -> str:
        _fn, args, _record = items[i]
        rendered = repr(args)
        if len(rendered) > 60:
            rendered = rendered[:57] + "..."
        return f"{fn.__name__}{rendered}"

    if not rec.enabled:
        results = _run_cached(_call_task, items, keys, jobs, cache, stats,
                              observer=observer,
                              supervision=options.supervision,
                              journal=options.journal,
                              failures=options.failures, describe=describe,
                              health=options.health)
        unwrapped = [r.value if isinstance(r, _TaskEnvelope) else r
                     for r in results]
        if observer.enabled:
            observer.batch_finished(unwrapped)
        return unwrapped
    with rec.span("engine.run_tasks"):
        rec.gauge("engine.jobs", jobs)
        results = _run_cached(_call_task, items, keys, jobs, cache,
                              stats, rec, observer,
                              supervision=options.supervision,
                              journal=options.journal,
                              failures=options.failures, describe=describe,
                              health=options.health)
        unwrapped: List[Any] = []
        for result in results:
            if isinstance(result, _TaskEnvelope):
                if result.telemetry is not None:
                    rec.merge(result.telemetry)
                unwrapped.append(result.value)
            else:
                unwrapped.append(result)
    if observer.enabled:
        observer.batch_finished(unwrapped)
    return unwrapped
