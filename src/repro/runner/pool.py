"""The session-execution engine: fan-out, memoization, determinism.

Every experiment in this repository reduces to a batch of *independent*
``run_session(video, config)`` calls — independent because each session
builds a private network whose RNG streams derive from ``config.seed``
(see :func:`repro.simnet.rng.derive_seed`), never from shared state.  The
engine exploits exactly that:

* ``run_sessions(plans)`` executes a batch over a ``multiprocessing``
  pool of ``jobs`` workers and returns results **in plan order** — the
  pool's ``map`` reassembles completion-order results by input index, so
  the output is byte-identical to a serial run regardless of worker
  scheduling.
* With a :class:`~repro.runner.cache.ResultCache`, each plan is first
  looked up by content fingerprint (video + config + code version); only
  misses are simulated, and their results are stored for the next run.
* ``run_tasks(fn, argslist)`` is the same machinery for coarser units
  (e.g. a whole concurrent-session cohort, or a Monte-Carlo run) that are
  not shaped like a single session.

Experiments do not thread ``jobs``/``cache`` through their signatures;
the CLI (or a test) installs them ambiently::

    with engine_options(jobs=4, cache="~/.cache/repro"):
        spec.run(scale, seed=0)     # every run_sessions() inside fans out

Telemetry follows the same ambient pattern (:mod:`repro.telemetry`):
inside a ``recording()`` scope the engine times its phases, counts cache
hits/misses, and merges each session's recorded snapshot back **in plan
order**, so ``jobs=N`` telemetry equals ``jobs=1`` telemetry just as the
results do.  Recording state never enters a cache fingerprint.
"""

from __future__ import annotations

import contextvars
import multiprocessing
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..telemetry import NULL, NullRecorder, Recorder, SessionTelemetry, current_recorder, use_recorder
from .cache import ResultCache
from .fingerprint import plan_fingerprint, task_fingerprint

__all__ = [
    "CacheLike",
    "CompositeRunObserver",
    "EngineOptions",
    "NULL_OBSERVER",
    "NullRunObserver",
    "RunStats",
    "SessionPlan",
    "current_options",
    "engine_options",
    "run_sessions",
    "run_tasks",
]


class NullRunObserver:
    """The disabled run observer: every callback is a no-op.

    Observers are the engine's outward-facing hook — live progress
    reporting and result collection (:mod:`repro.obs`) both plug in
    here.  The pattern mirrors :class:`~repro.telemetry.NullRecorder`:
    the ambient default is this disabled instance, call sites guard with
    a single ``if observer.enabled:`` check, and the observing path can
    never change what the engine computes — observers see results, they
    do not produce them, so outputs stay byte-identical for any worker
    count and cache keys never include observer state.
    """

    enabled = False

    def batch_started(self, units: int, cache_hits: int) -> None:
        """A ``run_sessions``/``run_tasks`` batch began (after cache lookup)."""

    def unit_finished(self, value: Any) -> None:
        """One simulated unit completed (cache misses only, completion order)."""

    def batch_finished(self, values: Sequence[Any]) -> None:
        """A batch returned; ``values`` holds every result in plan order."""


#: The process-wide disabled observer (ambient default).
NULL_OBSERVER = NullRunObserver()


class CompositeRunObserver(NullRunObserver):
    """Fan every engine callback out to several observers.

    ``enabled`` is true when any member is enabled, so a composite of
    disabled observers still costs a single guard check.
    """

    def __init__(self, *observers: NullRunObserver) -> None:
        self.observers = tuple(o for o in observers if o is not None)
        self.enabled = any(o.enabled for o in self.observers)

    def batch_started(self, units: int, cache_hits: int) -> None:
        for observer in self.observers:
            if observer.enabled:
                observer.batch_started(units, cache_hits)

    def unit_finished(self, value: Any) -> None:
        for observer in self.observers:
            if observer.enabled:
                observer.unit_finished(value)

    def batch_finished(self, values: Sequence[Any]) -> None:
        for observer in self.observers:
            if observer.enabled:
                observer.batch_finished(values)


@dataclass(frozen=True)
class SessionPlan:
    """One unit of work for the engine: stream ``video`` under ``config``.

    Both fields are plain dataclasses, so a plan pickles to a worker and
    fingerprints into a cache key.
    """

    video: Any
    config: Any

    @property
    def key(self) -> str:
        return plan_fingerprint(self.video, self.config)


@dataclass
class RunStats:
    """Counters the engine accumulates while an experiment runs."""

    sessions: int = 0        # units requested (sessions + coarse tasks)
    cache_hits: int = 0
    cache_misses: int = 0    # units actually simulated

    def add(self, requested: int, hits: int) -> None:
        self.sessions += requested
        self.cache_hits += hits
        self.cache_misses += requested - hits


@dataclass
class EngineOptions:
    """Ambient engine configuration (see :func:`engine_options`)."""

    jobs: int = 1
    cache: Optional[ResultCache] = None
    stats: Optional[RunStats] = None
    observer: NullRunObserver = NULL_OBSERVER


_OPTIONS: contextvars.ContextVar[EngineOptions] = contextvars.ContextVar(
    "repro-engine-options", default=EngineOptions()
)

CacheLike = Union[ResultCache, str, Path, None]


def _as_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def current_options() -> EngineOptions:
    """The engine options in effect for this context."""
    return _OPTIONS.get()


@contextmanager
def engine_options(jobs: Optional[int] = None, cache: CacheLike = None,
                   stats: Optional[RunStats] = None,
                   observer: Optional[NullRunObserver] = None):
    """Override the ambient engine options within a ``with`` block.

    ``None`` keeps the surrounding value, so nested scopes compose: a
    test can pin ``jobs=1`` around an experiment the CLI configured with
    ``jobs=8``.
    """
    base = _OPTIONS.get()
    options = EngineOptions(
        jobs=base.jobs if jobs is None else max(1, int(jobs)),
        cache=base.cache if cache is None else _as_cache(cache),
        stats=base.stats if stats is None else stats,
        observer=base.observer if observer is None else observer,
    )
    token = _OPTIONS.set(options)
    try:
        yield options
    finally:
        _OPTIONS.reset(token)


# -- workers ------------------------------------------------------------------
# Module-level functions: picklable by reference under both fork and spawn.
# Each payload carries an explicit ``record`` flag because the ambient
# recorder is a contextvar: a forked worker would inherit it, a spawned
# worker would not, and telemetry must not depend on the start method.

def _call_plan(payload: Tuple[SessionPlan, bool]):
    plan, record = payload
    from ..streaming import run_session

    if record:
        # run_session sees an enabled ambient recorder and attaches its
        # per-session snapshot to the result, which travels back to the
        # parent through the ordinary pickle round-trip.
        with use_recorder(Recorder()):
            return run_session(plan.video, plan.config)
    return run_session(plan.video, plan.config)


@dataclass
class _TaskEnvelope:
    """A task result plus the telemetry its worker recorded.

    ``run_tasks`` results are arbitrary objects with nowhere to attach a
    snapshot, so recorded runs wrap them; the engine unwraps and merges
    before returning.  Envelopes may land in the result cache — a later
    telemetry-off run unwraps them the same way.
    """

    value: Any
    telemetry: Optional[SessionTelemetry] = None


def _call_task(payload: Tuple[Callable[..., Any], tuple, bool]):
    fn, args, record = payload
    if record:
        rec = Recorder()
        with use_recorder(rec):
            value = fn(*args)
        return _TaskEnvelope(value, rec.snapshot())
    return fn(*args)


def _pool_context():
    # fork starts in milliseconds and inherits sys.path; spawn is the
    # portable fallback (macOS/Windows default)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _execute(worker: Callable[[Any], Any], items: Sequence[Any],
             jobs: int, observer: NullRunObserver = NULL_OBSERVER) -> List[Any]:
    """Run ``worker`` over ``items``, preserving input order.

    ``jobs=1`` (the default everywhere) runs inline — no pool, no pickle
    round-trip — so tests and single-session experiments pay nothing.
    The parallel path calls the *same* worker function on the same
    arguments; results only travel through a pickle round-trip, which is
    lossless for session results, so outputs are identical bytewise.
    """
    if jobs <= 1 or len(items) <= 1:
        if observer.enabled:
            results = []
            for item in items:
                result = worker(item)
                observer.unit_finished(result)
                results.append(result)
            return results
        return [worker(item) for item in items]
    # An explicit jobs=N request spawns N workers even when os.cpu_count()
    # is lower: oversubscription costs little for these CPU-bound sessions,
    # and the parallel code path (fork + pickle round-trip) must behave
    # identically everywhere for the jobs=N == jobs=1 guarantee to be
    # testable on any machine.
    processes = min(jobs, len(items))
    with _pool_context().Pool(processes=processes) as pool:
        # chunksize=1: sessions vary widely in cost (a 16-cell Table 1
        # batch mixes 30 s bulk transfers with 180 s Netflix sessions),
        # so fine-grained dispatch keeps the stragglers from serializing
        if observer.enabled:
            # imap yields input-order results as they complete, letting a
            # progress reporter tick without changing the returned list.
            results = []
            for result in pool.imap(worker, items, chunksize=1):
                observer.unit_finished(result)
                results.append(result)
            return results
        return pool.map(worker, items, chunksize=1)


def _run_cached(worker: Callable[[Any], Any], items: Sequence[Any],
                keys: Optional[List[str]], jobs: int,
                cache: Optional[ResultCache],
                stats: Optional[RunStats],
                rec: NullRecorder = NULL,
                observer: NullRunObserver = NULL_OBSERVER) -> List[Any]:
    results: List[Any] = [None] * len(items)
    pending = list(range(len(items)))
    if cache is not None and keys is not None:
        pending = []
        for i, key in enumerate(keys):
            hit = cache.get(key)
            if hit is None:
                pending.append(i)
            else:
                results[i] = hit
    if observer.enabled:
        observer.batch_started(len(items), len(items) - len(pending))
    if rec.enabled:
        rec.inc("engine.units", len(items))
        rec.inc("engine.cache_hits", len(items) - len(pending))
        rec.inc("engine.cache_misses", len(pending))
        with rec.span("engine.execute"):
            computed = _execute(worker, [items[i] for i in pending], jobs,
                                observer)
    else:
        computed = _execute(worker, [items[i] for i in pending], jobs,
                            observer)
    for i, result in zip(pending, computed):
        results[i] = result
        if cache is not None and keys is not None:
            cache.put(keys[i], result)
    if stats is not None:
        stats.add(len(items), len(items) - len(pending))
    return results


PlanLike = Union[SessionPlan, Tuple[Any, Any]]


def run_sessions(plans: Iterable[PlanLike], *, jobs: Optional[int] = None,
                 cache: CacheLike = None,
                 stats: Optional[RunStats] = None) -> List[Any]:
    """Execute a batch of session plans; results come back in plan order.

    ``plans`` holds :class:`SessionPlan` objects or ``(video, config)``
    tuples.  ``jobs``/``cache``/``stats`` default to the ambient
    :func:`engine_options`; experiments normally pass none of them.
    """
    options = _OPTIONS.get()
    jobs = options.jobs if jobs is None else max(1, int(jobs))
    cache = options.cache if cache is None else _as_cache(cache)
    stats = options.stats if stats is None else stats
    normalized = [p if isinstance(p, SessionPlan) else SessionPlan(*p)
                  for p in plans]
    keys = None
    if cache is not None:
        # The cache key is (video, config, code version) only — whether
        # telemetry is recording never changes what a session computes,
        # so it must not change where its result lives.
        keys = [plan.key for plan in normalized]
    rec = current_recorder()
    observer = options.observer
    payloads = [(plan, rec.enabled) for plan in normalized]
    if not rec.enabled:
        results = _run_cached(_call_plan, payloads, keys, jobs, cache,
                              stats, observer=observer)
        if observer.enabled:
            observer.batch_finished(results)
        return results
    with rec.span("engine.run_sessions"):
        rec.gauge("engine.jobs", jobs)
        results = _run_cached(_call_plan, payloads, keys, jobs, cache,
                              stats, rec, observer)
        # Merge per-session telemetry in *plan order* — the results list
        # is already plan-ordered, so merged counters and event logs are
        # identical for any worker count.  Cache hits replay whatever
        # telemetry they were computed with (possibly none).
        for result in results:
            telemetry = getattr(result, "telemetry", None)
            if telemetry is not None:
                rec.merge(telemetry)
    if observer.enabled:
        observer.batch_finished(results)
    return results


def run_tasks(fn: Callable[..., Any], argslist: Iterable[tuple], *,
              jobs: Optional[int] = None, cache: CacheLike = None,
              stats: Optional[RunStats] = None) -> List[Any]:
    """Execute ``fn(*args)`` for each args tuple, in order.

    ``fn`` must be a module-level function (picklable by reference) and
    deterministic in its arguments — the cache key is (function name,
    args, code version), exactly parallel to the session path.
    """
    options = _OPTIONS.get()
    jobs = options.jobs if jobs is None else max(1, int(jobs))
    cache = options.cache if cache is None else _as_cache(cache)
    stats = options.stats if stats is None else stats
    rec = current_recorder()
    observer = options.observer
    items = [(fn, tuple(args), rec.enabled) for args in argslist]
    keys = None
    if cache is not None:
        # Keyed on (function, args, code version); the record flag is
        # deliberately excluded, like everything telemetry-related.
        keys = [task_fingerprint(fn, args) for _fn, args, _record in items]
    if not rec.enabled:
        results = _run_cached(_call_task, items, keys, jobs, cache, stats,
                              observer=observer)
        unwrapped = [r.value if isinstance(r, _TaskEnvelope) else r
                     for r in results]
        if observer.enabled:
            observer.batch_finished(unwrapped)
        return unwrapped
    with rec.span("engine.run_tasks"):
        rec.gauge("engine.jobs", jobs)
        results = _run_cached(_call_task, items, keys, jobs, cache,
                              stats, rec, observer)
        unwrapped: List[Any] = []
        for result in results:
            if isinstance(result, _TaskEnvelope):
                if result.telemetry is not None:
                    rec.merge(result.telemetry)
                unwrapped.append(result.value)
            else:
                unwrapped.append(result)
    if observer.enabled:
        observer.batch_finished(unwrapped)
    return unwrapped
