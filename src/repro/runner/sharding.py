"""Sharded campaigns: split, supervise, and streamingly reduce.

A 64-session campaign fits in one pool run; a million-session campaign
does not — not because the CPU time is unaffordable but because nothing
may *retain* a million session results.  This module grows the engine to
that scale with three moves:

1. **Deterministic shards.**  One campaign plan splits into ``shards``
   contiguous chunks.  Each shard is identified by a :class:`ShardSpec`
   — ``(campaign, scale, seed, index, units)`` — and content-addressed
   by :func:`shard_fingerprint`, which also folds in the worker function
   and its arguments plus :func:`~repro.runner.fingerprint.code_version`.
   The *total* shard count is deliberately excluded: re-dimensioning a
   campaign (more sessions at the same per-shard size) leaves existing
   shard fingerprints untouched, so only the new shards simulate.
2. **The existing supervised pool.**  :func:`run_shards` feeds shards
   through :func:`~repro.runner.pool.run_tasks` with explicit shard
   keys, so everything the engine already guarantees — plan-order
   results, ``jobs=N`` determinism, supervision retries/quarantine, the
   write-ahead journal, ambient observers — applies per *shard* with no
   new machinery.  Shard artifacts land in a :class:`ShardStore` (the
   content-addressed cache, namespaced under ``<root>/shards``), so a
   re-run of a completed campaign re-simulates zero shards and a resumed
   one only the missing ones.
3. **Streaming reduction.**  A shard worker never returns its sessions;
   it folds them into mergeable aggregates — count/mean/M2 moments and
   histogram sketches (:mod:`repro.stats`) — and returns the snapshot.
   The parent merges snapshots in shard order, so campaign memory is
   O(shards), not O(sessions), and the merged statistics equal an
   unsharded reduction (bit-for-bit for counts/min/max/histograms,
   ~1e-9 relative for the float moments; see ``tests/test_sharding.py``).

The policy knob is :class:`Sharding` on
:class:`~repro.runner.pool.EngineOptions` (CLI: ``repro experiment
--shards N --sessions M``); sharding-aware call sites —
:func:`run_sharded_sessions` here, the Monte-Carlo aggregate campaign in
``experiments/model_validation.py`` — consult it ambiently.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .fingerprint import code_version, fingerprint
from .pool import SessionPlan, current_options, run_tasks
from .supervise import CHAOS_ENV, chaos_hook, chaos_mark_done

__all__ = [
    "ShardResult",
    "ShardSpec",
    "ShardStore",
    "Sharding",
    "run_shards",
    "run_sharded_sessions",
    "shard_fingerprint",
    "split_items",
]

#: Subdirectory of a cache root where shard artifacts live.
SHARD_DIRNAME = "shards"


@dataclass(frozen=True)
class Sharding:
    """The campaign-scaling policy (``EngineOptions.sharding``).

    ``shards`` is how many units one campaign plan splits into;
    ``sessions`` optionally re-dimensions the campaign to a total
    session count (sharding-aware experiments scale their workload to
    it — ``model_validation`` turns it into a Poisson arrival horizon).
    ``shards=1`` still routes through the shard path (one shard), which
    keeps the artifact store and journal semantics identical at every
    scale.

    ``shard_size`` (CLI: ``--shard-size``) switches from count-based to
    size-based splitting: the campaign becomes ``ceil(total / size)``
    shards of exactly ``size`` units (last one smaller).  Many small
    shards are the work-stealing knob for distributed runs — a
    straggling worker then holds back one small shard, not a fixed
    1/Nth of the campaign.  The two knobs are exclusive; the fixed
    count-based split stays the default so existing shard fingerprints
    remain valid.
    """

    shards: int = 1
    sessions: Optional[int] = None
    shard_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.sessions is not None and self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError(
                f"shard_size must be >= 1, got {self.shard_size}")

    def shard_count(self, total_units: int) -> int:
        """How many shards a ``total_units``-unit campaign splits into."""
        if self.shard_size is not None:
            return max(1, -(-total_units // self.shard_size))
        return self.shards


@dataclass(frozen=True)
class ShardSpec:
    """Identity of one shard of one campaign.

    ``of`` (the campaign's total shard count) is carried for progress
    reporting but excluded from :func:`shard_fingerprint`, so growing a
    campaign does not invalidate its existing shards.
    """

    campaign: str   # experiment / campaign name
    scale: str      # scale name the campaign ran at
    seed: int       # campaign seed
    index: int      # 0-based shard index
    of: int         # total shards in this campaign (display only)
    units: int      # sessions / tasks folded into this shard


@dataclass
class ShardResult:
    """What a shard worker returns: its spec plus the reduced value.

    The wrapper travels through the pool, the artifact store and the
    observer hooks, so a progress reporter can count shards and a
    collector can merge ``value`` (a snapshot) without either knowing
    how the shard was produced.
    """

    shard: ShardSpec
    value: Any


def shard_fingerprint(spec: ShardSpec, fn: Callable[..., Any],
                      args: Sequence[Any]) -> str:
    """Content address of one shard artifact.

    Covers the campaign identity ``(campaign, scale, seed, index,
    units)``, the worker function, its arguments, and the simulator
    ``code_version`` — everything that determines the shard's reduced
    value, and nothing (total shard count, jobs, telemetry) that does
    not.
    """
    name = f"{fn.__module__}.{fn.__qualname__}"
    return fingerprint("shard", code_version(), name, spec.campaign,
                       spec.scale, spec.seed, spec.index, spec.units,
                       list(args))


class ShardStore(ResultCache):
    """The shard-level artifact store: a result cache namespaced under
    ``<cache_root>/shards``.

    Shard artifacts are small (aggregate snapshots, never sessions), so
    they share the cache's content-addressed layout but live apart from
    per-session results — ``stats()`` and ``clear()`` operate on shard
    artifacts only, and a session-cache purge cannot strand a campaign.
    """

    def __init__(self, cache_root) -> None:
        super().__init__(ResultCache(cache_root).root / SHARD_DIRNAME
                         if not isinstance(cache_root, ResultCache)
                         else cache_root.root / SHARD_DIRNAME)

    @classmethod
    def for_cache(cls, cache: Optional[ResultCache]) -> Optional["ShardStore"]:
        """The shard store co-located with ``cache`` (None when uncached)."""
        if cache is None:
            return None
        if isinstance(cache, ShardStore):
            return cache
        return cls(cache)


def split_items(items: Sequence[Any], shards: int = 1, *,
                size: Optional[int] = None) -> List[List[Any]]:
    """Split ``items`` into contiguous chunks, by count or by size.

    The default (count-based) mode fixes the chunk size at
    ``ceil(len/shards)`` rather than balancing: growing the item list
    at the same per-shard size extends the tail without disturbing
    earlier chunks, which is what keeps their shard fingerprints (and
    cached artifacts) valid across a re-dimension.  The cost is
    imbalance — the last chunk can be almost empty (16 items over 5
    shards gives ``[4, 4, 4, 4]`` then nothing for the fifth).

    ``size`` switches to size-based splitting: every chunk holds
    exactly ``size`` items (last one smaller), and the chunk *count*
    floats instead of the chunk size.  That is the work-stealing mode —
    many small uniform chunks — and it composes with re-dimensioning
    the same way: same ``size``, more items, only new tail chunks.
    Empty chunks are never produced in either mode.

    >>> split_items([1, 2, 3, 4, 5], 3)
    [[1, 2], [3, 4], [5]]
    >>> split_items([1, 2, 3, 4, 5], size=2)
    [[1, 2], [3, 4], [5]]
    """
    if size is not None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
    elif shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if not items:
        return []
    if size is None:
        size = -(-len(items) // shards)  # ceil division
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


def _shard_call(payload: Tuple[Callable[..., Any], ShardSpec, tuple]):
    """Pool worker: run one shard and wrap its reduction in a
    :class:`ShardResult` (in the worker, so cached artifacts carry the
    spec too).  Chaos hooks (``$REPRO_CHAOS``) fire here like they do
    for plain session units, keyed on the shard's campaign identity so
    the same shards misbehave on every run and under any ``--jobs``."""
    fn, spec, args = payload
    chaos = CHAOS_ENV in os.environ
    chaos_key = f"shard:{spec.campaign}:{spec.index}/{spec.of}"
    if chaos:
        chaos_hook(chaos_key)
    result = ShardResult(spec, fn(*args))
    if chaos:
        chaos_mark_done(chaos_key)
    return result


def run_shards(fn: Callable[..., Any],
               shards: Sequence[Tuple[ShardSpec, tuple]],
               *, jobs: Optional[int] = None,
               stats=None,
               on_result: Optional[Callable[[Any], None]] = None
               ) -> List[Any]:
    """Run ``fn(*args)`` for each ``(spec, args)`` shard, in shard order.

    The shard batch rides :func:`~repro.runner.pool.run_tasks` — ambient
    jobs/supervision/journal/observers all apply, each shard is one
    supervised unit — but cache keys are :func:`shard_fingerprint`\\ s
    and artifacts land in the :class:`ShardStore` next to the ambient
    cache.  Returns the plan-ordered values (:class:`ShardResult`\\ s,
    or :class:`~repro.runner.supervise.FailedUnit` placeholders under a
    degraded campaign).

    ``on_result`` is the streaming-reduction hook: it receives every
    value **in plan order**, and callers merge there instead of over
    the returned list.  On this local path it fires after the batch; a
    distributed run (an ambient
    :class:`~repro.runner.dist.DistPolicy` on the engine options
    re-routes the whole batch through the shard queue and its worker
    fleet) streams it over the growing plan-order prefix while later
    shards are still simulating — same call order, same merge result,
    reduction overlapped with execution.
    """
    options = current_options()
    keys = [shard_fingerprint(spec, fn, args) for spec, args in shards]
    if options.dist is not None:
        from .dist.coordinator import run_shards_distributed

        return run_shards_distributed(fn, shards, keys, stats=stats,
                                      on_result=on_result)
    store = ShardStore.for_cache(options.cache)
    payloads = [((fn, spec, tuple(args)),) for spec, args in shards]
    results = run_tasks(_shard_call, payloads, jobs=jobs, cache=store,
                        stats=stats, keys=keys)
    if on_result is not None:
        for result in results:
            on_result(result)
    return results


def _session_shard(plans: Tuple[SessionPlan, ...]):
    """Shard worker for session campaigns: stream every plan, fold each
    result into a streaming collector, return only the snapshot."""
    from ..obs.collect import CampaignCollector
    from ..streaming import run_session

    collector = CampaignCollector(streaming=True)
    for plan in plans:
        collector.collect(run_session(plan.video, plan.config))
    return collector.snapshot()


PlanLike = Any  # SessionPlan or (video, config); see pool.run_sessions


def run_sharded_sessions(plans: Iterable[PlanLike], *, campaign: str,
                         scale: str = "adhoc", seed: int = 0,
                         shards: Optional[int] = None):
    """Run a session campaign sharded, reducing to one campaign snapshot.

    The streaming counterpart of :func:`~repro.runner.pool.run_sessions`:
    instead of a list of :class:`~repro.streaming.SessionResult`\\ s —
    O(sessions) memory — it returns one merged
    :class:`~repro.obs.collect.CampaignSnapshot` of flow/metric/QoE
    aggregates, and no session result ever crosses a process boundary.
    ``shards`` defaults to the ambient :class:`Sharding` policy (1 when
    none is installed).  Supervision retries whole shards; the journal
    and artifact store make a killed campaign resumable at shard
    granularity.
    """
    from ..obs.collect import CampaignSnapshot

    options = current_options()
    size = None
    if shards is None:
        policy = options.sharding
        shards = policy.shards if policy is not None else 1
        size = policy.shard_size if policy is not None else None
    normalized = [p if isinstance(p, SessionPlan) else SessionPlan(*p)
                  for p in plans]
    chunks = split_items(normalized, shards, size=size)
    units = [
        (ShardSpec(campaign=campaign, scale=scale, seed=seed, index=i,
                   of=len(chunks), units=len(chunk)), (tuple(chunk),))
        for i, chunk in enumerate(chunks)
    ]
    merged = CampaignSnapshot()

    def fold(result: Any) -> None:
        if isinstance(result, ShardResult):
            merged.merge(result.value)  # plan order: see run_shards

    run_shards(_session_shard, units, on_result=fold)
    return merged
