"""Content-addressed on-disk cache for completed session results.

Layout: ``<root>/<key[:2]>/<key>.pkl`` — the key is the full content
fingerprint (see :mod:`repro.runner.fingerprint`), so a lookup is a
single ``open``; there is no index to corrupt and no locking to get
wrong.  Writes go through a temporary file in the same directory followed
by :func:`os.replace`, so concurrent writers (pool workers, parallel
pytest sessions) at worst replace an entry with an identical one.

Unreadable or truncated entries are treated as misses and quarantined to
``<root>/corrupt/`` (suffix ``.bad``) for post-mortem instead of raising
or silently vanishing; ``stats()`` counts them.  The cache is an
accelerator, never a source of truth.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

from ..telemetry import current_recorder

__all__ = ["ResultCache"]


class ResultCache:
    """Pickle store keyed by content fingerprint."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def _corrupt_path(self, key: str) -> Path:
        # .bad keeps quarantined files out of the */*.pkl globs that
        # len()/stats()/clear() use to enumerate live entries
        return self.root / "corrupt" / f"{key}.bad"

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or ``None`` on miss or unreadable entry.

        A truncated/corrupt entry (interrupted writer, version skew in a
        pickled class) is treated as a miss: the file is moved to
        ``<root>/corrupt/`` for post-mortem — never re-read, never
        fatal — and counted by :meth:`stats`.
        """
        path = self._path(key)
        with current_recorder().span("cache.get"):
            try:
                with open(path, "rb") as f:
                    return pickle.load(f)
            except FileNotFoundError:
                return None
            except Exception:
                quarantine = self._corrupt_path(key)
                try:
                    quarantine.parent.mkdir(parents=True, exist_ok=True)
                    os.replace(path, quarantine)
                except OSError:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                return None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically.

        The temp file carries the writer's pid on top of ``mkstemp``'s
        random suffix: cross-*process* writers (distributed workers on
        a shared store, parallel pytest sessions) can never collide on
        a scratch name even across hosts reusing a pid space, and a
        leftover ``.w<pid>-*`` from a killed writer is attributable.
        The leading dot keeps scratch files out of every ``*/*.pkl``
        glob.  Concurrent writers of the *same* key at worst replace
        the entry with identical bytes — last ``os.replace`` wins.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        rec = current_recorder()
        with rec.span("cache.put"):
            fd, tmp = tempfile.mkstemp(dir=path.parent,
                                       prefix=f".w{os.getpid()}-",
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            if rec.enabled:
                rec.inc("cache.bytes_written", path.stat().st_size)

    def stats(self) -> dict:
        """Entry count, total on-disk bytes, and quarantined-corrupt count
        (for bench/CLI reporting)."""
        entries = 0
        size = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                size += path.stat().st_size
            except OSError:
                continue
            entries += 1
        corrupt = sum(1 for _ in self.root.glob("corrupt/*.bad"))
        return {"entries": entries, "bytes": size, "corrupt": corrupt}

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
