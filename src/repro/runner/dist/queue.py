"""The shard work queue: lease-based claims over shared storage.

One campaign's shards become one queue: the coordinator *publishes*
each shard's payload under its content-address
(:func:`~repro.runner.sharding.shard_fingerprint`), any number of
worker processes — on one host or many — *claim* shards one at a time,
and completion is recorded with a marker the coordinator (and every
other worker) can see.  Results never travel through the queue: a
worker pushes its :class:`~repro.runner.sharding.ShardResult` into the
shared :class:`~repro.runner.sharding.ShardStore` and the queue only
says *whose turn it is* and *what already happened*.

:class:`FileShardQueue` is the reference backend: a directory (local
tmpfs for same-host fleets, NFS or another shared filesystem for
multi-host ones) holding four kinds of entries::

    <root>/tasks/<key>.task    pickled (fn, spec, args), atomically published
    <root>/leases/<key>.lease  live claim; mtime is the TTL authority
    <root>/done/<key>.done     completion marker (worker + wall seconds)
    <root>/failed/<key>.failed quarantine marker (worker + error)

The lease protocol is built entirely on atomic filesystem primitives,
so it needs no daemon and no locks:

* **Claim** — ``open(..., O_CREAT | O_EXCL)`` on the lease path.  At
  most one process can create a given file, so at most one worker
  holds a shard.  The lease *content* (worker id, pid, host) is
  attribution only; liveness is the file's **mtime**, which means a
  torn content write can never corrupt the protocol.
* **Renew** — the holder touches the lease (``os.utime``) every
  ``ttl / 3`` seconds (see :class:`~repro.runner.dist.worker.LeaseHeartbeat`).
  A renew is a single metadata syscall: atomic everywhere, including
  NFS.
* **Expire + steal** — a lease whose mtime is older than ``ttl`` is
  presumed dead.  A stealer first ``os.rename``\\ s the stale lease to a
  unique tombstone — rename is atomic, so exactly one stealer wins —
  and then claims fresh.  The tombstone's content names the previous
  holder, which is how re-leases are attributed in the run ledger.
* **Complete** — ``O_CREAT | O_EXCL`` on the done marker.  Duplicate
  completions (a presumed-dead worker that was merely slow) are
  harmless: the artifact store write is idempotent (same key, same
  bytes) and the second done marker loses the race and is dropped.

TTLs compare a lease's mtime against the *observer's* clock, so hosts
sharing one queue should have loosely synchronized clocks (NTP-grade
skew is fine for the multi-second TTLs this queue is meant for).

:class:`RedisShardQueue` sketches the same interface over a redis
server for fleets without a shared filesystem; it is a stub — the
dependency is deliberately not imported until someone constructs one —
and :func:`make_queue` routes ``redis://`` URLs to it so the CLI
surface is already shaped for the swap.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "ClaimedShard",
    "FileShardQueue",
    "Lease",
    "RedisShardQueue",
    "ShardQueue",
    "default_worker_id",
    "make_queue",
]


def default_worker_id() -> str:
    """``<host>-<pid>``: unique per worker process across a shared queue."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass(frozen=True)
class Lease:
    """One live claim, as an observer sees it (coordinator lane feed)."""

    key: str                 # shard fingerprint the lease covers
    worker: str              # holder's worker id ("?" if content torn)
    pid: int                 # holder's pid (0 if content torn)
    host: str                # holder's hostname ("?" if content torn)
    age_s: float             # seconds since the last renewal (mtime)
    renewals: int            # heartbeat renewals recorded so far


@dataclass(frozen=True)
class ClaimedShard:
    """What :meth:`ShardQueue.claim` hands a worker.

    ``previous`` names the worker whose expired lease was stolen to
    make this claim, or ``None`` for a first lease — the re-lease
    attribution that ends up in the run ledger.
    """

    key: str
    payload: bytes
    previous: Optional[str] = None


class ShardQueue:
    """The queue interface every backend implements.

    Payloads are opaque bytes (the shard engine pickles
    ``(fn, spec, args)``); keys are the shard fingerprints the artifact
    store is addressed by, so queue state and store state line up
    one-to-one.
    """

    def publish(self, key: str, payload: bytes) -> bool:
        """Make one shard claimable; ``False`` if already published."""
        raise NotImplementedError

    def claim(self, worker: str) -> Optional[ClaimedShard]:
        """Lease one unclaimed, unfinished shard; ``None`` if none."""
        raise NotImplementedError

    def renew(self, key: str, worker: str) -> bool:
        """Heartbeat one held lease; ``False`` when it was lost."""
        raise NotImplementedError

    def complete(self, key: str, worker: str, wall_s: float = 0.0,
                 previous: Optional[str] = None) -> bool:
        """Mark one shard done; ``False`` on a duplicate completion.

        ``previous`` (the dead holder a stolen lease was taken from, as
        reported by :attr:`ClaimedShard.previous`) is recorded in the
        done marker so the coordinator can attribute the re-lease even
        if it never observed the intermediate lease states.
        """
        raise NotImplementedError

    def fail(self, key: str, worker: str, error: str,
             attempts: int = 1) -> None:
        """Mark one shard quarantined (supervision exhausted retries)."""
        raise NotImplementedError

    def abandon(self, key: str, worker: str) -> None:
        """Release a held lease without completing (clean shutdown)."""
        raise NotImplementedError

    def is_done(self, key: str) -> bool:
        raise NotImplementedError

    def pending(self) -> List[str]:
        """Published keys not yet done and not failed."""
        raise NotImplementedError

    def settled(self) -> bool:
        """True when every published shard is done or failed."""
        return not self.pending()

    def leases(self) -> List[Lease]:
        """Every live (unexpired *or* expired-but-unstolen) lease."""
        raise NotImplementedError

    def failures(self) -> Dict[str, dict]:
        """Quarantine records by key."""
        raise NotImplementedError


class FileShardQueue(ShardQueue):
    """The shared-directory backend (see the module docstring for the
    protocol).  ``ttl`` is the lease lifetime in seconds; a holder that
    stops renewing for longer than that is presumed dead and its shard
    is re-leased."""

    def __init__(self, root, *, ttl: float = 30.0,
                 clock=time.time) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be > 0, got {ttl}")
        self.root = Path(root)
        self.ttl = float(ttl)
        self.clock = clock
        self._tasks = self.root / "tasks"
        self._leases = self.root / "leases"
        self._done = self.root / "done"
        self._failed = self.root / "failed"
        for directory in (self._tasks, self._leases, self._done,
                          self._failed):
            directory.mkdir(parents=True, exist_ok=True)

    # -- helpers -------------------------------------------------------------

    def _task_path(self, key: str) -> Path:
        return self._tasks / f"{key}.task"

    def _lease_path(self, key: str) -> Path:
        return self._leases / f"{key}.lease"

    def _done_path(self, key: str) -> Path:
        return self._done / f"{key}.done"

    def _failed_path(self, key: str) -> Path:
        return self._failed / f"{key}.failed"

    @staticmethod
    def _read_json(path: Path) -> dict:
        """Best-effort JSON read: attribution survives torn writes as
        ``{}`` — never an exception, never a protocol decision."""
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}

    @staticmethod
    def _write_json(path: Path, record: dict) -> None:
        path.write_text(json.dumps(record), encoding="utf-8")

    def _marker(self, path: Path, record: dict) -> bool:
        """Create a write-once marker; ``False`` when it already exists."""
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(json.dumps(record))
        return True

    # -- publishing ----------------------------------------------------------

    def publish(self, key: str, payload: bytes) -> bool:
        path = self._task_path(key)
        if path.exists():
            return False
        tmp = path.with_name(f".{os.getpid()}-{key}.tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)  # atomic: a claimer never sees a torn payload
        return True

    def payload(self, key: str) -> Optional[bytes]:
        try:
            return self._task_path(key).read_bytes()
        except OSError:
            return None

    # -- claiming ------------------------------------------------------------

    def _acquire(self, key: str, worker: str,
                 previous: Optional[str]) -> bool:
        path = self._lease_path(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False  # another claimer beat us to it
        record = {"worker": worker, "pid": os.getpid(),
                  "host": socket.gethostname(), "renewals": 0,
                  "claimed_at": round(self.clock(), 3)}
        if previous:
            record["previous"] = previous
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(json.dumps(record))
        return True

    def _steal(self, key: str) -> Optional[str]:
        """Tombstone one expired lease; returns the previous holder's
        worker id when *this* caller won the rename race, else ``None``."""
        path = self._lease_path(key)
        tomb = self._leases / f".stale-{key}-{os.getpid()}-{time.monotonic_ns()}"
        try:
            os.rename(path, tomb)
        except OSError:
            return None  # someone else stole (or the holder completed)
        return self._read_json(tomb).get("worker") or "?"

    def claim(self, worker: str) -> Optional[ClaimedShard]:
        now = self.clock()
        tasks = []
        for path in self._tasks.glob("*.task"):
            try:
                tasks.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue  # racing publisher; next claim sees it
        # publish order first: the coordinator publishes in plan order,
        # so draining oldest-first keeps the reducer's plan-order prefix
        # growing instead of landing artifacts it cannot commit yet
        tasks.sort()
        for _, name, path in tasks:
            key = name[:-len(".task")]
            if self._done_path(key).exists() \
                    or self._failed_path(key).exists():
                continue
            lease = self._lease_path(key)
            previous = None
            try:
                age = now - lease.stat().st_mtime
            except OSError:
                age = None  # unleased
            if age is not None:
                if age <= self.ttl:
                    continue  # live holder
                previous = self._steal(key)
                if previous is None:
                    continue  # lost the steal race
            if not self._acquire(key, worker, previous):
                continue
            payload = self.payload(key)
            if payload is None:  # pragma: no cover - publisher race
                self.abandon(key, worker)
                continue
            return ClaimedShard(key, payload, previous)
        return None

    # -- lease lifecycle -----------------------------------------------------

    def renew(self, key: str, worker: str) -> bool:
        path = self._lease_path(key)
        record = self._read_json(path)
        if record.get("worker") != worker:
            return False  # expired and re-leased to someone else
        record["renewals"] = int(record.get("renewals", 0)) + 1
        try:
            # attribution refresh first, then the mtime touch that
            # actually extends the TTL (utime is the atomic step)
            self._write_json(path, record)
            os.utime(path)
        except OSError:
            return False
        return True

    def complete(self, key: str, worker: str, wall_s: float = 0.0,
                 previous: Optional[str] = None) -> bool:
        record = {"worker": worker, "wall_s": round(wall_s, 6),
                  "finished_at": round(self.clock(), 3)}
        if previous:
            record["previous"] = previous
        first = self._marker(self._done_path(key), record)
        self.abandon(key, worker)
        return first

    def fail(self, key: str, worker: str, error: str,
             attempts: int = 1) -> None:
        self._marker(self._failed_path(key), {
            "worker": worker, "error": error, "attempts": attempts,
            "failed_at": round(self.clock(), 3)})
        self.abandon(key, worker)

    def abandon(self, key: str, worker: str) -> None:
        path = self._lease_path(key)
        if self._read_json(path).get("worker") == worker:
            try:
                path.unlink()
            except OSError:
                pass

    # -- observation ---------------------------------------------------------

    def is_done(self, key: str) -> bool:
        return self._done_path(key).exists()

    def done_record(self, key: str) -> dict:
        """The completion marker's attribution (worker, wall seconds)."""
        return self._read_json(self._done_path(key))

    def failure_record(self, key: str) -> dict:
        return self._read_json(self._failed_path(key))

    def pending(self) -> List[str]:
        keys = []
        for path in self._tasks.glob("*.task"):
            key = path.name[:-len(".task")]
            if not self._done_path(key).exists() \
                    and not self._failed_path(key).exists():
                keys.append(key)
        return sorted(keys)

    def leases(self) -> List[Lease]:
        now = self.clock()
        out = []
        for path in self._leases.glob("*.lease"):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # completed/stolen between glob and stat
            record = self._read_json(path)
            out.append(Lease(
                key=path.name[:-len(".lease")],
                worker=record.get("worker", "?"),
                pid=int(record.get("pid", 0)),
                host=record.get("host", "?"),
                age_s=age,
                renewals=int(record.get("renewals", 0))))
        return sorted(out, key=lambda lease: lease.key)

    def failures(self) -> Dict[str, dict]:
        out = {}
        for path in self._failed.glob("*.failed"):
            out[path.name[:-len(".failed")]] = self._read_json(path)
        return out


class RedisShardQueue(ShardQueue):
    """The redis-shaped backend: same interface, server-side leases.

    A stub by design — the repository adds no dependencies, so the
    class only materializes the mapping (``SET NX EX`` for claims,
    ``EXPIRE`` for renewal, a done set for completion) and raises
    until a redis client is importable.  :func:`make_queue` routes
    ``redis://`` URLs here, so the CLI surface needs no change when
    the backend lands.
    """

    def __init__(self, url: str, *, ttl: float = 30.0) -> None:
        try:
            import redis  # noqa: F401  (deliberately optional)
        except ImportError as exc:
            raise NotImplementedError(
                "RedisShardQueue needs the optional redis client; the "
                "filesystem backend (a shared directory) is the "
                "supported transport") from exc
        raise NotImplementedError(
            "RedisShardQueue is interface-only for now: claims map to "
            "SET NX EX, renewals to EXPIRE, completion to a done set")


def make_queue(spec, *, ttl: float = 30.0) -> ShardQueue:
    """A queue from a CLI-shaped spec: ``redis://...`` URLs build a
    :class:`RedisShardQueue`, anything else is a directory path for
    :class:`FileShardQueue`."""
    text = str(spec)
    if text.startswith("redis://"):
        return RedisShardQueue(text, ttl=ttl)
    return FileShardQueue(os.path.expanduser(text), ttl=ttl)
