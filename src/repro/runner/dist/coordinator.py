"""The distributed coordinator: publish, watch, and streamingly reduce.

``repro experiment --distributed`` swaps the shard engine's *execution*
transport while keeping every contract the single-host path already
honors.  :func:`run_shards_distributed` is a drop-in body for
:func:`~repro.runner.sharding.run_shards` when the ambient
:class:`DistPolicy` is installed:

1. **Prefill** — every shard key is looked up in the shared
   :class:`~repro.runner.sharding.ShardStore` first, so a resumed
   campaign (or a re-dimensioned one) re-simulates zero landed shards.
2. **Publish** — the misses are published to the
   :class:`~repro.runner.dist.queue.ShardQueue` in plan order.
3. **Elastic local workers** — ``workers=N`` spawns N ``repro worker
   --drain`` subprocesses over the same queue and store; a worker that
   dies is respawned (budgeted), and externally-started workers on
   other hosts drain the same queue concurrently.
4. **Pipelined reduction** — the coordinator polls the store and hands
   landed artifacts to ``on_result`` as the *contiguous plan-order
   prefix* grows.  Committing the prefix — not the completion order —
   is what keeps the reduction byte-identical to the single-host path:
   ``CampaignSnapshot`` float moments merge via Chan's method, which is
   order-dependent, so the merge order must be plan order; everything
   before the barrier (simulation, artifact landing, lease traffic)
   still overlaps freely.

The run ledger (when the health plane is on) gains the distributed
lifecycle: ``dist-published``, per-shard ``done`` events attributed to
the worker that landed them, ``re-leased`` when an expired holder's
shard moves, and ``worker-exit`` when a local worker leaves.  Worker
lanes are synthesized from queue lease state and fed through the
ordinary ``worker_beat`` observer hook, so ``repro dash`` renders a
distributed campaign with no code of its own.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..pool import current_options
from ..sharding import ShardSpec, ShardStore
from ..supervise import CampaignAborted, FailedUnit, FailureReport, UnitFailure
from .queue import ShardQueue, make_queue

__all__ = [
    "DistPolicy",
    "DistWorkerLane",
    "run_shards_distributed",
]


@dataclass(frozen=True)
class DistPolicy:
    """The distributed-execution policy (``EngineOptions.dist``).

    ``queue`` is the transport spec (a shared directory, or a
    ``redis://`` URL once that backend lands); ``workers`` is how many
    local drain-mode workers the coordinator spawns — zero means the
    fleet is entirely external (other terminals, other hosts).
    ``max_attempts``/``unit_timeout`` are forwarded to each spawned
    worker's supervised pool.  ``respawns`` bounds elastic worker
    replacement so a deterministically-crashing fleet terminates.
    """

    queue: str
    workers: int = 0
    ttl: float = 30.0
    poll: float = 0.1
    max_attempts: int = 1
    unit_timeout: Optional[float] = None
    respawns: int = 8

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.ttl <= 0:
            raise ValueError(f"lease ttl must be > 0, got {self.ttl}")


@dataclass
class DistWorkerLane:
    """A worker lane synthesized from queue lease state.

    Duck-typed to :class:`~repro.obs.health.WorkerLane` — exactly the
    attributes the dashboard and health reporters read — so the obs
    layer renders distributed workers without importing this module.
    """

    worker: str
    pid: int = 0
    alive: bool = True
    missing: bool = False
    straggling: bool = False
    rss_kb: int = 0
    units_done: int = 0
    rate: float = 0.0
    unit: Optional[int] = None
    label: str = ""
    unit_started_at: Optional[float] = None
    last_beat: float = field(default_factory=time.monotonic)

    def beat_age(self, now: float) -> float:
        return max(0.0, now - self.last_beat)


def _worker_command(policy: DistPolicy, cache_root, index: int) -> List[str]:
    command = [sys.executable, "-m", "repro", "worker",
               "--queue-dir", str(policy.queue),
               "--cache-dir", str(cache_root),
               "--lease-ttl", str(policy.ttl),
               "--worker-id", f"local-w{index}", "--drain"]
    if policy.max_attempts > 1:
        command += ["--max-attempts", str(policy.max_attempts)]
    if policy.unit_timeout is not None:
        command += ["--unit-timeout", str(policy.unit_timeout)]
    return command


def _worker_env() -> dict:
    # spawned workers must import this package even when it was never
    # pip-installed (the repo's own PYTHONPATH=src discipline)
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[3])
    path = env.get("PYTHONPATH", "")
    if src not in path.split(os.pathsep):
        env["PYTHONPATH"] = f"{src}{os.pathsep}{path}" if path else src
    return env


class _LocalFleet:
    """The coordinator's elastic local workers: spawn, respawn, reap."""

    def __init__(self, policy: DistPolicy, cache_root, ledger=None) -> None:
        self.policy = policy
        self.cache_root = cache_root
        self.ledger = ledger
        self.procs: Dict[int, subprocess.Popen] = {}
        self.respawned = 0
        self._env = _worker_env() if policy.workers else None

    def start(self) -> None:
        for index in range(self.policy.workers):
            self._spawn(index)

    def _spawn(self, index: int) -> None:
        self.procs[index] = subprocess.Popen(
            _worker_command(self.policy, self.cache_root, index),
            env=self._env, stdout=subprocess.DEVNULL)

    def tend(self, work_remains: bool) -> None:
        """Reap exits; while work remains, respawn crashed workers —
        the *elastic* half of the fabric — within the respawn budget."""
        for index, proc in list(self.procs.items()):
            code = proc.poll()
            if code is None:
                continue
            del self.procs[index]
            if self.ledger is not None:
                self.ledger.event("worker-exit", worker=f"local-w{index}",
                                  pid=proc.pid, code=code)
            if code != 0 and work_remains:
                if self.respawned >= self.policy.respawns:
                    raise RuntimeError(
                        f"distributed workers crashed {self.respawned + 1} "
                        f"times (respawn budget {self.policy.respawns}); "
                        f"giving up — see the queue's failed/ markers")
                self.respawned += 1
                self._spawn(index)

    def stop(self) -> None:
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in self.procs.values():
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self.procs.clear()


def _shard_label(spec: ShardSpec) -> str:
    return f"{spec.campaign} #{spec.index}/{spec.of}"


def run_shards_distributed(
    fn: Callable[..., Any],
    shards: Sequence[Tuple[ShardSpec, tuple]],
    keys: Sequence[str],
    *, stats=None,
    on_result: Optional[Callable[[Any], None]] = None,
    queue: Optional[ShardQueue] = None,
) -> List[Any]:
    """Run one shard batch over the distributed fabric (see module doc).

    Same contract as the local :func:`~repro.runner.sharding.run_shards`
    body: plan-ordered results (``ShardResult`` or ``FailedUnit``),
    ambient stats/journal/failures honored, ``CampaignAborted`` on a
    quarantined shard unless the supervision policy degrades — plus
    ``on_result`` streamed over the growing plan-order prefix.
    """
    options = current_options()
    policy = options.dist
    store = ShardStore.for_cache(options.cache)
    if store is None:
        raise RuntimeError(
            "distributed runs need a shared artifact store: pass "
            "--cache-dir (or engine_options(cache=...)) so workers and "
            "the coordinator see the same ShardStore")
    if queue is None:
        queue = make_queue(policy.queue, ttl=policy.ttl)
    observer = options.observer
    journal = options.journal
    failures = options.failures
    ledger = getattr(options.health, "ledger", None)
    stats = options.stats if stats is None else stats

    total = len(shards)
    results: List[Any] = [None] * total
    settled = [False] * total
    index_of = {key: i for i, key in enumerate(keys)}

    # 1. prefill from the store: a resumed campaign re-simulates nothing
    hits = 0
    for i, key in enumerate(keys):
        artifact = store.get(key)
        if artifact is not None:
            results[i] = artifact
            settled[i] = True
            hits += 1
            if journal is not None:
                journal.done(key)  # idempotent replay on resume
    if observer.enabled:
        observer.batch_started(total, hits)

    # 2. publish the misses, in plan order (claim order follows)
    published = 0
    for i, (spec, args) in enumerate(shards):
        if settled[i]:
            continue
        payload = pickle.dumps((fn, spec, tuple(args)),
                               protocol=pickle.HIGHEST_PROTOCOL)
        if queue.publish(keys[i], payload):
            published += 1
    if ledger is not None:
        ledger.event("dist-published", shards=total - hits,
                     new=published, cache_hits=hits, queue=str(policy.queue),
                     workers=policy.workers, ttl=policy.ttl)

    quarantined: List[UnitFailure] = []
    done_by: Dict[str, int] = {}     # worker -> shards landed
    released: set = set()            # keys already ledgered as re-leased
    cursor = 0          # next plan index to hand to on_result

    def commit_prefix() -> None:
        # the pipelined reduction: merge order is plan order, so only
        # the contiguous settled prefix may flow to the caller
        nonlocal cursor
        while cursor < total and settled[cursor]:
            if on_result is not None:
                on_result(results[cursor])
            cursor += 1

    def land(i: int) -> bool:
        artifact = store.get(keys[i])
        if artifact is None:
            return False
        results[i] = artifact
        settled[i] = True
        record = getattr(queue, "done_record", lambda key: {})(keys[i])
        worker = record.get("worker")
        done_by[worker or "?"] = done_by.get(worker or "?", 0) + 1
        if journal is not None:
            journal.done(keys[i], worker=worker)
        if ledger is not None:
            # the done marker is the authoritative re-lease record:
            # watch_leases only sees transitions that straddle an idle
            # poll, but a stolen lease always names its dead holder here
            stolen_from = record.get("previous")
            if stolen_from and keys[i] not in released:
                released.add(keys[i])
                ledger.event("re-leased", worker=worker,
                             previous=stolen_from, unit=i,
                             shard=_shard_label(shards[i][0]))
            ledger.event("done", unit=i, worker=worker,
                         latency_s=record.get("wall_s"),
                         shard=_shard_label(shards[i][0]))
        if observer.enabled:
            observer.unit_finished(artifact)
        return True

    def quarantine(i: int, record: dict) -> None:
        failure = UnitFailure(
            index=i, label=_shard_label(shards[i][0]), key=keys[i],
            kind="shard-failed",
            error=record.get("error", "worker reported failure"),
            attempts=int(record.get("attempts", 1)), final=True,
            worker=record.get("worker"))
        results[i] = FailedUnit(failure)
        settled[i] = True
        quarantined.append(failure)
        if journal is not None:
            journal.quarantined(failure.key, failure.error,
                                failure.attempts, failure.worker)
        if ledger is not None:
            ledger.event("quarantined", unit=i, worker=failure.worker,
                         error=failure.error, shard=failure.label)
        if failures is not None:
            failures.add(failure)
        if observer.enabled:
            observer.unit_failed(failure)

    lanes: Dict[str, DistWorkerLane] = {}
    holder: Dict[str, str] = {}      # key -> worker last seen leasing it
    started = time.monotonic()

    def watch_leases() -> None:
        now = time.monotonic()
        for lease in queue.leases():
            previous = holder.get(lease.key)
            if previous is not None and previous != lease.worker:
                # an expired holder's shard moved: the re-lease is the
                # fabric's whole fault-tolerance story, so it is ledgered
                # (land() re-checks the done marker for steals this poll
                # loop never witnessed; ``released`` dedups the two paths)
                if ledger is not None and lease.key not in released:
                    released.add(lease.key)
                    i = index_of.get(lease.key)
                    ledger.event(
                        "re-leased", worker=lease.worker, previous=previous,
                        unit=i,
                        shard=_shard_label(shards[i][0]) if i is not None
                        else None)
            holder[lease.key] = lease.worker
            lane = lanes.get(lease.worker)
            if lane is None:
                lane = lanes[lease.worker] = DistWorkerLane(
                    worker=lease.worker)
            lane.pid = lease.pid
            lane.last_beat = now - min(lease.age_s, policy.ttl)
            lane.missing = lease.age_s > policy.ttl
            i = index_of.get(lease.key)
            lane.unit = i
            lane.label = (_shard_label(shards[i][0])
                          if i is not None else lease.key[:12])
            lane.unit_started_at = now - lease.age_s
        elapsed = max(now - started, 1e-9)
        for worker, lane in lanes.items():
            lane.units_done = done_by.get(worker, 0)
            lane.rate = lane.units_done / elapsed
            if observer.enabled:
                observer.worker_beat(lane)

    # the root workers receive must be the *cache* root, not the shard
    # namespace under it — ShardStore(cache_root) re-derives the latter
    cache_root = (store.root.parent if isinstance(options.cache, ShardStore)
                  else options.cache.root)
    fleet = _LocalFleet(policy, cache_root, ledger=ledger)
    waiting_notice = None if (policy.workers or hits == total) \
        else time.monotonic() + max(5.0, policy.ttl)
    try:
        fleet.start()
        commit_prefix()
        while not all(settled):
            progressed = False
            for i in range(total):
                if settled[i]:
                    continue
                if land(i):
                    progressed = True
                    continue
                record = queue.failures().get(keys[i])
                if record is not None:
                    quarantine(i, record)
                    progressed = True
            commit_prefix()
            if progressed:
                continue
            fleet.tend(work_remains=not all(settled))
            watch_leases()
            if waiting_notice is not None \
                    and time.monotonic() > waiting_notice:
                waiting_notice = None
                print(f"coordinator: waiting for workers on "
                      f"{policy.queue} — start some with: repro worker "
                      f"--queue-dir {policy.queue} --cache-dir "
                      f"{cache_root}", file=sys.stderr)
            time.sleep(policy.poll)
    finally:
        fleet.stop()

    if stats is not None:
        stats.add(total, hits)
        stats.failed += len(quarantined)
    degrade = options.supervision is not None and options.supervision.degrade
    if quarantined and not degrade:
        report = failures
        if report is None:
            report = FailureReport()
            for failure in quarantined:
                report.add(failure)
        raise CampaignAborted(report)
    if observer.enabled:
        observer.batch_finished(results)
    return results
