"""The distributed shard fabric: queue, workers, streaming coordinator.

The horizontal half of the campaign engine.  Single-host sharding
(:mod:`repro.runner.sharding`) already made campaigns content-addressed
— every shard has a fingerprint, every artifact lives in a shared
:class:`~repro.runner.sharding.ShardStore` — so distribution only has
to move *scheduling* across processes, never results or trust:

* :mod:`repro.runner.dist.queue` — :class:`ShardQueue`, the lease-based
  work queue.  :class:`FileShardQueue` runs it over any shared
  directory with nothing but atomic filesystem primitives;
  :class:`RedisShardQueue` stubs the same interface for server-backed
  fleets.
* :mod:`repro.runner.dist.worker` — the ``repro worker`` loop: claim a
  shard, run it through the existing supervised engine, push the
  artifact, renew the lease while doing so.
* :mod:`repro.runner.dist.coordinator` — ``repro experiment
  --distributed``: publish shards, keep an elastic local fleet alive,
  and reduce artifacts *as they land* by committing the contiguous
  plan-order prefix, which keeps distributed aggregates byte-identical
  to the single-host sharded path.

Installed via :class:`DistPolicy` on
:class:`~repro.runner.pool.EngineOptions` (CLI: ``--distributed
--queue-dir DIR --workers N``); :func:`~repro.runner.sharding.run_shards`
routes here when the policy is present, so sharding-aware experiments
distribute without code changes.
"""

from .coordinator import DistPolicy, DistWorkerLane, run_shards_distributed
from .queue import (
    ClaimedShard,
    FileShardQueue,
    Lease,
    RedisShardQueue,
    ShardQueue,
    default_worker_id,
    make_queue,
)
from .worker import LeaseHeartbeat, WorkerOptions, WorkerStats, run_worker

__all__ = [
    "ClaimedShard",
    "DistPolicy",
    "DistWorkerLane",
    "FileShardQueue",
    "Lease",
    "LeaseHeartbeat",
    "RedisShardQueue",
    "ShardQueue",
    "WorkerOptions",
    "WorkerStats",
    "default_worker_id",
    "make_queue",
    "run_shards_distributed",
    "run_worker",
]
