"""``repro worker``: a long-lived process that drains a shard queue.

A worker is the executing half of the distributed fabric: it claims one
shard at a time from a :class:`~repro.runner.dist.queue.ShardQueue`,
runs it through the *existing* engine (``run_tasks`` with the shard's
published key — so the supervised pool, retries, chaos hooks and the
content-addressed :class:`~repro.runner.sharding.ShardStore` all apply
unchanged), and marks the shard done.  Results never travel through the
queue: the artifact lands in the shared store under the same key the
queue tracked, which is where the coordinator's streaming reducer picks
it up.

While a shard runs, a :class:`LeaseHeartbeat` thread renews the lease
every ``ttl / 3`` seconds; a worker that dies (SIGKILL, OOM, power
loss) simply stops renewing, and after the TTL some other worker steals
the lease and re-runs the shard.  A worker that was merely *presumed*
dead keeps computing — completion is idempotent: the store write is
content-addressed and the first ``done`` marker wins, so the duplicate
costs one redundant simulation and corrupts nothing.

Claim-one-at-a-time is the work-stealing scheduler: parallelism is the
number of worker processes, and balance comes from shard granularity
(``--shard-size`` makes many small shards) rather than from a fixed
per-worker chunk, so a straggling host holds back exactly one shard,
never a fixed fraction of the campaign.
"""

from __future__ import annotations

import pickle
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from ..pool import RunStats, engine_options, run_tasks
from ..sharding import ShardStore, _shard_call
from ..supervise import FailedUnit, RetryBudget, SupervisionPolicy
from .queue import ShardQueue, default_worker_id, make_queue

__all__ = [
    "LeaseHeartbeat",
    "WorkerOptions",
    "WorkerStats",
    "run_worker",
]


class LeaseHeartbeat:
    """Renew one lease from a daemon thread while its shard runs.

    Renewal failure (the lease was stolen after a TTL expiry we slept
    through) is recorded, not raised: the worker finishes the shard
    anyway and relies on completion idempotency, which is cheaper than
    abandoning work that is already mostly done.
    """

    def __init__(self, queue: ShardQueue, key: str, worker: str,
                 interval: float) -> None:
        self.queue = queue
        self.key = key
        self.worker = worker
        self.interval = max(0.05, interval)
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not self.queue.renew(self.key, self.worker):
                self.lost = True
                return

    def __enter__(self) -> "LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


@dataclass(frozen=True)
class WorkerOptions:
    """Everything ``repro worker`` configures.

    ``drain=True`` exits once the queue settles (every published shard
    done or failed) — what coordinator-spawned workers use; the default
    keeps polling forever, for pre-started fleets fed by a coordinator
    that arrives later.  ``max_shards`` bounds the shards one worker
    executes (tests, canary workers).
    """

    queue: str                       # directory path or redis:// URL
    cache_dir: str                   # shared store root (same as coordinator)
    worker_id: Optional[str] = None  # default: <host>-<pid>
    ttl: float = 30.0
    poll: float = 0.5
    drain: bool = False
    max_shards: Optional[int] = None
    max_attempts: int = 1
    unit_timeout: Optional[float] = None
    supervised: bool = True          # False: run shards inline (tests)
    verbose: bool = False


@dataclass
class WorkerStats:
    """What one worker did, printed at exit and returned to callers."""

    worker: str = ""
    claimed: int = 0        # leases acquired
    completed: int = 0      # shards finished (first completion)
    duplicates: int = 0     # completions that lost the done-marker race
    failed: int = 0         # shards quarantined by supervision
    stolen: int = 0         # claims that re-leased an expired holder
    lost_leases: int = 0    # heartbeats that found the lease gone
    busy_s: float = 0.0
    stats: RunStats = field(default_factory=RunStats)

    def summary(self) -> str:
        return (f"worker {self.worker}: {self.completed} shards "
                f"({self.stolen} re-leased, {self.duplicates} duplicate, "
                f"{self.failed} failed) in {self.busy_s:.1f}s busy")


def _policy(options: WorkerOptions) -> Optional[SupervisionPolicy]:
    if not options.supervised:
        return None
    # degrade=True always: a failed shard becomes a queue-level failure
    # marker for the coordinator to judge; the worker itself never aborts
    return SupervisionPolicy(
        unit_timeout=options.unit_timeout,
        retry=RetryBudget(max_attempts=max(1, options.max_attempts)),
        degrade=True)


def run_worker(options: WorkerOptions,
               queue: Optional[ShardQueue] = None) -> WorkerStats:
    """The worker loop: claim, execute, complete, repeat.

    Returns when ``drain`` is set and the queue has settled, when
    ``max_shards`` is reached, or on SIGTERM/KeyboardInterrupt (the
    held lease is abandoned so the shard re-leases immediately instead
    of waiting out the TTL).
    """
    if queue is None:
        queue = make_queue(options.queue, ttl=options.ttl)
    store = ShardStore(options.cache_dir)
    worker_id = options.worker_id or default_worker_id()
    policy = _policy(options)
    out = WorkerStats(worker=worker_id)

    def note(message: str) -> None:
        if options.verbose:
            print(f"[{worker_id}] {message}", file=sys.stderr, flush=True)

    note(f"draining {options.queue} (ttl {options.ttl}s)")
    while True:
        if options.max_shards is not None \
                and out.claimed >= options.max_shards:
            break
        claimed = queue.claim(worker_id)
        if claimed is None:
            if options.drain and queue.settled():
                break
            time.sleep(options.poll)
            continue
        out.claimed += 1
        if claimed.previous:
            out.stolen += 1
            note(f"re-leased {claimed.key[:12]} from {claimed.previous}")
        fn, spec, args = pickle.loads(claimed.payload)
        started = time.perf_counter()
        heartbeat = LeaseHeartbeat(queue, claimed.key, worker_id,
                                   interval=options.ttl / 3.0)
        try:
            with heartbeat, engine_options(jobs=1, cache=store,
                                           stats=out.stats,
                                           supervision=policy):
                [result] = run_tasks(_shard_call, [((fn, spec, args),)],
                                     keys=[claimed.key])
        except BaseException:
            # SIGTERM/Ctrl-C (or an unsupervised shard crash): hand the
            # lease back so the shard re-leases now, not after the TTL
            queue.abandon(claimed.key, worker_id)
            raise
        wall = time.perf_counter() - started
        out.busy_s += wall
        if heartbeat.lost:
            out.lost_leases += 1
        if isinstance(result, FailedUnit):
            out.failed += 1
            queue.fail(claimed.key, worker_id, result.failure.error,
                       attempts=result.failure.attempts)
            note(f"failed {claimed.key[:12]}: {result.failure.error}")
            continue
        if queue.complete(claimed.key, worker_id, wall_s=wall,
                          previous=claimed.previous):
            out.completed += 1
            note(f"done {claimed.key[:12]} "
                 f"({spec.campaign} #{spec.index}, {wall:.2f}s)")
        else:
            out.duplicates += 1
            note(f"duplicate {claimed.key[:12]} (presumed dead, "
                 f"another worker completed it)")
    note(out.summary())
    return out
