"""Parallel session-execution engine with a content-addressed result cache.

The paper's dataset is thousands of captures; reproducing its tables
replays dozens of independent seeded sessions per figure.  This package
makes that campaign layer a property of the framework instead of each
experiment: plans fan out over a ``multiprocessing`` pool, completed
results memoize into an on-disk cache keyed by (video, config, code
version), and ordering/seeding guarantees make ``jobs=N`` byte-identical
to ``jobs=1``.

Public API:

* :class:`SessionPlan`, :func:`run_sessions`, :func:`run_tasks` — the
  execution engine (see :mod:`repro.runner.pool`).
* :class:`ResultCache` — the content-addressed store
  (:mod:`repro.runner.cache`).
* :func:`plan_fingerprint`, :func:`task_fingerprint`,
  :func:`code_version`, :func:`fingerprint`, :func:`canonical` — cache
  keys (:mod:`repro.runner.fingerprint`).
* :func:`engine_options`, :class:`EngineOptions`, :class:`RunStats`,
  :func:`current_options` — ambient configuration the CLI installs and
  experiments inherit.
* :class:`NullRunObserver`, :class:`CompositeRunObserver`,
  :data:`NULL_OBSERVER` — the engine's outward-facing observation hook;
  :mod:`repro.obs` builds progress reporting and exporters on top.
* :class:`SupervisionPolicy`, :class:`RetryBudget`,
  :class:`FailureReport`, :class:`CampaignAborted`, :class:`UnitFailure`,
  :class:`FailedUnit` — the durability layer
  (:mod:`repro.runner.supervise`): per-unit deadlines, retries with
  backoff, and quarantine of poison units.
* :class:`CampaignJournal`, :func:`campaign_fingerprint`,
  :func:`list_journals` — the write-ahead campaign ledger behind
  ``repro experiment --resume`` (:mod:`repro.runner.journal`).
* :class:`Sharding`, :class:`ShardSpec`, :class:`ShardResult`,
  :class:`ShardStore`, :func:`run_shards`, :func:`run_sharded_sessions`,
  :func:`shard_fingerprint` — the million-session campaign layer
  (:mod:`repro.runner.sharding`): deterministic shards through the
  supervised pool, shard-level artifacts, streaming reduction.
* :class:`DistPolicy`, :class:`ShardQueue`, :class:`FileShardQueue`,
  :class:`WorkerOptions`, :func:`run_worker`, :func:`make_queue` — the
  distributed shard fabric (:mod:`repro.runner.dist`): a lease-based
  work queue over shared storage, ``repro worker`` processes that
  drain it, and a coordinator that reduces artifacts as they land.
"""

from .cache import ResultCache
from .dist import (
    DistPolicy,
    FileShardQueue,
    ShardQueue,
    WorkerOptions,
    WorkerStats,
    make_queue,
    run_worker,
)
from .fingerprint import (
    canonical,
    code_version,
    fingerprint,
    plan_fingerprint,
    task_fingerprint,
)
from .journal import CampaignJournal, campaign_fingerprint, list_journals
from .pool import (
    CacheLike,
    CompositeRunObserver,
    EngineOptions,
    NULL_OBSERVER,
    NullRunObserver,
    RunStats,
    SessionPlan,
    current_options,
    engine_options,
    merge_options,
    run_sessions,
    run_tasks,
)
from .sharding import (
    ShardResult,
    ShardSpec,
    ShardStore,
    Sharding,
    run_sharded_sessions,
    run_shards,
    shard_fingerprint,
    split_items,
)
from .supervise import (
    CampaignAborted,
    ChaosError,
    FailedUnit,
    FailureReport,
    RetryBudget,
    SupervisionPolicy,
    UnitFailure,
    run_supervised,
)

__all__ = [
    "CacheLike",
    "CampaignAborted",
    "CampaignJournal",
    "ChaosError",
    "CompositeRunObserver",
    "DistPolicy",
    "EngineOptions",
    "FailedUnit",
    "FailureReport",
    "FileShardQueue",
    "NULL_OBSERVER",
    "NullRunObserver",
    "ResultCache",
    "RetryBudget",
    "RunStats",
    "SessionPlan",
    "ShardQueue",
    "ShardResult",
    "ShardSpec",
    "ShardStore",
    "Sharding",
    "SupervisionPolicy",
    "UnitFailure",
    "WorkerOptions",
    "WorkerStats",
    "campaign_fingerprint",
    "canonical",
    "code_version",
    "current_options",
    "engine_options",
    "fingerprint",
    "list_journals",
    "make_queue",
    "merge_options",
    "plan_fingerprint",
    "run_sessions",
    "run_sharded_sessions",
    "run_shards",
    "run_supervised",
    "run_tasks",
    "run_worker",
    "shard_fingerprint",
    "split_items",
    "task_fingerprint",
]
