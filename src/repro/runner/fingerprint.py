"""Content fingerprints for cached session results.

A cached result is only reusable when *everything* that determines it is
unchanged: the video, the session configuration, and the simulator code
itself.  ``plan_fingerprint`` therefore hashes a canonical encoding of
(video, config) together with :func:`code_version`, a digest over every
``.py`` source file of the :mod:`repro` package.  Any edit to the
simulator — a TCP constant, a player policy, a scheduler fix — changes
``code_version`` and silently invalidates the whole cache, which is the
only safe default for a research codebase whose hot paths change PR by PR.

The canonical encoding is deliberately strict: enums encode by class and
member name, dataclasses by qualified name plus per-field values, floats
by ``repr`` (exact round-trip), and unknown objects fall back to their
class plus ``vars()``.  Callables are rejected — a config carrying a
closure cannot be content-addressed (or pickled to a worker) and should
fail loudly rather than collide.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "canonical",
    "code_version",
    "fingerprint",
    "plan_fingerprint",
    "task_fingerprint",
]

#: Length of the hex digests used as cache keys.
DIGEST_LEN = 40


def canonical(obj: Any) -> Any:
    """Encode ``obj`` as JSON-serializable data, deterministically.

    Two objects that could produce different session results must encode
    differently; two equal configurations must encode identically across
    processes and interpreter runs (no ``id()``, no unsorted dicts).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return {"__float__": repr(obj)}
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__qualname__}.{obj.name}"}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__qualname__,
            "fields": {
                f.name: canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        encoded = [canonical(item) for item in obj]
        return {"__set__": sorted(encoded, key=lambda e: json.dumps(e))}
    if isinstance(obj, dict):
        items = [(canonical(k), canonical(v)) for k, v in obj.items()]
        return {"__dict__": sorted(items, key=lambda kv: json.dumps(kv[0]))}
    if callable(obj):
        raise TypeError(
            f"cannot fingerprint callable {obj!r}: configs routed through "
            "the runner must be plain data"
        )
    # plain objects (e.g. FaultSchedule): class identity + attributes
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return {
            "__object__": type(obj).__qualname__,
            "attrs": {k: canonical(v) for k, v in sorted(attrs.items())},
        }
    raise TypeError(f"cannot fingerprint {type(obj).__qualname__}: {obj!r}")


def fingerprint(*parts: Any) -> str:
    """A stable hex digest of the canonical encoding of ``parts``."""
    payload = json.dumps([canonical(p) for p in parts],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:DIGEST_LEN]


def _iter_source_files(root: Path) -> Iterable[Path]:
    return sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every source file of the installed :mod:`repro` package.

    Computed once per process; any source change produces a new version
    and therefore a disjoint set of cache keys.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in _iter_source_files(root):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def plan_fingerprint(video: Any, config: Any) -> str:
    """Cache key for one ``run_session(video, config)`` call."""
    return fingerprint("session", code_version(), video, config)


def task_fingerprint(fn: Any, args: tuple) -> str:
    """Cache key for one generic ``fn(*args)`` task.

    ``fn`` must be an importable module-level function — the same
    requirement the multiprocessing pool imposes — so its qualified name
    identifies it; the body is covered by :func:`code_version`.
    """
    name = f"{fn.__module__}.{fn.__qualname__}"
    return fingerprint("task", code_version(), name, list(args))
