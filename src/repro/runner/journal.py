"""The campaign journal: a write-ahead ledger of unit outcomes.

The content-addressed :class:`~repro.runner.cache.ResultCache` already
makes completed work durable — what it cannot say is *how a campaign
went*: which units finished, which failed transiently, which were
quarantined as poison, and whether a run that stopped was complete or
killed halfway.  The journal layers that bookkeeping on top:

* one JSONL file per campaign, named by a campaign fingerprint that is
  stable across code versions (so ``repro experiment --resume`` finds
  it after a crash *and* after a fix to the code that crashed);
* the first line is a metadata header (experiment, scale, seed); every
  later line is ``{"key": ..., "status": "done"|"failed"|"quarantined",
  "attempts": n, ...}`` appended and flushed as the engine settles each
  unit, so a campaign killed at any instant loses at most the in-flight
  units;
* the loader is torn-line tolerant — a partial final line (the write
  the kill interrupted) is skipped, never fatal — and last-status-wins,
  so a unit that failed then succeeded reads as done.

The journal never gates execution: results always come from the cache
or a fresh simulation, so a stale or deleted journal can cost duplicate
work but can never corrupt a result.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from .fingerprint import fingerprint

__all__ = [
    "CampaignJournal",
    "JournalEntry",
    "campaign_fingerprint",
    "list_journals",
]

#: Subdirectory of a cache root where campaign journals live.
JOURNAL_DIRNAME = "journal"


def campaign_fingerprint(experiment: str, scale: str, seed: int) -> str:
    """A stable identity for one campaign: (experiment, scale, seed).

    Deliberately excludes ``code_version`` and ``jobs``: a resumed
    campaign must find its journal after a code fix or with a different
    worker count.  Unit *results* still refuse to cross code versions —
    their cache keys embed ``code_version`` — so resuming across a code
    change simply re-simulates everything, correctly.
    """
    return fingerprint("campaign", experiment, scale, seed)[:16]


class JournalEntry:
    """Latest known state of one unit (by cache key)."""

    __slots__ = ("status", "attempts", "error")

    def __init__(self, status: str, attempts: int = 0,
                 error: Optional[str] = None) -> None:
        self.status = status
        self.attempts = attempts
        self.error = error


class CampaignJournal:
    """Append-only JSONL ledger of unit outcomes for one campaign.

    Usage::

        journal = CampaignJournal.for_campaign(cache.root, "fig2",
                                               "small", seed=0)
        journal.done(key)                      # as each unit settles
        journal.quarantined(key, "boom", 3)
        journal.counts()                       # {"done": 41, ...}
    """

    def __init__(self, path, meta: Optional[dict] = None,
                 fresh: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.entries: Dict[str, JournalEntry] = {}
        self.meta: dict = {}
        if fresh and self.path.exists():
            self.path.unlink()
        if self.path.exists():
            self._load()
        self._file = open(self.path, "a", encoding="utf-8")
        # a killed writer can leave a torn, newline-less final line; left
        # as-is the next append would glue onto it and corrupt *both*
        # records, so terminate it now (the loader skips the fragment)
        if self._file.tell() > 0:
            with open(self.path, "rb") as f:
                f.seek(-1, os.SEEK_END)
                if f.read(1) != b"\n":
                    self._file.write("\n")
                    self._file.flush()
        if not self.meta and meta is not None:
            self.meta = dict(meta)
            self._append({"meta": self.meta})

    @classmethod
    def for_campaign(cls, cache_root, experiment: str, scale: str,
                     seed: int, *, fresh: bool = False) -> "CampaignJournal":
        """The journal for one (experiment, scale, seed) campaign under a
        cache root; ``fresh=True`` discards any previous ledger."""
        fp = campaign_fingerprint(experiment, scale, seed)
        path = (Path(cache_root) / JOURNAL_DIRNAME
                / f"{experiment}-{fp}.jsonl")
        meta = {"experiment": experiment, "scale": scale, "seed": seed}
        return cls(path, meta=meta, fresh=fresh)

    # -- persistence ---------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn final line from a killed writer
                if "meta" in record:
                    self.meta = record["meta"]
                    continue
                key = record.get("key")
                status = record.get("status")
                if not key or not status:
                    continue
                self.entries[key] = JournalEntry(
                    status, record.get("attempts", 0), record.get("error"))

    def _append(self, record: dict) -> None:
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- recording -----------------------------------------------------------

    def record(self, key: str, status: str, attempts: int = 0,
               error: Optional[str] = None,
               worker: Optional[str] = None) -> None:
        """Append one outcome line and update the in-memory view."""
        entry = self.entries.get(key)
        if (entry is not None and entry.status == status
                and entry.attempts == attempts):
            return  # idempotent: cache hits of already-done units
        self.entries[key] = JournalEntry(status, attempts, error)
        record = {"key": key, "status": status}
        if attempts:
            record["attempts"] = attempts
        if error:
            record["error"] = error
        if worker:
            record["worker"] = worker
        self._append(record)

    def done(self, key: str, attempts: int = 0,
             worker: Optional[str] = None) -> None:
        """Mark one unit complete (its result is in the cache);
        ``worker`` attributes it to the (possibly remote) worker that
        landed the artifact."""
        self.record(key, "done", attempts, worker=worker)

    def failed(self, key: str, error: str, attempts: int,
               worker: Optional[str] = None) -> None:
        """Mark one failed attempt (the unit may yet be retried);
        ``worker`` attributes it to the supervised worker lane."""
        self.record(key, "failed", attempts, error, worker)

    def quarantined(self, key: str, error: str, attempts: int,
                    worker: Optional[str] = None) -> None:
        """Mark one unit poisoned: retries exhausted, excluded from results."""
        self.record(key, "quarantined", attempts, error, worker)

    # -- queries -------------------------------------------------------------

    def status(self, key: str) -> Optional[str]:
        """The unit's latest status, or ``None`` when never journaled."""
        entry = self.entries.get(key)
        return entry.status if entry is not None else None

    def counts(self) -> Dict[str, int]:
        """Units per terminal status: done / failed / quarantined."""
        counts = {"done": 0, "failed": 0, "quarantined": 0}
        for entry in self.entries.values():
            counts[entry.status] = counts.get(entry.status, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.entries)


def list_journals(cache_root) -> List[dict]:
    """Summaries of every campaign journal under ``cache_root``.

    Returns one dict per journal — metadata plus status counts and the
    file's mtime — sorted by experiment name then path, for the
    ``repro list`` campaign table.
    """
    root = Path(cache_root) / JOURNAL_DIRNAME
    if not root.is_dir():
        return []
    summaries = []
    for path in sorted(root.glob("*.jsonl")):
        journal = CampaignJournal(path)
        try:
            counts = journal.counts()
            summaries.append({
                "path": str(path),
                "experiment": journal.meta.get("experiment", path.stem),
                "scale": journal.meta.get("scale", "?"),
                "seed": journal.meta.get("seed", "?"),
                "units": len(journal),
                "done": counts["done"],
                "failed": counts["failed"],
                "quarantined": counts["quarantined"],
                "updated": os.path.getmtime(path),
            })
        finally:
            journal.close()
    summaries.sort(key=lambda s: (s["experiment"], s["path"]))
    return summaries
